"""Unit tests for the workflow database (WFDB)."""

import pytest

from repro.errors import StorageError
from repro.storage.tables import InstanceStatus, StepStatus
from repro.storage.wfdb import WorkflowDatabase
from tests.conftest import linear_schema
from repro.model import compile_schema


def make_db():
    db = WorkflowDatabase()
    db.register_class(compile_schema(linear_schema()))
    return db


def test_register_and_lookup_class():
    db = make_db()
    assert db.workflow_class("Linear").name == "Linear"
    assert db.class_names() == ("Linear",)


def test_duplicate_class_rejected():
    db = make_db()
    with pytest.raises(StorageError):
        db.register_class(compile_schema(linear_schema()))


def test_unknown_class_rejected():
    db = make_db()
    with pytest.raises(StorageError):
        db.workflow_class("ghost")
    with pytest.raises(StorageError):
        db.create_instance("ghost", "i1", {})


def test_create_instance_sets_summary():
    db = make_db()
    state = db.create_instance("Linear", "i1", {"x": 1})
    assert state.data["WF.x"] == 1
    assert db.status("i1") is InstanceStatus.RUNNING
    assert db.has_instance("i1")


def test_duplicate_instance_rejected():
    db = make_db()
    db.create_instance("Linear", "i1", {"x": 1})
    with pytest.raises(StorageError):
        db.create_instance("Linear", "i1", {"x": 2})


def test_set_status_updates_summary_and_persists():
    db = make_db()
    db.create_instance("Linear", "i1", {"x": 1})
    db.set_status("i1", InstanceStatus.COMMITTED)
    assert db.status("i1") is InstanceStatus.COMMITTED


def test_archive_drops_instance_table_keeps_summary():
    db = make_db()
    db.create_instance("Linear", "i1", {"x": 1})
    db.set_status("i1", InstanceStatus.COMMITTED)
    db.archive("i1")
    assert not db.has_instance("i1")
    assert db.status("i1") is InstanceStatus.COMMITTED


def test_archive_running_instance_rejected():
    db = make_db()
    db.create_instance("Linear", "i1", {"x": 1})
    with pytest.raises(StorageError):
        db.archive("i1")


def test_recover_restores_latest_snapshot():
    db = make_db()
    state = db.create_instance("Linear", "i1", {"x": 1})
    record = state.record("S1")
    record.status = StepStatus.DONE
    record.exec_seq = state.next_exec_seq()
    state.bind_outputs("S1", {"out": 7})
    db.persist(state)
    # Simulate a crash: rebuild from the WAL.
    db.recover()
    restored = db.instance("i1")
    assert restored.steps["S1"].status is StepStatus.DONE
    assert restored.data["S1.out"] == 7
    assert db.status("i1") is InstanceStatus.RUNNING


def test_recover_keeps_final_status():
    db = make_db()
    db.create_instance("Linear", "i1", {"x": 1})
    db.set_status("i1", InstanceStatus.ABORTED)
    db.recover()
    assert db.status("i1") is InstanceStatus.ABORTED
