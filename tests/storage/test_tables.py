"""Unit tests for instance/step state tables."""

import pytest

from repro.errors import StorageError
from repro.storage.tables import InstanceState, InstanceStatus, StepRecord, StepStatus


def make_state():
    return InstanceState(schema_name="W", instance_id="i1", inputs={"x": 1})


def test_inputs_bound_as_wf_refs():
    state = make_state()
    assert state.data["WF.x"] == 1


def test_record_creates_on_demand():
    state = make_state()
    record = state.record("S1")
    assert record.status is StepStatus.NOT_STARTED
    assert state.record("S1") is record


def test_exec_seq_monotone():
    state = make_state()
    first = state.next_exec_seq()
    second = state.next_exec_seq()
    assert second > first
    state.note_exec_seq(100)
    assert state.next_exec_seq() == 101


def test_executed_steps_in_order():
    state = make_state()
    for name, seq in (("B", 2), ("A", 1), ("C", 3)):
        record = state.record(name)
        record.status = StepStatus.DONE
        record.exec_seq = seq
    assert state.executed_steps_in_order() == ["A", "B", "C"]


def test_bind_and_unbind_outputs():
    state = make_state()
    state.bind_outputs("S1", {"o": 42})
    assert state.data["S1.o"] == 42
    state.unbind_outputs("S1", ["o"])
    assert "S1.o" not in state.data


def test_gather_inputs_resolves_refs():
    state = make_state()
    state.bind("S1.o", 7)
    assert state.gather_inputs(["WF.x", "S1.o"]) == {"WF.x": 1, "S1.o": 7}


def test_gather_inputs_unbound_raises():
    state = make_state()
    with pytest.raises(StorageError):
        state.gather_inputs(["S9.o"])


def test_apply_input_changes():
    state = make_state()
    state.apply_input_changes({"x": 99})
    assert state.inputs["x"] == 99
    assert state.data["WF.x"] == 99
    with pytest.raises(StorageError):
        state.apply_input_changes({"ghost": 1})


def test_merge_data_overwrites():
    state = make_state()
    state.bind("S1.o", 1)
    state.merge_data({"S1.o": 2, "S2.o": 3})
    assert state.data["S1.o"] == 2
    assert state.data["S2.o"] == 3


def test_snapshot_roundtrip():
    state = make_state()
    record = state.record("S1")
    record.status = StepStatus.DONE
    record.executions = 2
    record.last_inputs = {"WF.x": 1}
    record.last_outputs = {"o": 5}
    record.exec_seq = state.next_exec_seq()
    record.agent = "agent-1"
    state.bind_outputs("S1", {"o": 5})
    state.recovery_epoch = 3
    state.events_snapshot = {"S1.D": 1.5}
    state.known_invalidations = {"S2.D": 2}
    restored = InstanceState.from_snapshot(state.snapshot())
    assert restored.schema_name == "W"
    assert restored.recovery_epoch == 3
    assert restored.events_snapshot == {"S1.D": 1.5}
    assert restored.known_invalidations == {"S2.D": 2}
    assert restored.steps["S1"].status is StepStatus.DONE
    assert restored.steps["S1"].last_outputs == {"o": 5}
    assert restored.data["S1.o"] == 5
    # counters continue from the snapshot
    assert restored.next_exec_seq() == 2


def test_step_record_copy_is_deep_enough():
    record = StepRecord(step="S1", last_inputs={"a": 1})
    clone = record.copy()
    clone.last_inputs["a"] = 2
    assert record.last_inputs["a"] == 1


def test_step_status_default():
    state = make_state()
    assert state.step_status("S9") is StepStatus.NOT_STARTED


def test_status_transitions():
    state = make_state()
    assert state.status is InstanceStatus.RUNNING
    state.status = InstanceStatus.COMMITTED
    snap = state.snapshot()
    assert InstanceState.from_snapshot(snap).status is InstanceStatus.COMMITTED
