"""Unit tests for the write-ahead log."""

import pytest

from repro.errors import StorageError
from repro.storage.wal import WriteAheadLog


def test_append_assigns_increasing_lsns():
    wal = WriteAheadLog()
    r1 = wal.append("k", {"a": 1})
    r2 = wal.append("k", {"a": 2})
    assert r2.lsn == r1.lsn + 1
    assert len(wal) == 2
    assert wal.last_lsn() == r2.lsn


def test_payload_must_be_dict():
    wal = WriteAheadLog()
    with pytest.raises(StorageError):
        wal.append("k", [1, 2])  # type: ignore[arg-type]


def test_replay_dispatches_by_kind():
    wal = WriteAheadLog()
    wal.append("a", {"v": 1})
    wal.append("b", {"v": 2})
    wal.append("a", {"v": 3})
    seen = {"a": [], "b": []}
    count = wal.replay({
        "a": lambda p: seen["a"].append(p["v"]),
        "b": lambda p: seen["b"].append(p["v"]),
    })
    assert count == 3
    assert seen == {"a": [1, 3], "b": [2]}


def test_replay_strict_unknown_kind_raises():
    wal = WriteAheadLog()
    wal.append("mystery", {})
    with pytest.raises(StorageError):
        wal.replay({})


def test_replay_non_strict_skips_unknown():
    wal = WriteAheadLog()
    wal.append("mystery", {})
    wal.append("known", {"v": 1})
    seen = []
    assert wal.replay({"known": seen.append}, strict=False) == 1
    assert seen == [{"v": 1}]


def test_checkpoint_truncates_older_records():
    wal = WriteAheadLog()
    for i in range(5):
        wal.append("k", {"i": i})
    dropped = wal.checkpoint(keep_from_lsn=4)
    assert dropped == 3
    assert [r.payload["i"] for r in wal] == [3, 4]


def test_empty_wal_last_lsn_zero():
    assert WriteAheadLog().last_lsn() == 0


def test_appends_counter_survives_checkpoint():
    wal = WriteAheadLog()
    wal.append("k", {})
    wal.checkpoint(keep_from_lsn=10)
    assert wal.appends == 1
    assert len(wal) == 0


def test_checkpoint_past_last_lsn_empties_log():
    wal = WriteAheadLog()
    for i in range(3):
        wal.append("k", {"i": i})
    # Checkpointing beyond the last LSN is legal: everything is dropped,
    # but the LSN sequence keeps advancing from where it was.
    assert wal.checkpoint(keep_from_lsn=wal.last_lsn() + 100) == 3
    assert len(wal) == 0
    assert wal.last_lsn() == 0
    assert wal.append("k", {"i": 99}).lsn == 4


def test_replay_from_empty_log_is_a_noop():
    wal = WriteAheadLog()
    assert wal.replay({}) == 0
    assert wal.replay({"k": lambda p: (_ for _ in ()).throw(AssertionError)},
                      verify=True) == 0


def test_replay_after_checkpoint_covers_surviving_suffix():
    wal = WriteAheadLog()
    for i in range(6):
        wal.append("k", {"i": i})
    wal.checkpoint(keep_from_lsn=4)
    seen = []
    assert wal.replay({"k": lambda p: seen.append(p["i"])}, verify=True) == 3
    assert seen == [3, 4, 5]


def test_verify_passes_on_clean_log():
    wal = WriteAheadLog()
    for i in range(4):
        wal.append("kind", {"i": i, "nested": {"x": [1, 2]}})
    assert wal.verify() == 4


def test_corrupted_record_detected_by_verify_and_replay():
    wal = WriteAheadLog()
    wal.append("k", {"i": 0})
    wal.append("k", {"i": 1})
    # Corrupt the payload behind the checksum's back (bit rot).
    object.__setattr__(wal._records[1], "payload", {"i": 999})
    with pytest.raises(StorageError, match="lsn 2.*checksum mismatch"):
        wal.verify()
    with pytest.raises(StorageError, match="checksum mismatch"):
        wal.replay({"k": lambda p: None}, verify=True)
    # Non-verifying replay still works (callers opt into the guard).
    assert wal.replay({"k": lambda p: None}) == 2


def test_checksum_binds_lsn_and_kind_not_just_payload():
    from repro.storage.wal import WalRecord, record_checksum

    checksum = record_checksum(1, "a", {"v": 1})
    assert not WalRecord(2, "a", {"v": 1}, checksum).verify()
    assert not WalRecord(1, "b", {"v": 1}, checksum).verify()
    assert WalRecord(1, "a", {"v": 1}, checksum).verify()
