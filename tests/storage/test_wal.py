"""Unit tests for the write-ahead log."""

import pytest

from repro.errors import StorageError
from repro.storage.wal import WriteAheadLog


def test_append_assigns_increasing_lsns():
    wal = WriteAheadLog()
    r1 = wal.append("k", {"a": 1})
    r2 = wal.append("k", {"a": 2})
    assert r2.lsn == r1.lsn + 1
    assert len(wal) == 2
    assert wal.last_lsn() == r2.lsn


def test_payload_must_be_dict():
    wal = WriteAheadLog()
    with pytest.raises(StorageError):
        wal.append("k", [1, 2])  # type: ignore[arg-type]


def test_replay_dispatches_by_kind():
    wal = WriteAheadLog()
    wal.append("a", {"v": 1})
    wal.append("b", {"v": 2})
    wal.append("a", {"v": 3})
    seen = {"a": [], "b": []}
    count = wal.replay({
        "a": lambda p: seen["a"].append(p["v"]),
        "b": lambda p: seen["b"].append(p["v"]),
    })
    assert count == 3
    assert seen == {"a": [1, 3], "b": [2]}


def test_replay_strict_unknown_kind_raises():
    wal = WriteAheadLog()
    wal.append("mystery", {})
    with pytest.raises(StorageError):
        wal.replay({})


def test_replay_non_strict_skips_unknown():
    wal = WriteAheadLog()
    wal.append("mystery", {})
    wal.append("known", {"v": 1})
    seen = []
    assert wal.replay({"known": seen.append}, strict=False) == 1
    assert seen == [{"v": 1}]


def test_checkpoint_truncates_older_records():
    wal = WriteAheadLog()
    for i in range(5):
        wal.append("k", {"i": i})
    dropped = wal.checkpoint(keep_from_lsn=4)
    assert dropped == 3
    assert [r.payload["i"] for r in wal] == [3, 4]


def test_empty_wal_last_lsn_zero():
    assert WriteAheadLog().last_lsn() == 0


def test_appends_counter_survives_checkpoint():
    wal = WriteAheadLog()
    wal.append("k", {})
    wal.checkpoint(keep_from_lsn=10)
    assert wal.appends == 1
    assert len(wal) == 0
