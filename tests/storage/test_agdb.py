"""Unit tests for the agent database (AGDB)."""

import pytest

from repro.errors import StorageError
from repro.storage.agdb import AgentDatabase
from repro.storage.tables import InstanceStatus, StepStatus


def make_db():
    db = AgentDatabase("agent-1")
    db.set_eligible_agents("W", "S1", ["agent-1", "agent-2"])
    return db


def test_directory_roundtrip():
    db = make_db()
    assert db.eligible_agents("W", "S1") == ("agent-1", "agent-2")
    with pytest.raises(StorageError):
        db.eligible_agents("W", "ghost")
    with pytest.raises(StorageError):
        db.set_eligible_agents("W", "S2", [])


def test_ensure_fragment_idempotent():
    db = make_db()
    fragment = db.ensure_fragment("W", "i1", {"x": 1})
    assert db.ensure_fragment("W", "i1") is fragment
    assert db.has_fragment("i1")
    assert db.fragment("i1").data["WF.x"] == 1


def test_fragment_missing_raises():
    db = make_db()
    with pytest.raises(StorageError):
        db.fragment("ghost")


def test_summary_table():
    db = make_db()
    db.set_summary("i1", InstanceStatus.RUNNING)
    assert db.summary("i1") is InstanceStatus.RUNNING
    assert db.has_summary("i1")
    assert db.coordinated_instances() == ("i1",)
    with pytest.raises(StorageError):
        db.summary("ghost")


def test_purge_drops_fragments_and_remembers():
    db = make_db()
    db.ensure_fragment("W", "i1")
    db.ensure_fragment("W", "i2")
    assert db.purge_instances(["i1", "ghost"]) == 1
    assert not db.has_fragment("i1")
    assert db.has_fragment("i2")
    assert db.was_purged("i1")
    assert db.was_purged("ghost")  # remembered even without a fragment


def test_recover_restores_fragments_and_summaries():
    db = make_db()
    fragment = db.ensure_fragment("W", "i1", {"x": 1})
    record = fragment.record("S1")
    record.status = StepStatus.DONE
    record.agent = "agent-1"
    fragment.events_snapshot = {"S1.D": 1.0}
    db.persist_fragment(fragment)
    db.set_summary("i1", InstanceStatus.RUNNING)
    db.recover()
    restored = db.fragment("i1")
    assert restored.steps["S1"].status is StepStatus.DONE
    assert restored.events_snapshot == {"S1.D": 1.0}
    assert db.summary("i1") is InstanceStatus.RUNNING
    # The static directory survives recovery untouched.
    assert db.eligible_agents("W", "S1") == ("agent-1", "agent-2")


def test_recover_honours_purge():
    db = make_db()
    fragment = db.ensure_fragment("W", "i1")
    db.persist_fragment(fragment)
    db.purge_instances(["i1"])
    db.recover()
    assert not db.has_fragment("i1")
    assert db.was_purged("i1")


def test_recover_uses_latest_fragment_snapshot():
    db = make_db()
    fragment = db.ensure_fragment("W", "i1")
    db.persist_fragment(fragment)
    fragment.bind("S1.out", 42)
    db.persist_fragment(fragment)
    db.recover()
    assert db.fragment("i1").data["S1.out"] == 42


def test_tracker_snapshot_survives_recovery():
    db = make_db()
    db.set_summary("i1", InstanceStatus.RUNNING)
    db.set_tracker("i1", {"reported": {"S1": 1}, "finished": False})
    db.set_tracker("i1", {"reported": {"S1": 1, "S2": 1}, "finished": True})
    db.recover()
    # The latest snapshot wins; nothing for unknown instances.
    assert db.recovered_tracker("i1") == {"reported": {"S1": 1, "S2": 1},
                                          "finished": True}
    assert db.recovered_tracker("ghost") is None


def test_purge_drops_tracker_snapshots():
    db = make_db()
    db.set_tracker("i1", {"finished": True})
    db.purge_instances(["i1"])
    db.recover()
    assert db.recovered_tracker("i1") is None


def test_replay_clone_is_equal_and_independent():
    db = make_db()
    fragment = db.ensure_fragment("W", "i1", {"x": 1})
    fragment.record("S1").status = StepStatus.DONE
    db.persist_fragment(fragment)
    db.set_summary("i1", InstanceStatus.COMMITTED)
    db.set_tracker("i1", {"finished": True})
    clone = db.replay_clone()
    assert clone.fragment("i1").steps["S1"].status is StepStatus.DONE
    assert clone.summary("i1") is InstanceStatus.COMMITTED
    assert clone.recovered_tracker("i1") == {"finished": True}
    # Mutating the clone must not leak back into the original.
    clone.set_summary("i1", InstanceStatus.ABORTED)
    assert db.summary("i1") is InstanceStatus.COMMITTED


def test_recover_detects_wal_corruption():
    db = make_db()
    db.set_summary("i1", InstanceStatus.RUNNING)
    record = db.wal._records[-1]
    object.__setattr__(record, "payload", {"tampered": True})
    with pytest.raises(StorageError, match="checksum mismatch"):
        db.recover()
