"""Shared fixtures and schema factories for the test suite."""

from __future__ import annotations

import pytest

from repro.core.programs import NoopProgram
from repro.engines import (
    CentralizedControlSystem,
    DistributedControlSystem,
    ParallelControlSystem,
    SystemConfig,
)
from repro.model import SchemaBuilder


def linear_schema(name="Linear", steps=3, outputs=True):
    """S1 -> S2 -> ... -> Sn, each consuming the previous step's output."""
    builder = SchemaBuilder(name, inputs=["x"])
    previous = None
    for index in range(1, steps + 1):
        step = f"S{index}"
        ins = ["WF.x"] if previous is None else [f"{previous}.out"]
        builder.step(step, program=f"{name}.{step}", inputs=ins, outputs=["out"])
        if previous is not None:
            builder.arc(previous, step)
        previous = step
    if outputs:
        builder.output("result", f"{previous}.out")
    return builder.build()


def branching_schema(name="Branchy", fail_s4_attempts=frozenset({1})):
    """The Figure-3 shape: XOR branch, rollback point, branch flip on retry."""
    builder = SchemaBuilder(name, inputs=["load"])
    builder.step("S1", program=f"{name}.S1", inputs=["WF.load"], outputs=["x"])
    builder.step("S2", program=f"{name}.S2", inputs=["S1.x"], outputs=["route"])
    builder.step("S3", program=f"{name}.S3", outputs=["t"])
    builder.step("S4", program=f"{name}.S4", inputs=["S3.t"], outputs=["y"])
    builder.step("S5", program=f"{name}.S5", outputs=["y"])
    builder.step("S6", program=f"{name}.S6", join="xor", outputs=["res"])
    builder.arc("S1", "S2")
    builder.branch("S2", [("S3", "S2.route == 'top'")], otherwise="S5")
    builder.arc("S3", "S4")
    builder.arc("S4", "S6")
    builder.arc("S5", "S6")
    builder.rollback_point("S4", "S2")
    builder.output("result", "S6.res")
    return builder.build()


def parallel_schema(name="Fanout"):
    """Start -> (A, B in parallel) -> AND-join -> terminal."""
    builder = SchemaBuilder(name, inputs=["x"])
    builder.step("Start", program=f"{name}.Start", inputs=["WF.x"], outputs=["o"])
    builder.step("A", program=f"{name}.A", inputs=["Start.o"], outputs=["o"])
    builder.step("B", program=f"{name}.B", inputs=["Start.o"], outputs=["o"])
    builder.step("End", program=f"{name}.End", join="and",
                 inputs=["A.o", "B.o"], outputs=["res"])
    builder.parallel("Start", ["A", "B"])
    builder.join("End", ["A", "B"], kind="and")
    builder.output("result", "End.res")
    return builder.build()


def register_programs(system, schema, behaviors=None):
    """Register NoopPrograms (or supplied behaviors) for a schema's steps."""
    behaviors = behaviors or {}
    for step in schema.steps.values():
        program = behaviors.get(step.name)
        if program is None:
            program = NoopProgram(step.outputs)
        system.register_program(step.program, program)


def make_system(architecture, seed=0, **kwargs):
    """Instantiate one of the three control systems with small defaults."""
    config = kwargs.pop("config", None) or SystemConfig(seed=seed)
    if architecture == "centralized":
        return CentralizedControlSystem(
            config, num_agents=kwargs.pop("num_agents", 4),
            agents_per_step=kwargs.pop("agents_per_step", 1),
        )
    if architecture == "parallel":
        return ParallelControlSystem(
            config, num_engines=kwargs.pop("num_engines", 2),
            num_agents=kwargs.pop("num_agents", 4),
            agents_per_step=kwargs.pop("agents_per_step", 1),
        )
    if architecture == "distributed":
        return DistributedControlSystem(
            config, num_agents=kwargs.pop("num_agents", 6),
            agents_per_step=kwargs.pop("agents_per_step", 1),
        )
    raise ValueError(architecture)


ALL_ARCHITECTURES = ("centralized", "parallel", "distributed")


@pytest.fixture(params=ALL_ARCHITECTURES)
def any_system(request):
    """A fresh control system of each architecture in turn."""
    return make_system(request.param, seed=1)
