"""Causal-trace reconstruction: timelines, critical path, anomalies.

The acceptance bar: fixed-seed runs of all six architecture×failure
configurations must produce traces in which every remote child span
resolves to its sending parent — zero orphan cross-node links — as seen
by the *offline* analyzer (JSONL round-trip included).
"""

import json

import pytest

from repro.analysis.causal import CausalTrace
from repro.engines import SystemConfig
from repro.errors import CrewError
from repro.workloads import figure3_workflow
from tests.conftest import ALL_ARCHITECTURES, make_system

FAILURE_MODES = {
    "with-failure": frozenset({1}),
    "failure-free": frozenset(),
}


def run_config(architecture, fail_attempts, instances=2, seed=11):
    system = make_system(architecture, config=SystemConfig(seed=seed))
    figure3_workflow(fail_attempts=fail_attempts).install(system)
    ids = [system.start_workflow("Figure3", {"load": 5}, delay=i * 0.5)
           for i in range(instances)]
    system.run()
    system.tracer.finish(system.simulator.now)
    assert all(system.outcome(i).committed for i in ids)
    return system, ids


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
@pytest.mark.parametrize("mode", sorted(FAILURE_MODES))
def test_all_six_configs_have_zero_orphan_links(architecture, mode):
    system, __ = run_config(architecture, FAILURE_MODES[mode])
    ct = CausalTrace.from_run(system.trace, system.tracer)
    assert ct.message_spans(), "run must produce message spans"
    orphans = [a for a in ct.anomalies()
               if a.kind in ("orphan-link", "unlinked-recv", "orphan-parent")]
    assert orphans == []


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
@pytest.mark.parametrize("mode", sorted(FAILURE_MODES))
def test_all_six_configs_are_anomaly_free(architecture, mode):
    """Stronger: no lost packets and no Lamport regressions either."""
    system, __ = run_config(architecture, FAILURE_MODES[mode])
    ct = CausalTrace.from_run(system.trace, system.tracer)
    assert ct.anomalies() == []


def test_jsonl_round_trip_preserves_counts():
    system, __ = run_config("distributed", frozenset({1}), instances=1)
    from repro.obs.export import trace_to_jsonl

    text = trace_to_jsonl(system.trace, system.tracer)
    ct = CausalTrace.from_jsonl(text)
    assert len(ct.spans) == len(system.tracer.spans)
    assert len(ct.records) == len(system.trace.records)


def test_timeline_and_instances():
    system, ids = run_config("distributed", frozenset({1}), instances=2)
    ct = CausalTrace.from_run(system.trace, system.tracer)
    assert ct.instances() == sorted(ids)
    for instance in ids:
        timeline = ct.timeline(instance)
        assert timeline
        assert all(
            s.instance in (instance, None) for s in timeline
        )
        starts = [s.start for s in timeline]
        assert starts == sorted(starts)


def test_critical_path_crosses_nodes_and_ends_last():
    system, ids = run_config("distributed", frozenset({1}), instances=1)
    ct = CausalTrace.from_run(system.trace, system.tracer)
    path = ct.critical_path(ids[0])
    assert len(path) >= 5
    assert len({s.node for s in path}) > 1, "path must cross nodes"
    # Walks backward in causal order: starts never decrease along the path.
    starts = [s.start for s in path]
    assert starts == sorted(starts)


def test_phase_latency_accounts_for_workflow_span():
    system, ids = run_config("centralized", frozenset({1}), instances=1)
    ct = CausalTrace.from_run(system.trace, system.tracer)
    phases = ct.phase_latency(ids[0])
    by_cat = {p.category: p for p in phases}
    assert "workflow" in by_cat and by_cat["workflow"].span_count == 1
    assert "step" in by_cat and by_cat["step"].total > 0
    # Sorted largest-total first.
    totals = [p.total for p in phases]
    assert totals == sorted(totals, reverse=True)


# -- seeded-anomaly detection on synthetic traces ---------------------------


def span_line(span_id, name="s", category="message", node="a", start=0.0,
              end=0.0, link_id=None, parent_id=None, **attrs):
    return json.dumps({
        "type": "span", "span_id": span_id, "parent_id": parent_id,
        "link_id": link_id, "name": name, "category": category,
        "node": node, "start": start, "end": end, "duration": 0.0,
        "open": False, "attrs": attrs,
    })


def test_detects_orphan_link():
    ct = CausalTrace.from_jsonl(span_line(1, link_id=99))
    kinds = {a.kind for a in ct.anomalies()}
    assert "orphan-link" in kinds


def test_detects_unlinked_recv_and_lost_packet():
    text = "\n".join([
        span_line(1, name="send:Ping", direction="send", msg_id=7,
                  lamport=1, src="a", dst="b"),
        span_line(2, name="recv:Pong", node="b", direction="recv",
                  msg_id=8, lamport=2),
    ])
    kinds = {a.kind for a in CausalTrace.from_jsonl(text).anomalies()}
    assert "lost-packet" in kinds      # msg 7 sent, never received
    assert "unlinked-recv" in kinds    # recv span without a link


def test_detects_clock_regression_per_node():
    text = "\n".join([
        span_line(1, name="send:A", direction="send", msg_id=1, lamport=5),
        span_line(2, name="send:B", direction="send", msg_id=2, lamport=3),
    ])
    ct = CausalTrace.from_jsonl(text)
    regressions = [a for a in ct.anomalies() if a.kind == "clock-regression"]
    assert regressions


def test_detects_clock_regression_across_edge():
    text = "\n".join([
        span_line(1, name="send:A", direction="send", msg_id=1, lamport=9),
        span_line(2, name="recv:A", node="b", direction="recv", msg_id=1,
                  lamport=4, link_id=1),
    ])
    ct = CausalTrace.from_jsonl(text)
    regressions = [a for a in ct.anomalies() if a.kind == "clock-regression"]
    assert regressions


def test_from_jsonl_rejects_garbage():
    with pytest.raises(CrewError):
        CausalTrace.from_jsonl("not json at all")
    with pytest.raises(CrewError):
        CausalTrace.from_jsonl(json.dumps({"type": "mystery"}))


def test_empty_trace_is_clean():
    ct = CausalTrace.from_jsonl("")
    assert ct.instances() == []
    assert ct.anomalies() == []
    assert ct.critical_path("nope") == []
