"""Tests for the library-level evaluation runner."""

import pytest

from repro.analysis.experiment import (
    EVAL_PARAMS,
    full_evaluation,
    ocr_ablation,
    render_evaluation,
    run_architecture_experiment,
)
from repro.sim.metrics import Mechanism
from repro.workloads.params import WorkloadParameters


def test_run_architecture_experiment_normalizes():
    params = WorkloadParameters(c=2, i=5)
    result = run_architecture_experiment("centralized", params,
                                         instances_per_schema=5)
    assert result.measured.instances == 10
    assert result.committed + result.aborted == 10
    assert result.measured.messages[Mechanism.NORMAL] == pytest.approx(
        2 * params.s * params.a, rel=0.05
    )
    assert "paper model vs simulation" in result.report()


def test_unknown_architecture_rejected():
    with pytest.raises(ValueError):
        run_architecture_experiment("quantum")


def test_ocr_ablation_monotone():
    rows = ocr_ablation(instances=4, schemas=1)
    totals = [execute + compensate for __, execute, compensate, __c in rows]
    assert totals[0] < totals[-1]
    assert all(commits == 4 for __, __e, __c, commits in rows)


def test_full_evaluation_and_render():
    params = EVAL_PARAMS.evolve(c=2, i=5)
    results = full_evaluation(params)
    assert set(results.normal) == {"centralized", "parallel", "distributed"}
    report = render_evaluation(results)
    assert "Table 6 — distributed control" in report
    assert "recommendation matrix" in report
