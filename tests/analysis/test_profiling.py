"""Tests for the profiled experiment runner (``repro profile`` core)."""

import pytest

from repro.analysis.profiling import (
    PROFILE_ARCHITECTURES,
    profile_configs,
    run_profiled,
    run_profiled_sweep,
    split_profile_config,
)
from repro.errors import CrewError
from repro.obs.profile import Profiler


def test_split_accepts_dash_and_slash():
    assert split_profile_config("distributed-failure") == (
        "distributed", "failure")
    assert split_profile_config("centralized/coordinated") == (
        "centralized", "coordinated")


@pytest.mark.parametrize("label", ["bogus-normal", "centralized-bogus",
                                   "centralized", "a-b-c"])
def test_split_rejects_bad_labels(label):
    with pytest.raises(CrewError):
        split_profile_config(label)


def test_default_grid_is_architecture_major_six_configs():
    grid = profile_configs()
    assert len(grid) == 6
    assert grid[0] == "centralized-normal"
    assert [c.split("-")[0] for c in grid] == [
        a for a in PROFILE_ARCHITECTURES for __ in range(2)]


def test_run_profiled_smoke():
    run, prof = run_profiled("centralized-normal", seed=3,
                             instances_per_schema=2)
    assert run.committed > 0
    assert run.events > 0
    assert run.wall_time_s > 0
    assert run.events_per_sec > 0
    assert prof.depth() == 0  # every frame popped
    names = {s.name for s in prof.top_frames()}
    assert "transport.arrive" in names
    assert "wal.append" in names
    assert prof.events == run.events


def test_profiling_does_not_change_the_simulation():
    first, __ = run_profiled("distributed-normal", seed=5,
                             instances_per_schema=2)
    second, __ = run_profiled("distributed-normal", seed=5,
                              instances_per_schema=2)
    assert (first.committed, first.aborted, first.messages, first.events,
            first.sim_time) == (second.committed, second.aborted,
                                second.messages, second.events,
                                second.sim_time)


def test_failure_mode_exercises_recovery_frames():
    run, prof = run_profiled("distributed-failure", seed=3,
                             instances_per_schema=2)
    names = {s.name for s in prof.top_frames()}
    assert "recovery.ocr" in names
    assert run.committed > 0


def test_sweep_accumulates_into_one_profiler():
    runs, prof = run_profiled_sweep(
        ["centralized-normal", "centralized-coordinated"], seed=3,
        instances_per_schema=2)
    assert [r.config for r in runs] == ["centralized-normal",
                                       "centralized-coordinated"]
    assert isinstance(prof, Profiler)
    assert prof.events == sum(r.events for r in runs)


def test_as_dict_is_json_safe():
    import json

    run, __ = run_profiled("parallel-normal", seed=3,
                           instances_per_schema=1)
    json.dumps(run.as_dict())
    assert run.as_dict()["config"] == "parallel-normal"
