"""Protocol-invariant checker: clean on canonical runs, sharp on seeded bugs."""

import json

import pytest

from repro.analysis.causal import CausalTrace
from repro.analysis.invariants import INVARIANTS, check_invariants
from repro.engines import SystemConfig
from repro.errors import CrewError
from repro.workloads import figure3_workflow, order_processing, travel_booking
from tests.conftest import ALL_ARCHITECTURES, make_system


def record_line(time, node, kind, **detail):
    return json.dumps({
        "type": "record", "time": time, "node": node, "kind": kind,
        "detail": detail,
    })


def check(lines, names=None):
    return check_invariants(CausalTrace.from_jsonl("\n".join(lines)), names)


# -- clean on canonical scenarios -------------------------------------------


CANONICAL = {
    "figure3": (figure3_workflow, "Figure3", {"load": 5}),
    "orders": (order_processing, "OrderProcessing",
               {"part": "gasket", "qty": 2}),
    "travel": (travel_booking, "TravelBooking",
               {"traveller": "t", "dates": "now"}),
}


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
@pytest.mark.parametrize("scenario", sorted(CANONICAL))
def test_canonical_scenarios_pass_clean(architecture, scenario):
    factory, schema_name, inputs = CANONICAL[scenario]
    system = make_system(architecture, config=SystemConfig(seed=11))
    factory().install(system)
    ids = [system.start_workflow(schema_name, inputs, delay=i * 0.5)
           for i in range(2)]
    system.run()
    system.tracer.finish(system.simulator.now)
    assert ids
    ct = CausalTrace.from_run(system.trace, system.tracer)
    assert check_invariants(ct) == []


# -- seeded violations -------------------------------------------------------


def test_halt_after_reexecute_is_flagged():
    violations = check([
        record_line(1.0, "a1", "step.execute", instance="w-1", step="S2",
                    epoch=1),
        record_line(2.0, "a1", "rollback", instance="w-1", origin="S2",
                    epoch=1),
    ])
    assert [v.invariant for v in violations if
            v.invariant == "halt-before-reexecute"]
    (violation,) = [v for v in violations
                    if v.invariant == "halt-before-reexecute"]
    assert violation.instance == "w-1"
    assert len(violation.evidence) == 2
    assert "step.execute" in violation.evidence[0]
    assert "rollback" in violation.evidence[1]


def test_halt_before_reexecute_accepts_legal_order():
    assert check([
        record_line(1.0, "a1", "rollback", instance="w-1", origin="S2",
                    epoch=1),
        record_line(2.0, "a1", "step.execute", instance="w-1", step="S2",
                    epoch=1),
    ], ["halt-before-reexecute"]) == []


def test_execute_without_halt_record_is_legal():
    """A node can learn an epoch from a re-execution packet — no halt
    record required (the naive converse formulation would false-positive
    on every distributed downstream agent)."""
    assert check([
        record_line(1.0, "a2", "step.execute", instance="w-1", step="S6",
                    epoch=2),
    ], ["halt-before-reexecute"]) == []


def test_out_of_order_compensation_is_flagged():
    violations = check([
        record_line(1.0, "a1", "compensate.set", instance="w-1", step="S4",
                    chain="S4,S3"),
        record_line(2.0, "a1", "step.compensated", instance="w-1", step="S3",
                    comp="complete"),
        record_line(3.0, "a1", "step.compensated", instance="w-1", step="S4",
                    comp="complete"),
    ], ["reverse-order-compensation"])
    assert len(violations) == 1
    assert "S4" in violations[0].message
    assert len(violations[0].evidence) == 3


def test_in_order_compensation_passes():
    assert check([
        record_line(1.0, "a1", "ocr.compensate", instance="w-1", step="S4",
                    chain="S4,S3"),
        record_line(2.0, "a1", "step.compensate", instance="w-1", step="S4"),
        record_line(3.0, "a1", "step.compensate", instance="w-1", step="S3"),
    ], ["reverse-order-compensation"]) == []


def test_new_chain_resets_compensation_window():
    """A second announced chain restarts the expected order."""
    assert check([
        record_line(1.0, "a1", "compensate.thread", instance="w-1",
                    steps="S4,S3"),
        record_line(2.0, "a1", "step.compensated", instance="w-1", step="S4"),
        record_line(3.0, "a1", "step.compensated", instance="w-1", step="S3"),
        record_line(4.0, "a1", "compensate.thread", instance="w-1",
                    steps="S4,S3"),
        record_line(5.0, "a1", "step.compensated", instance="w-1", step="S4"),
    ], ["reverse-order-compensation"]) == []


def test_epoch_regression_is_flagged():
    violations = check([
        record_line(1.0, "a1", "halt.thread", instance="w-1", origin="S2",
                    epoch=2),
        record_line(2.0, "a1", "halt.thread", instance="w-1", origin="S2",
                    epoch=1),
    ], ["epoch-monotonicity"])
    assert len(violations) == 1
    assert "epoch 1" in violations[0].message


def test_epoch_monotonicity_is_per_node():
    """Different nodes legitimately see the same epoch once each."""
    assert check([
        record_line(1.0, "a1", "halt.thread", instance="w-1", origin="S2",
                    epoch=1),
        record_line(2.0, "a2", "halt.thread", instance="w-1", origin="S2",
                    epoch=1),
    ], ["epoch-monotonicity"]) == []


def test_double_commit_is_flagged():
    violations = check([
        record_line(1.0, "e", "workflow.commit", instance="w-1"),
        record_line(2.0, "e", "workflow.commit", instance="w-1"),
    ], ["at-most-once-commit"])
    assert len(violations) == 1
    assert "2 times" in violations[0].message


def test_commit_and_abort_is_flagged():
    violations = check([
        record_line(1.0, "e", "workflow.commit", instance="w-1"),
        record_line(2.0, "e", "workflow.aborted", instance="w-1"),
    ], ["at-most-once-commit"])
    assert len(violations) == 1
    assert "committed and aborted" in violations[0].message


def test_unknown_invariant_name_raises():
    with pytest.raises(CrewError):
        check([], ["no-such-invariant"])


def test_catalog_names_are_stable():
    assert set(INVARIANTS) == {
        "halt-before-reexecute",
        "reverse-order-compensation",
        "epoch-monotonicity",
        "at-most-once-commit",
    }


def test_violation_render_includes_chain():
    violations = check([
        record_line(1.0, "e", "workflow.commit", instance="w-1"),
        record_line(2.0, "e", "workflow.commit", instance="w-1"),
    ], ["at-most-once-commit"])
    rendered = violations[0].render()
    assert "at-most-once-commit" in rendered
    assert "workflow.commit" in rendered
    assert rendered.count("\n") == 2  # headline + two evidence lines
