"""Tests that the analytic model reproduces the paper's normalized values."""

import pytest

from repro.analysis.model import (
    architecture_model,
    centralized_model,
    distributed_model,
    parallel_model,
)
from repro.sim.metrics import Mechanism
from repro.workloads.params import PAPER_DEFAULTS


def test_table4_centralized_normalized_values():
    model = centralized_model(PAPER_DEFAULTS)
    assert model.load(Mechanism.NORMAL) == pytest.approx(15)
    assert model.load(Mechanism.INPUT_CHANGE) == pytest.approx(0.125)
    assert model.load(Mechanism.ABORT) == pytest.approx(0.05)
    assert model.load(Mechanism.FAILURE) == pytest.approx(0.5)
    assert model.load(Mechanism.COORDINATION) == pytest.approx(75)
    assert model.messages(Mechanism.NORMAL) == pytest.approx(60)
    assert model.messages(Mechanism.INPUT_CHANGE) == pytest.approx(0.125)
    assert model.messages(Mechanism.ABORT) == pytest.approx(0.2)
    assert model.messages(Mechanism.FAILURE) == pytest.approx(0.5)
    assert model.messages(Mechanism.COORDINATION) == 0


def test_table5_parallel_normalized_values():
    model = parallel_model(PAPER_DEFAULTS)
    assert model.load(Mechanism.NORMAL) == pytest.approx(3.75)
    assert model.load(Mechanism.INPUT_CHANGE) == pytest.approx(0.03125)
    assert model.load(Mechanism.ABORT) == pytest.approx(0.0125)
    assert model.load(Mechanism.FAILURE) == pytest.approx(0.125)
    assert model.load(Mechanism.COORDINATION) == pytest.approx(75)
    assert model.messages(Mechanism.NORMAL) == pytest.approx(60)
    assert model.messages(Mechanism.COORDINATION) == pytest.approx(300)


def test_table6_distributed_normalized_values():
    model = distributed_model(PAPER_DEFAULTS)
    assert model.load(Mechanism.NORMAL) == pytest.approx(0.3)
    assert model.load(Mechanism.INPUT_CHANGE) == pytest.approx(0.0025)
    assert model.load(Mechanism.ABORT) == pytest.approx(0.001)
    assert model.load(Mechanism.FAILURE) == pytest.approx(0.01)
    # NOTE: the paper prints 1.5·l here, but the expression at the Table 3
    # defaults evaluates to 3.0 (consistent only with z=100); we follow the
    # expression — see EXPERIMENTS.md.
    assert model.load(Mechanism.COORDINATION) == pytest.approx(3.0)
    assert model.messages(Mechanism.NORMAL) == pytest.approx(32)
    assert model.messages(Mechanism.INPUT_CHANGE) == pytest.approx(0.45)
    assert model.messages(Mechanism.ABORT) == pytest.approx(0.2)
    assert model.messages(Mechanism.FAILURE) == pytest.approx(1.8)
    assert model.messages(Mechanism.COORDINATION) == pytest.approx(150)


def test_architecture_model_lookup():
    assert architecture_model("centralized", PAPER_DEFAULTS).architecture == "centralized"
    with pytest.raises(KeyError):
        architecture_model("quantum", PAPER_DEFAULTS)


def test_scaling_with_z_and_e():
    wide = PAPER_DEFAULTS.evolve(z=100)
    assert distributed_model(wide).load(Mechanism.NORMAL) == pytest.approx(0.15)
    many = PAPER_DEFAULTS.evolve(e=8)
    assert parallel_model(many).load(Mechanism.NORMAL) == pytest.approx(15 / 8)
    # But parallel coordination messages grow with e.
    assert parallel_model(many).messages(Mechanism.COORDINATION) == pytest.approx(600)


def test_totals_helpers():
    model = centralized_model(PAPER_DEFAULTS)
    both = (Mechanism.NORMAL, Mechanism.FAILURE)
    assert model.total_load(both) == pytest.approx(15.5)
    assert model.total_messages(both) == pytest.approx(60.5)


def test_every_row_has_expression_strings():
    for name in ("centralized", "parallel", "distributed"):
        model = architecture_model(name, PAPER_DEFAULTS)
        assert len(model.rows) == 5
        for row in model.rows:
            assert row.load_expression
            assert row.message_expression
