"""Parallel sweep runner: canonical-order merge and worker-count determinism.

The acceptance bar for the sweep runner: fixed-seed per-category message
counts for all six architecture×failure configs are **byte-identical**
whether the sweep runs serially (``workers=1``) or fanned out over a
process pool (``workers=4``) — determinism is per task because every task
carries its own seed, so scheduling order must never leak into results.
"""

import json

from repro.analysis.experiment import run_architecture_experiment
from repro.analysis.sweep import SweepTask, run_sweep, sweep_tasks
from repro.workloads.params import PAPER_DEFAULTS

ARCHITECTURES = ("centralized", "parallel", "distributed")

# Small-but-real parameter points: with and without forced step failures.
FAILURE_POINTS = {
    "with-failure": PAPER_DEFAULTS.evolve(c=2, i=4, pf=0.2),
    "failure-free": PAPER_DEFAULTS.evolve(c=2, i=4, pf=0.0),
}


def six_config_tasks(seed=11):
    """The six arch×failure configs as sweep tasks, canonical order."""
    return [
        SweepTask(architecture, params, seed=seed,
                  label=f"{architecture}/{mode}")
        for architecture in ARCHITECTURES
        for mode, params in sorted(FAILURE_POINTS.items())
    ]


def category_counts(result):
    """Per-category (mechanism) message counts, JSON-canonicalized."""
    return json.dumps(
        {str(mechanism): count
         for mechanism, count in sorted(result.measured.messages.items(),
                                        key=lambda kv: str(kv[0]))},
        sort_keys=True,
    ).encode()


def test_workers_1_and_4_byte_identical_message_counts():
    tasks = six_config_tasks()
    serial = run_sweep(tasks, workers=1)
    pooled = run_sweep(tasks, workers=4)
    assert [t.label for t in serial.tasks] == [t.label for t in pooled.tasks]
    for task, a, b in zip(tasks, serial.results, pooled.results):
        assert category_counts(a) == category_counts(b), task.label
        assert a.committed == b.committed and a.aborted == b.aborted
        assert a.messages == b.messages


def test_sweep_matches_direct_serial_calls():
    tasks = six_config_tasks()
    sweep = run_sweep(tasks, workers=4)
    for task, pooled in zip(tasks, sweep.results):
        direct = run_architecture_experiment(
            task.architecture, task.params, coordination=task.coordination,
            seed=task.seed,
        )
        assert category_counts(direct) == category_counts(pooled), task.label


def test_results_merge_in_canonical_order():
    tasks = six_config_tasks()
    sweep = run_sweep(tasks, workers=2)
    assert [r.architecture for r in sweep.results] == [
        t.architecture for t in tasks
    ]
    labels = [row["label"] for row in sweep.run_log]
    assert labels == [t.label for t in tasks]
    for row, task in zip(sweep.run_log, tasks):
        assert row["seed"] == task.seed
        assert row["params"]["pf"] == task.params.pf


def test_run_log_rows_are_json_safe():
    sweep = run_sweep(six_config_tasks()[:1], workers=1)
    json.dumps(sweep.run_log)  # must not raise


def test_sweep_tasks_grid_is_architecture_major():
    tasks = sweep_tasks(seed=3)
    assert [(t.architecture, t.coordination) for t in tasks] == [
        ("centralized", False), ("centralized", True),
        ("parallel", False), ("parallel", True),
        ("distributed", False), ("distributed", True),
    ]
    assert all(t.seed == 3 for t in tasks)


def test_empty_task_list():
    sweep = run_sweep([], workers=4)
    assert sweep.results == [] and sweep.run_log == []


def test_progress_callback_fires_per_task_serial_and_pooled():
    tasks = six_config_tasks()[:3]
    for workers in (1, 2):
        seen = []

        def progress(done, total, task, result):
            seen.append((done, total, task.label, result.committed))

        sweep = run_sweep(tasks, workers=workers, progress=progress)
        assert [s[0] for s in sorted(seen)] == [1, 2, 3]
        assert all(s[1] == 3 for s in seen)
        assert {s[2] for s in seen} == {t.label for t in tasks}
        # progress never perturbs the canonical-order result merge
        assert [r.architecture for r in sweep.results] == [
            t.architecture for t in tasks
        ]


def test_run_log_carries_resource_accounting():
    sweep = run_sweep(six_config_tasks()[:1], workers=1)
    row = sweep.run_log[0]
    assert row["wall_time_s"] > 0
    assert row["events"] > 0
    assert row["events_per_sec"] > 0
    assert row["peak_rss_kb"] is None or row["peak_rss_kb"] > 0
