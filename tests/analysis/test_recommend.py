"""Tests that Table 7 — the recommendation matrix — is reproduced exactly."""

from repro.analysis.recommend import (
    SCENARIOS,
    rank_architectures,
    recommendation_matrix,
)
from repro.workloads.params import PAPER_DEFAULTS


def test_load_rankings_match_table7():
    """Load at engine: (1) Distributed (2) Parallel (3) Central, all columns."""
    for scenario in SCENARIOS:
        ranking = rank_architectures("load", scenario)
        assert ranking.order() == ("distributed", "parallel", "centralized"), scenario
        assert [rank for rank, __, __v in ranking.entries] == [1, 2, 3]


def test_messages_normal_matches_table7():
    """(1) Distributed (2) Parallel (2) Central — a genuine tie at rank 2."""
    ranking = rank_architectures("messages", "normal")
    assert ranking.rank_of("distributed") == 1
    assert ranking.rank_of("centralized") == 2
    assert ranking.rank_of("parallel") == 2


def test_messages_normal_failures_matches_table7():
    ranking = rank_architectures("messages", "normal+failures")
    assert ranking.rank_of("distributed") == 1
    assert ranking.rank_of("centralized") == 2
    assert ranking.rank_of("parallel") == 2


def test_messages_normal_coordinated_matches_table7():
    """(1) Central (2) Distributed (3) Parallel."""
    ranking = rank_architectures("messages", "normal+coordinated")
    assert ranking.order() == ("centralized", "distributed", "parallel")


def test_matrix_covers_all_cells():
    matrix = recommendation_matrix()
    assert set(matrix) == {
        (criterion, scenario)
        for criterion in ("load", "messages")
        for scenario in SCENARIOS
    }


def test_heavy_coordination_flips_message_winner():
    """The paper's crossover: with no coordination requirements distributed
    wins messages; with heavy coordination centralized does."""
    none = PAPER_DEFAULTS.evolve(me=0, ro=0, rd=0)
    ranking = rank_architectures("messages", "normal+coordinated", none)
    assert ranking.order()[0] == "distributed"
    heavy = PAPER_DEFAULTS.evolve(me=4, ro=4, rd=2)
    ranking = rank_architectures("messages", "normal+coordinated", heavy)
    assert ranking.order()[0] == "centralized"


def test_rank_of_unknown_architecture():
    import pytest

    ranking = rank_architectures("load", "normal")
    with pytest.raises(KeyError):
        ranking.rank_of("quantum")


def test_invalid_criterion_rejected():
    import pytest

    with pytest.raises(ValueError):
        rank_architectures("latency", "normal")
