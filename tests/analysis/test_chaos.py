"""Tests for the chaos-exploration harness."""

import pytest

from repro.analysis.chaos import (
    CHAOS_CONFIGS,
    ChaosTask,
    chaos_tasks,
    config_nodes,
    run_chaos,
    split_config,
)
from repro.errors import CrewError
from repro.sim.faults import FaultPlan


def test_chaos_configs_cover_all_six():
    assert len(CHAOS_CONFIGS) == 6
    for label in CHAOS_CONFIGS:
        architecture, coordinated = split_config(label)
        assert architecture in ("centralized", "parallel", "distributed")
        assert isinstance(coordinated, bool)


def test_split_config_rejects_garbage():
    for label in ("centralized", "parallel/chaotic", "a/b/c"):
        with pytest.raises(CrewError):
            split_config(label)


def test_config_nodes_match_built_systems():
    from repro.analysis.experiment import build_control_system

    task = ChaosTask("distributed/normal", seed=1)
    params = task.resolved_params()
    for architecture in ("centralized", "parallel", "distributed"):
        system = build_control_system(architecture, params, seed=1)
        assert sorted(config_nodes(architecture, params)) == sorted(
            system.network.node_names()
        )


def test_task_plan_derived_from_seed_is_stable():
    task = ChaosTask("centralized/normal", seed=9)
    assert task.plan() == task.plan()
    assert task.plan().crashes  # default profile schedules one crash
    # An explicit spec takes precedence over the seed.
    pinned = ChaosTask("centralized/normal", seed=9, plan_spec="drop=0.5")
    assert pinned.plan() == FaultPlan(drop_p=0.5)


def test_chaos_run_is_bit_reproducible():
    task = ChaosTask("distributed/normal", seed=3)
    first = task.run().as_dict()
    second = task.run().as_dict()
    # Resource accounting (wall time, throughput, RSS high-water) measures
    # the host, not the simulation — everything else must be bit-identical.
    for report in (first, second):
        for key in ("wall_time_s", "events_per_sec", "peak_rss_kb"):
            report.pop(key)
    assert first == second
    assert first["messages"] > 0


def test_clean_run_has_no_violations_or_artifacts():
    outcome = ChaosTask("centralized/normal", seed=1,
                        plan_spec="none").run()
    assert outcome.ok
    assert outcome.violations == []
    assert outcome.minimized_spec is None
    assert outcome.trace_jsonl is None
    assert outcome.started == outcome.committed + outcome.aborted


def test_strict_mode_flags_lost_messages():
    # drop with no crash/stall; strict mode turns permanent loss into a
    # violation even when the protocols still converge.
    task = ChaosTask("distributed/normal", seed=4,
                     plan_spec="drop=1.0,droplimit=200", strict=True)
    outcome = task.run()
    if outcome.fault_stats.get("lost", 0):
        assert not outcome.ok
        assert any("lost" in v for v in outcome.violations)


def test_repro_line_round_trips_through_task():
    outcome = ChaosTask("parallel/normal", seed=2).run()
    line = outcome.repro_line
    assert "repro chaos" in line
    assert f"--seed {outcome.seed}" in line
    assert f"--config {outcome.config}" in line


def test_chaos_tasks_enumerates_config_major():
    tasks = chaos_tasks([1, 2], configs=("centralized/normal",
                                         "distributed/coordinated"))
    assert [(t.config, t.seed) for t in tasks] == [
        ("centralized/normal", 1), ("centralized/normal", 2),
        ("distributed/coordinated", 1), ("distributed/coordinated", 2),
    ]


def test_run_chaos_serial_matches_task_order():
    tasks = chaos_tasks([1], configs=("centralized/normal",
                                      "parallel/normal"))
    outcomes = run_chaos(tasks, workers=1)
    assert [(o.config, o.seed) for o in outcomes] == [
        ("centralized/normal", 1), ("parallel/normal", 1),
    ]


@pytest.mark.parametrize("config", CHAOS_CONFIGS)
def test_single_node_crash_and_restart_converges(config):
    """Acceptance: crash + restart of a single node mid-run must leave
    every instance terminal with all invariants intact, in all six
    configs."""
    architecture, __ = split_config(config)
    task = ChaosTask(config, seed=1)
    # Crash a load-bearing node mid-instance: the engine where there is
    # one, otherwise the coordination-heavy first agent.
    node = config_nodes(architecture, task.resolved_params())[0]
    outcome = ChaosTask(config, seed=1,
                        plan_spec=f"crash={node}@8+10").run()
    assert outcome.ok, outcome.violations
    assert outcome.started == outcome.committed + outcome.aborted
    assert outcome.fault_stats["crashes"] == 1
    assert outcome.fault_stats["recoveries"] == 1


def test_random_schedule_runs_clean_across_configs():
    """A default random schedule (drop+dup+delay+reorder+crash+stall)
    holds every invariant on a smoke seed in each config."""
    for config in CHAOS_CONFIGS:
        outcome = ChaosTask(config, seed=6).run()
        assert outcome.ok, (config, outcome.violations)


def test_regression_stale_launch_races_epoch_bump():
    """Pin of a harness-found wedge: a delayed pre-rollback packet starts a
    step just before the invalidation arrives; the stale completion must
    release the RUNNING record and re-drive the step, or the instance
    never terminates (distributed/coordinated, seed 20)."""
    outcome = ChaosTask(
        "distributed/coordinated", seed=20,
        plan_spec="drop=0.05,dup=0.03,delay=0.05,reorder=0.05",
    ).run()
    assert outcome.ok, outcome.violations


def test_chaos_progress_callback_and_resource_accounting():
    tasks = chaos_tasks([1, 2], configs=("centralized/normal",))
    seen = []

    def progress(done, total, task, outcome):
        seen.append((done, total, task.seed, outcome.ok))

    outcomes = run_chaos(tasks, workers=1, progress=progress)
    assert [s[0] for s in sorted(seen)] == [1, 2]
    assert all(s[1] == 2 for s in seen)
    assert [o.seed for o in outcomes] == [1, 2]  # canonical order kept
    for outcome in outcomes:
        assert outcome.wall_time_s > 0
        assert outcome.events > 0
        assert outcome.events_per_sec > 0
