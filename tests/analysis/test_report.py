"""Tests for table rendering and measured-cost normalization."""

from repro.analysis.model import centralized_model, distributed_model
from repro.analysis.recommend import recommendation_matrix
from repro.analysis.report import (
    format_table,
    measure_costs,
    render_architecture_table,
    render_comparison,
    render_recommendation,
)
from repro.sim.metrics import Mechanism, MetricsCollector
from repro.workloads.params import PAPER_DEFAULTS


def test_format_table_alignment():
    text = format_table(["a", "bee"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert lines[0].startswith("a  ")
    assert "-+-" in lines[1]
    assert len(lines) == 4


def test_measure_costs_normalizes_per_instance():
    metrics = MetricsCollector()
    metrics.instances_started = 2
    for __ in range(10):
        metrics.record_message(Mechanism.NORMAL, "StepExecute")
    metrics.record_load("engine", Mechanism.NORMAL, 30.0)
    measured = measure_costs("centralized", metrics, ["engine"])
    assert measured.messages[Mechanism.NORMAL] == 5.0
    assert measured.load[Mechanism.NORMAL] == 15.0
    assert measured.instances == 2


def test_render_architecture_table_contains_expressions():
    text = render_architecture_table(distributed_model(PAPER_DEFAULTS))
    assert "s*a+f" in text
    assert "Normal Execution" in text
    assert "Distributed" in text


def test_render_comparison_side_by_side():
    metrics = MetricsCollector()
    metrics.instances_started = 1
    metrics.record_message(Mechanism.NORMAL, "StepExecute")
    measured = measure_costs("centralized", metrics, ["engine"])
    text = render_comparison(centralized_model(PAPER_DEFAULTS), measured)
    assert "load (paper)" in text and "msgs (measured)" in text


def test_render_recommendation_table7_shape():
    text = render_recommendation(recommendation_matrix())
    assert "Recommended Choice" in text
    assert "(1) distributed" in text
    assert "(1) centralized" in text
