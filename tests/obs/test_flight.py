"""Flight recorder: bounded ring, crash/step-fail snapshots, trace bypass."""

from repro.engines import SystemConfig
from repro.obs.flight import FlightRecorder
from repro.workloads import figure3_workflow
from tests.conftest import linear_schema, make_system, register_programs


def test_ring_evicts_oldest():
    recorder = FlightRecorder(capacity=4)
    for n in range(10):
        recorder.note(float(n), "send", "Ping", "b", n, n)
    assert len(recorder) == 4
    assert recorder.recorded == 10
    snapshot = recorder.snapshot()
    assert [e["msg_id"] for e in snapshot] == [6, 7, 8, 9]


def test_snapshot_returns_copies():
    recorder = FlightRecorder(capacity=2)
    recorder.note(0.0, "send", "Ping", "b", 1, 1)
    snap = recorder.snapshot()
    snap[0]["msg_id"] = 999
    assert recorder.snapshot()[0]["msg_id"] == 1


def run_figure3(architecture, trace, flight_capacity=64):
    system = make_system(
        architecture,
        config=SystemConfig(seed=11, trace=trace,
                            flight_capacity=flight_capacity),
    )
    figure3_workflow().install(system)
    ids = [system.start_workflow("Figure3", {"load": 5})]
    system.run()
    return system, ids


def test_step_fail_snapshots_even_with_tracing_off():
    """The whole point: post-mortem context lands when tracing is off."""
    for architecture in ("centralized", "distributed"):
        system, ids = run_figure3(architecture, trace=False)
        assert all(system.outcome(i).committed for i in ids)
        snaps = [r for r in system.trace.records
                 if r.kind == "flight.snapshot"]
        assert snaps, f"{architecture}: no flight snapshot on step.fail"
        snap = snaps[0]
        assert snap.detail["reason"] == "step.fail"
        assert snap.detail["step"] == "S4"
        events = snap.detail["events"]
        assert events, "snapshot should carry recent transport events"
        assert {"time", "dir", "interface", "peer", "msg_id",
                "lamport"} <= set(events[0])


def test_crash_dumps_flight_ring():
    system = make_system("distributed",
                         config=SystemConfig(seed=3, trace=False))
    schema = linear_schema()
    system.register_schema(schema)
    register_programs(system, schema)
    system.start_workflow("Linear", {"x": 1})
    victim = system.agent_names()[0]
    system.simulator.schedule(1.5, system.agent(victim).crash)
    system.simulator.schedule(3.0, system.agent(victim).recover)
    system.run()
    snaps = [r for r in system.trace.records
             if r.kind == "flight.snapshot" and r.detail["reason"] == "crash"]
    assert [r.node for r in snaps] == [victim]


def test_flight_capacity_zero_disables_recorder():
    system, ids = run_figure3("distributed", trace=False, flight_capacity=0)
    assert all(system.outcome(i).committed for i in ids)
    assert len(system.trace) == 0
    assert all(system.agent(a).flight is None for a in system.agent_names())


def test_flight_events_survive_jsonl_export():
    """Snapshots are nested lists of dicts; the exporter must keep them."""
    import json

    from repro.obs.export import trace_to_jsonl

    system, __ = run_figure3("centralized", trace=False)
    text = trace_to_jsonl(system.trace)
    rows = [json.loads(line) for line in text.splitlines()]
    snaps = [r for r in rows if r["kind"] == "flight.snapshot"]
    assert snaps
    events = snaps[0]["detail"]["events"]
    assert isinstance(events, list) and isinstance(events[0], dict)
    assert "msg_id" in events[0]


def test_snapshot_is_bounded_window():
    """A long run's snapshot carries at most ``flight_capacity`` events."""
    system = make_system(
        "distributed",
        config=SystemConfig(seed=5, trace=False, flight_capacity=8),
    )
    figure3_workflow().install(system)
    ids = [system.start_workflow("Figure3", {"load": 5}, delay=i * 0.5)
           for i in range(4)]
    system.run()
    assert all(system.outcome(i).committed for i in ids)
    snaps = [r for r in system.trace.records
             if r.kind == "flight.snapshot"]
    assert snaps
    assert all(len(r.detail["events"]) <= 8 for r in snaps)
