"""End-to-end observability: spans and metrics emitted by real runs.

Runs the canonical Figure-3 scenario (which exercises failure handling
and recovery) under each architecture and asserts the span tree and the
metrics registry reflect what happened.
"""

import pytest

from repro.engines import SystemConfig
from repro.workloads import figure3_workflow
from tests.conftest import ALL_ARCHITECTURES, make_system


def run_figure3(architecture, instances=3, trace=True):
    system = make_system(
        architecture, config=SystemConfig(seed=11, trace=trace)
    )
    figure3_workflow().install(system)
    ids = [system.start_workflow("Figure3", {"load": 5}, delay=i * 0.5)
           for i in range(instances)]
    system.run()
    return system, ids


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_span_categories_present(architecture):
    system, ids = run_figure3(architecture)
    assert len(system.tracer.by_category("workflow")) == len(ids)
    assert system.tracer.by_category("step")
    assert system.tracer.by_category("rule")
    assert system.tracer.by_category("recovery")  # Figure 3 always rolls back


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_span_tree_is_well_nested(architecture):
    system, __ = run_figure3(architecture)
    system.tracer.finish(system.simulator.now)
    assert system.tracer.check_nesting() == []
    assert system.tracer.open_spans() == []


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_steps_parent_under_their_workflow(architecture):
    system, __ = run_figure3(architecture, instances=1)
    (wf,) = system.tracer.by_category("workflow")
    by_id = {s.span_id: s for s in system.tracer.spans}

    def root_of(span):
        while span.parent_id is not None:
            span = by_id[span.parent_id]
        return span

    steps = system.tracer.by_category("step")
    assert steps
    assert all(root_of(s) is wf for s in steps)


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_step_latency_histogram_is_populated(architecture):
    system, __ = run_figure3(architecture)
    hist = system.registry.get("crew_step_latency", architecture=architecture)
    assert hist is not None
    assert hist.count > 0
    assert hist.p95 > 0.0


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_instance_counters_match_outcomes(architecture):
    system, ids = run_figure3(architecture)
    started = system.registry.get(
        "crew_instances_started_total", architecture=architecture
    )
    assert started.value == len(ids)
    finished = system.registry.children("crew_instances_finished_total")
    assert sum(c.value for c in finished) == len(ids)


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_recovery_spans_resolve(architecture):
    system, __ = run_figure3(architecture)
    system.tracer.finish(system.simulator.now)
    episodes = system.tracer.by_category("recovery")
    durations = [s for s in episodes if s.name.startswith("recovery:")]
    assert durations
    assert all("resolved" in s.attrs or s.attrs.get("auto_closed")
               for s in durations)
    recoveries = system.registry.get(
        "crew_recovery_duration", architecture=architecture
    )
    assert recoveries is not None and recoveries.count > 0


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_tracing_disabled_emits_nothing(architecture):
    system, ids = run_figure3(architecture, trace=False)
    assert len(system.tracer) == 0
    assert len(system.registry) == 0
    # The flight recorder deliberately survives the trace switch: its
    # post-mortem snapshots (figure3 injects a step failure) are the only
    # records allowed through.
    assert all(rec.kind == "flight.snapshot" for rec in system.trace)
    # the run itself is unaffected
    assert all(system.outcome(i).status.value == "committed" for i in ids)


def test_outcomes_identical_with_and_without_tracing():
    """Observability must not perturb the simulation."""
    for architecture in ALL_ARCHITECTURES:
        outcomes = []
        for trace in (True, False):
            system, ids = run_figure3(architecture, trace=trace)
            outcomes.append([
                (system.outcome(i).status.value,
                 tuple(sorted(system.outcome(i).outputs.items())))
                for i in ids
            ])
        assert outcomes[0] == outcomes[1], architecture
