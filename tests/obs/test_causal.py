"""Cross-node causal propagation: Lamport clocks and message-span links."""

import pytest

from repro.engines import SystemConfig
from repro.obs.causal import MessageTracer
from repro.obs.spans import Tracer
from repro.sim.kernel import Simulator
from repro.sim.metrics import Mechanism
from repro.sim.network import Network
from repro.sim.node import Node
from repro.workloads import figure3_workflow
from tests.conftest import ALL_ARCHITECTURES, make_system


class EchoNode(Node):
    """Replies once to every ``ping`` it receives."""

    def handle_message(self, message):
        if message.interface == "ping":
            self.send(message.src, "pong", {"n": message.payload["n"]},
                      Mechanism.NORMAL)


class SilentNode(Node):
    def handle_message(self, message):
        pass


def make_pair(causal=True):
    simulator = Simulator()
    network = Network(simulator)
    tracer = Tracer(enabled=causal)
    if causal:
        network.causal = MessageTracer(tracer)
    a = EchoNode("a", simulator, network)
    b = EchoNode("b", simulator, network)
    return simulator, network, tracer, a, b


def test_lamport_clocks_tick_and_merge():
    simulator, network, __, a, b = make_pair(causal=False)
    network.send("a", "b", "ping", {"n": 1}, Mechanism.NORMAL)
    simulator.run()
    # a: send tick (1), then merge on b's pong (max(1, b_send) + 1).
    assert a.lamport_clock > 1
    assert b.lamport_clock >= 2  # merge of a's clock then its own send tick


def test_lamport_merge_takes_max():
    simulator, network, __, a, b = make_pair(causal=False)
    a.lamport_clock = 40
    network.send("a", "b", "ping", {"n": 1}, Mechanism.NORMAL)
    simulator.run()
    assert b.lamport_clock >= 42  # merged past a's clock, not from 0


def test_send_and_recv_spans_are_linked():
    simulator, __, tracer, a, b = make_pair()
    a.send("b", "ping", {"n": 1}, Mechanism.NORMAL)
    simulator.run()
    messages = tracer.by_category("message")
    sends = [s for s in messages if s.attrs["direction"] == "send"]
    recvs = [s for s in messages if s.attrs["direction"] == "recv"]
    assert len(sends) == 2 and len(recvs) == 2  # ping + pong
    by_id = {s.span_id: s for s in messages}
    for recv in recvs:
        assert recv.link_id is not None
        send = by_id[recv.link_id]
        assert send.attrs["msg_id"] == recv.attrs["msg_id"]
        assert send.attrs["lamport"] < recv.attrs["lamport"]


def test_reply_send_links_to_recv_span():
    """The pong's send span links to the ping's recv span (continuity)."""
    simulator, __, tracer, a, b = make_pair()
    a.send("b", "ping", {"n": 1}, Mechanism.NORMAL)
    simulator.run()
    messages = tracer.by_category("message")
    by_id = {s.span_id: s for s in messages}
    pong_send = next(s for s in messages
                     if s.name == "send:pong" and s.node == "b")
    assert pong_send.link_id is not None
    ping_recv = by_id[pong_send.link_id]
    assert ping_recv.name == "recv:ping" and ping_recv.node == "b"


def test_schedule_causal_preserves_span_across_delay():
    simulator = Simulator()
    network = Network(simulator)
    tracer = Tracer()
    network.causal = MessageTracer(tracer)

    class DeferredEcho(Node):
        def handle_message(self, message):
            if message.interface == "ping":
                self.schedule_causal(5.0, self._reply, message.src)

        def _reply(self, dst):
            self.send(dst, "pong", {}, Mechanism.NORMAL)

    a = SilentNode("a", simulator, network)
    DeferredEcho("b", simulator, network)
    a.send("b", "ping", {"n": 1}, Mechanism.NORMAL)
    simulator.run()
    messages = tracer.by_category("message")
    pong_send = next(s for s in messages if s.name == "send:pong")
    by_id = {s.span_id: s for s in messages}
    assert pong_send.link_id is not None
    assert by_id[pong_send.link_id].name == "recv:ping"


def test_schedule_causal_without_span_is_plain_schedule():
    simulator = Simulator()
    network = Network(simulator)
    node = SilentNode("a", simulator, network)
    hits = []
    node.schedule_causal(1.0, hits.append, "x")
    simulator.run()
    assert hits == ["x"]


def test_disabled_tracer_stamps_nothing():
    simulator, network, tracer, a, b = make_pair(causal=False)
    message = network.send("a", "b", "ping", {"n": 1}, Mechanism.NORMAL)
    assert message.send_span is None
    assert message.lamport == 1
    simulator.run()
    assert len(tracer) == 0
    assert a.current_span is None and b.current_span is None


def test_instance_id_payloads_annotate_message_spans():
    simulator, __, tracer, a, b = make_pair()
    a.send("b", "ping", {"n": 1, "instance_id": "wf-9"},
           Mechanism.NORMAL)
    simulator.run()
    ping_spans = [s for s in tracer.by_category("message")
                  if s.name.endswith(":ping")]
    assert ping_spans
    assert all(s.attrs["instance"] == "wf-9" for s in ping_spans)


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_engines_emit_linked_message_spans(architecture):
    """Every recv span in a real failure-handling run resolves its link."""
    system = make_system(architecture, config=SystemConfig(seed=11))
    figure3_workflow().install(system)
    ids = [system.start_workflow("Figure3", {"load": 5}, delay=i * 0.5)
           for i in range(2)]
    system.run()
    assert all(system.outcome(i).committed for i in ids)
    messages = system.tracer.by_category("message")
    assert messages, "engines must emit message spans"
    by_id = {s.span_id: s for s in system.tracer.spans}
    recvs = [s for s in messages if s.attrs["direction"] == "recv"]
    assert recvs
    for recv in recvs:
        assert recv.link_id is not None, f"unlinked recv {recv!r}"
        assert recv.link_id in by_id, f"orphan link on {recv!r}"
