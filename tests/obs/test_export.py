"""Unit tests for the trace/metrics exporters."""

import json

from repro.obs.export import (
    US_PER_TIME_UNIT,
    chrome_trace,
    prometheus_text,
    render_chrome_trace,
    trace_to_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Tracer
from repro.sim.tracing import Trace


def make_tracer():
    tracer = Tracer()
    wf = tracer.start("wf-1", "workflow", "engine", 0.0, schema="Demo")
    step = tracer.start("wf-1/S1", "step", "agent-1", 1.0, parent=wf)
    tracer.end(step, 3.0, status="done")
    tracer.end(wf, 4.0, status="COMMITTED")
    return tracer


def test_jsonl_merges_records_and_spans_in_time_order():
    trace = Trace()
    trace.record(0.5, "engine", "workflow.start", instance="wf-1")
    text = trace_to_jsonl(trace, make_tracer())
    rows = [json.loads(line) for line in text.splitlines()]
    assert [r["type"] for r in rows] == ["span", "record", "span"]
    times = [r.get("time", r.get("start")) for r in rows]
    assert times == sorted(times)
    span_row = rows[-1]
    assert span_row["duration"] == 2.0
    assert span_row["parent_id"] == rows[0]["span_id"]


def test_jsonl_stringifies_non_json_values():
    trace = Trace()
    trace.record(1.0, "n", "k", payload=object())
    row = json.loads(trace_to_jsonl(trace))
    assert isinstance(row["detail"]["payload"], str)


def test_chrome_trace_structure():
    doc = chrome_trace(make_tracer())
    events = doc["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    completes = [e for e in events if e["ph"] == "X"]
    assert {m["args"]["name"] for m in metas} >= {"crew-sim", "engine", "agent-1"}
    assert len(completes) == 2
    wf = next(e for e in completes if e["cat"] == "workflow")
    step = next(e for e in completes if e["cat"] == "step")
    assert wf["ts"] == 0.0
    assert step["ts"] == 1.0 * US_PER_TIME_UNIT
    assert step["dur"] == 2.0 * US_PER_TIME_UNIT
    assert step["args"]["parent_id"] == wf["args"]["span_id"]
    # thread ids: one per node, stable within the document
    assert wf["tid"] != step["tid"]


def test_chrome_trace_skips_open_spans_and_adds_instants():
    tracer = Tracer()
    tracer.start("left-open", "workflow", "engine", 0.0)
    trace = Trace()
    trace.record(2.0, "engine", "step.done", step="S1")
    doc = chrome_trace(tracer, trace)
    assert not [e for e in doc["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["name"] == "step.done"
    assert instants[0]["cat"] == "trace"


def test_render_chrome_trace_is_valid_json():
    parsed = json.loads(render_chrome_trace(make_tracer()))
    assert parsed["displayTimeUnit"] == "ms"
    assert isinstance(parsed["traceEvents"], list)


def test_prometheus_counter_and_gauge_lines():
    reg = MetricsRegistry()
    reg.counter("crew_recoveries_total", help="recovery episodes",
                node="engine").inc(3)
    reg.gauge("crew_sim_time").set(12.5)
    text = prometheus_text(reg)
    assert "# HELP crew_recoveries_total recovery episodes" in text
    assert "# TYPE crew_recoveries_total counter" in text
    assert 'crew_recoveries_total{node="engine"} 3' in text
    assert "crew_sim_time 12.5" in text
    assert text.endswith("\n")


def test_prometheus_histogram_is_cumulative_with_inf_bucket():
    reg = MetricsRegistry()
    h = reg.histogram("crew_step_latency", buckets=(1.0, 5.0))
    for v in (0.5, 2.0, 99.0):
        h.observe(v)
    lines = prometheus_text(reg).splitlines()
    buckets = [ln for ln in lines if "_bucket" in ln]
    assert buckets == [
        'crew_step_latency_bucket{le="1"} 1',
        'crew_step_latency_bucket{le="5"} 2',
        'crew_step_latency_bucket{le="+Inf"} 3',
    ]
    assert "crew_step_latency_sum 101.5" in lines
    assert "crew_step_latency_count 3" in lines


def test_prometheus_empty_registry_is_empty_string():
    assert prometheus_text(MetricsRegistry()) == ""


# -- edge cases: empty traces and open spans --------------------------------


def test_exporters_handle_completely_empty_inputs():
    assert trace_to_jsonl(Trace()) == ""
    assert trace_to_jsonl(None, Tracer()) == ""
    assert trace_to_jsonl(None, None) == ""
    doc = chrome_trace(Tracer(), Trace())
    assert [e["ph"] for e in doc["traceEvents"]] == ["M"]  # process meta only
    json.loads(render_chrome_trace(None, None))


def test_jsonl_marks_open_spans():
    tracer = Tracer()
    tracer.start("left-open", "workflow", "engine", 1.0)
    row = json.loads(trace_to_jsonl(None, tracer))
    assert row["open"] is True
    assert row["end"] is None
    assert row["duration"] == 0.0


def test_chrome_trace_open_span_end_renders_open_spans():
    tracer = Tracer()
    tracer.start("left-open", "workflow", "engine", 1.0)
    doc = chrome_trace(tracer, open_span_end=5.0)
    (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert event["ts"] == 1.0 * US_PER_TIME_UNIT
    assert event["dur"] == 4.0 * US_PER_TIME_UNIT
    assert event["args"]["open"] is True


def test_finish_attributes_close_time_to_open_spans():
    """``Tracer.finish`` then export: closed at finish time, flagged."""
    tracer = Tracer()
    tracer.start("left-open", "step", "agent-1", 1.0)
    assert tracer.finish(7.5) == 1
    row = json.loads(trace_to_jsonl(None, tracer))
    assert row["end"] == 7.5
    assert row["open"] is False
    assert row["attrs"]["auto_closed"] is True


def test_jsonl_keeps_nested_structures():
    trace = Trace()
    trace.record(1.0, "n", "flight.snapshot",
                 events=[{"msg_id": 1, "extra": object()}], reason="crash")
    row = json.loads(trace_to_jsonl(trace))
    events = row["detail"]["events"]
    assert events[0]["msg_id"] == 1
    assert isinstance(events[0]["extra"], str)


# -- cross-node flow events and filters -------------------------------------


def make_linked_tracer():
    tracer = Tracer()
    send = tracer.instant("send:Ping", "message", "a", 1.0,
                          direction="send", msg_id=1, lamport=1)
    tracer.instant("recv:Ping", "message", "b", 2.0, link=send,
                   direction="recv", msg_id=1, lamport=2)
    return tracer


def test_chrome_trace_emits_flow_events_for_links():
    tracer = make_linked_tracer()
    doc = chrome_trace(tracer)
    events = doc["traceEvents"]
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == 1 and len(finishes) == 1
    (start,), (finish,) = starts, finishes
    recv = next(e for e in events
                if e["ph"] == "X" and e["name"] == "recv:Ping")
    send = next(e for e in events
                if e["ph"] == "X" and e["name"] == "send:Ping")
    assert start["id"] == finish["id"] == recv["args"]["span_id"]
    assert start["tid"] == send["tid"] and start["ts"] == send["ts"]
    assert finish["tid"] == recv["tid"] and finish["ts"] == recv["ts"]
    assert finish["bp"] == "e"
    assert recv["args"]["link_id"] == send["args"]["span_id"]


def test_chrome_trace_drops_flow_when_one_end_filtered_out():
    tracer = make_linked_tracer()
    doc = chrome_trace(tracer, nodes={"b"})
    events = doc["traceEvents"]
    assert [e["name"] for e in events if e["ph"] == "X"] == ["recv:Ping"]
    assert not [e for e in events if e["ph"] in ("s", "f")]


def test_jsonl_node_and_category_filters():
    trace = Trace()
    trace.record(0.5, "a", "workflow.start", instance="wf-1")
    trace.record(0.6, "b", "step.done", instance="wf-1")
    tracer = make_linked_tracer()
    rows = [json.loads(line) for line in
            trace_to_jsonl(trace, tracer, nodes={"a"}).splitlines()]
    assert {r["node"] for r in rows} == {"a"}
    rows = [json.loads(line) for line in
            trace_to_jsonl(trace, tracer,
                           categories={"message"}).splitlines()]
    spans = [r for r in rows if r["type"] == "span"]
    assert spans and all(r["category"] == "message" for r in spans)
    # records have no category and are unaffected by the category filter
    assert [r for r in rows if r["type"] == "record"]


def test_jsonl_span_rows_carry_link_id():
    tracer = make_linked_tracer()
    rows = [json.loads(line)
            for line in trace_to_jsonl(None, tracer).splitlines()]
    send = next(r for r in rows if r["name"] == "send:Ping")
    recv = next(r for r in rows if r["name"] == "recv:Ping")
    assert send["link_id"] is None
    assert recv["link_id"] == send["span_id"]


# -- edge cases: escaping, empty histograms, dropped-record provenance ------


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("crew_weird_total",
                path='C:\\tmp\\"x"\nend').inc(1)
    text = prometheus_text(reg)
    assert 'path="C:\\\\tmp\\\\\\"x\\"\\nend"' in text
    assert "\n" not in text.split("crew_weird_total{")[1].split("}")[0]


def test_prometheus_escapes_help_text():
    reg = MetricsRegistry()
    reg.gauge("crew_g", help="line one\nline two \\ slash").set(1)
    lines = prometheus_text(reg).splitlines()
    help_line = next(ln for ln in lines if ln.startswith("# HELP"))
    assert help_line == "# HELP crew_g line one\\nline two \\\\ slash"


def test_prometheus_empty_histogram_renders_zero_buckets():
    reg = MetricsRegistry()
    reg.histogram("crew_latency", buckets=(1.0, 2.0))
    lines = prometheus_text(reg).splitlines()
    assert 'crew_latency_bucket{le="1"} 0' in lines
    assert 'crew_latency_bucket{le="+Inf"} 0' in lines
    assert "crew_latency_sum 0" in lines
    assert "crew_latency_count 0" in lines


def test_counter_gauge_name_collision_is_rejected_before_export():
    # The exposition format forbids one family with two kinds; the
    # registry refuses the collision at creation time so the exporter
    # can never emit an ambiguous family.
    reg = MetricsRegistry()
    reg.counter("crew_thing").inc()
    import pytest
    with pytest.raises(ValueError):
        reg.gauge("crew_thing")
    text = prometheus_text(reg)
    assert text.count("# TYPE crew_thing ") == 1


def test_jsonl_appends_meta_line_when_records_dropped():
    trace = Trace(capacity=1)
    trace.record(1.0, "n", "k")
    trace.record(2.0, "n", "k")
    lines = trace_to_jsonl(trace).splitlines()
    meta = json.loads(lines[-1])
    assert meta == {"type": "meta", "dropped_records": 1,
                    "drop_policy": "newest", "capacity": 1}
    # and the analyzer skips it without error
    from repro.analysis.causal import CausalTrace
    ct = CausalTrace.from_jsonl("\n".join(lines))
    assert len(ct.records) == 1


def test_jsonl_has_no_meta_line_without_drops():
    trace = Trace()
    trace.record(1.0, "n", "k")
    assert "meta" not in trace_to_jsonl(trace)


def test_chrome_trace_carries_drop_metadata():
    trace = Trace(capacity=1, ring=True)
    trace.record(1.0, "n", "k")
    trace.record(2.0, "n", "k")
    doc = chrome_trace(None, trace)
    assert doc["metadata"] == {"dropped_records": 1,
                               "drop_policy": "oldest", "capacity": 1}
    assert "metadata" not in chrome_trace(None, Trace())
