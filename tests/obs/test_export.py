"""Unit tests for the trace/metrics exporters."""

import json

from repro.obs.export import (
    US_PER_TIME_UNIT,
    chrome_trace,
    prometheus_text,
    render_chrome_trace,
    trace_to_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Tracer
from repro.sim.tracing import Trace


def make_tracer():
    tracer = Tracer()
    wf = tracer.start("wf-1", "workflow", "engine", 0.0, schema="Demo")
    step = tracer.start("wf-1/S1", "step", "agent-1", 1.0, parent=wf)
    tracer.end(step, 3.0, status="done")
    tracer.end(wf, 4.0, status="COMMITTED")
    return tracer


def test_jsonl_merges_records_and_spans_in_time_order():
    trace = Trace()
    trace.record(0.5, "engine", "workflow.start", instance="wf-1")
    text = trace_to_jsonl(trace, make_tracer())
    rows = [json.loads(line) for line in text.splitlines()]
    assert [r["type"] for r in rows] == ["span", "record", "span"]
    times = [r.get("time", r.get("start")) for r in rows]
    assert times == sorted(times)
    span_row = rows[-1]
    assert span_row["duration"] == 2.0
    assert span_row["parent_id"] == rows[0]["span_id"]


def test_jsonl_stringifies_non_json_values():
    trace = Trace()
    trace.record(1.0, "n", "k", payload=object())
    row = json.loads(trace_to_jsonl(trace))
    assert isinstance(row["detail"]["payload"], str)


def test_chrome_trace_structure():
    doc = chrome_trace(make_tracer())
    events = doc["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    completes = [e for e in events if e["ph"] == "X"]
    assert {m["args"]["name"] for m in metas} >= {"crew-sim", "engine", "agent-1"}
    assert len(completes) == 2
    wf = next(e for e in completes if e["cat"] == "workflow")
    step = next(e for e in completes if e["cat"] == "step")
    assert wf["ts"] == 0.0
    assert step["ts"] == 1.0 * US_PER_TIME_UNIT
    assert step["dur"] == 2.0 * US_PER_TIME_UNIT
    assert step["args"]["parent_id"] == wf["args"]["span_id"]
    # thread ids: one per node, stable within the document
    assert wf["tid"] != step["tid"]


def test_chrome_trace_skips_open_spans_and_adds_instants():
    tracer = Tracer()
    tracer.start("left-open", "workflow", "engine", 0.0)
    trace = Trace()
    trace.record(2.0, "engine", "step.done", step="S1")
    doc = chrome_trace(tracer, trace)
    assert not [e for e in doc["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["name"] == "step.done"
    assert instants[0]["cat"] == "trace"


def test_render_chrome_trace_is_valid_json():
    parsed = json.loads(render_chrome_trace(make_tracer()))
    assert parsed["displayTimeUnit"] == "ms"
    assert isinstance(parsed["traceEvents"], list)


def test_prometheus_counter_and_gauge_lines():
    reg = MetricsRegistry()
    reg.counter("crew_recoveries_total", help="recovery episodes",
                node="engine").inc(3)
    reg.gauge("crew_sim_time").set(12.5)
    text = prometheus_text(reg)
    assert "# HELP crew_recoveries_total recovery episodes" in text
    assert "# TYPE crew_recoveries_total counter" in text
    assert 'crew_recoveries_total{node="engine"} 3' in text
    assert "crew_sim_time 12.5" in text
    assert text.endswith("\n")


def test_prometheus_histogram_is_cumulative_with_inf_bucket():
    reg = MetricsRegistry()
    h = reg.histogram("crew_step_latency", buckets=(1.0, 5.0))
    for v in (0.5, 2.0, 99.0):
        h.observe(v)
    lines = prometheus_text(reg).splitlines()
    buckets = [ln for ln in lines if "_bucket" in ln]
    assert buckets == [
        'crew_step_latency_bucket{le="1"} 1',
        'crew_step_latency_bucket{le="5"} 2',
        'crew_step_latency_bucket{le="+Inf"} 3',
    ]
    assert "crew_step_latency_sum 101.5" in lines
    assert "crew_step_latency_count 3" in lines


def test_prometheus_empty_registry_is_empty_string():
    assert prometheus_text(MetricsRegistry()) == ""
