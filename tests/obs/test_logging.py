"""Structured NDJSON logging: level gate, bound fields, correlation."""

import io
import json
import sys

import pytest

from repro.obs.logging import (
    LEVELS,
    StructuredLogger,
    correlation_fields,
    open_log_stream,
)


def make_logger(**kwargs):
    stream = io.StringIO()
    kwargs.setdefault("clock", lambda: 123.456789)
    return StructuredLogger(stream=stream, **kwargs), stream


def records(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def test_record_shape_and_sorted_keys():
    logger, stream = make_logger(service="svc")
    logger.info("instance.finished", instance="Orders-1", latency=0.25)
    [rec] = records(stream)
    assert rec == {
        "ts": 123.456789,
        "level": "info",
        "event": "instance.finished",
        "service": "svc",
        "instance": "Orders-1",
        "latency": 0.25,
    }
    # one JSON object per line, keys serialized sorted (greppable diffs)
    line = stream.getvalue().splitlines()[0]
    keys = list(json.loads(line))
    assert keys == sorted(keys)


def test_level_gate_discards_below_threshold():
    logger, stream = make_logger(min_level="warning")
    logger.debug("a")
    logger.info("b")
    logger.warning("c")
    logger.error("d")
    assert [r["event"] for r in records(stream)] == ["c", "d"]


def test_unknown_level_raises():
    logger, __ = make_logger()
    with pytest.raises(KeyError):
        logger.log("fatal", "boom")
    with pytest.raises(ValueError):
        StructuredLogger(stream=io.StringIO(), min_level="loud")


def test_disabled_logger_never_formats():
    class Explosive:
        def __str__(self):
            raise AssertionError("serialized a disabled record")

    logger = StructuredLogger(stream=None)
    assert not logger.enabled
    logger.error("x", payload=Explosive())  # gate short-circuits first


def test_bind_layers_fields_and_shares_stream():
    logger, stream = make_logger(service="svc")
    child = logger.bind(instance="I-1")
    grandchild = child.bind(node="agent-1", instance="I-2")
    grandchild.info("e")
    [rec] = records(stream)
    assert rec["service"] == "svc"
    assert rec["instance"] == "I-2"  # later binds win
    assert rec["node"] == "agent-1"
    # the parent is untouched
    logger.info("f")
    assert "instance" not in records(stream)[1]


def test_call_fields_override_bound_fields():
    logger, stream = make_logger(instance="bound")
    logger.info("e", instance="call")
    assert records(stream)[0]["instance"] == "call"


def test_non_json_values_fall_back_to_str():
    logger, stream = make_logger()
    logger.info("e", error=ValueError("boom"))
    assert records(stream)[0]["error"] == "boom"


def test_sink_tap_sees_records_and_survives_bind():
    seen = []
    logger, stream = make_logger()
    logger._sink = seen.append
    child = logger.bind(instance="I-1")
    child.info("e")
    assert seen[0]["instance"] == "I-1"
    assert len(records(stream)) == 1


def test_correlation_fields_extracts_the_trio():
    detail = {"instance": "I-1", "node": "n", "lamport": 7, "other": "x"}
    assert correlation_fields(detail) == {
        "instance": "I-1", "node": "n", "lamport": 7,
    }
    assert correlation_fields({"node": None, "lamport": 3}) == {"lamport": 3}
    assert correlation_fields(object()) == {}


def test_open_log_stream_resolution(tmp_path):
    assert open_log_stream("off") is None
    assert open_log_stream(None) is sys.stderr
    assert open_log_stream("-") is sys.stderr
    path = tmp_path / "log.ndjson"
    stream = open_log_stream(str(path))
    try:
        StructuredLogger(stream=stream, clock=lambda: 1.0).info("e")
    finally:
        stream.close()
    assert json.loads(path.read_text())["event"] == "e"
    # append mode: reopening must not truncate
    stream = open_log_stream(str(path))
    try:
        StructuredLogger(stream=stream, clock=lambda: 2.0).info("f")
    finally:
        stream.close()
    assert len(path.read_text().splitlines()) == 2


def test_levels_are_ordered():
    assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]
