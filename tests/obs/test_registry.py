"""Unit tests for the metrics registry."""

import pytest

from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry


def test_counter_get_or_create_and_inc():
    reg = MetricsRegistry()
    c = reg.counter("crew_rules_fired_total", node="engine")
    c.inc()
    c.inc(2)
    assert reg.counter("crew_rules_fired_total", node="engine") is c
    assert c.value == 3.0


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("crew_sim_time")
    g.set(10.0)
    g.inc(5.0)
    g.dec(2.0)
    assert g.value == 13.0


def test_label_sets_create_distinct_children():
    reg = MetricsRegistry()
    reg.counter("m", node="a").inc()
    reg.counter("m", node="b").inc(4)
    children = reg.children("m")
    assert [dict(c.labels)["node"] for c in children] == ["a", "b"]
    assert reg.get("m", node="b").value == 4.0
    assert reg.get("m", node="missing") is None


def test_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("m")


def test_histogram_buckets_must_increase():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="strictly increasing"):
        reg.histogram("h", buckets=(1.0, 1.0, 2.0))


def test_histogram_counts_sum_and_extremes():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    assert h.counts == [1, 1, 1]  # one per bucket plus overflow
    assert h.sum == 55.5
    assert h.count == 3
    assert h.min == 0.5
    assert h.max == 50.0
    assert h.mean == pytest.approx(18.5)


def test_histogram_percentiles_interpolate():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(10.0, 20.0, 30.0))
    for __ in range(50):
        h.observe(5.0)
    for __ in range(50):
        h.observe(15.0)
    assert 0.0 < h.p50 <= 10.0
    assert 10.0 < h.p95 <= 20.0
    assert h.p99 <= 20.0


def test_histogram_overflow_percentile_reports_max():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(1.0,))
    h.observe(100.0)
    assert h.p99 == 100.0


def test_empty_histogram_percentile_is_zero():
    reg = MetricsRegistry()
    assert reg.histogram("h").p95 == 0.0


def test_percentile_rejects_out_of_range():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.histogram("h").percentile(1.5)


def test_default_buckets_used_when_unspecified():
    reg = MetricsRegistry()
    assert reg.histogram("h").bounds == DEFAULT_BUCKETS


def test_registry_iteration_and_introspection():
    reg = MetricsRegistry()
    reg.counter("b_total", help="b things")
    reg.gauge("a_gauge")
    names = [name for name, __ in reg]
    assert names == ["a_gauge", "b_total"]  # sorted family order
    assert reg.kind_of("b_total") == "counter"
    assert reg.help_of("b_total") == "b things"
    assert len(reg) == 2


def test_merge_adds_counters_and_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("c", node="n").inc(1)
    b.counter("c", node="n").inc(2)
    b.gauge("g").set(7.0)
    a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
    b.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
    a.merge(b)
    assert a.get("c", node="n").value == 3.0
    assert a.get("g").value == 7.0
    merged = a.get("h")
    assert merged.count == 2
    assert merged.counts == [1, 1, 0]
    assert merged.min == 0.5
    assert merged.max == 1.5


def test_merge_rejects_bucket_mismatch():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
    b.histogram("h", buckets=(5.0, 6.0)).observe(5.5)
    with pytest.raises(ValueError, match="bucket mismatch"):
        a.merge(b)
