"""Unit tests for the in-engine instrumentation profiler."""

import pytest

from repro.obs.export import prometheus_text
from repro.obs.profile import EVENT_FRAMES, Profiler, peak_rss_kb, profiled
from repro.obs.registry import MetricsRegistry


class Network:
    """Name-collides with the real transport on purpose: its ``_arrive``
    carries the exact qualname the EVENT_FRAMES table maps."""

    def _arrive(self):
        pass


class Unmapped:
    def tick(self):
        pass


def test_push_pop_balance_and_depth():
    prof = Profiler()
    prof.push("a")
    prof.push("b")
    assert prof.depth() == 2
    prof.pop()
    prof.pop()
    assert prof.depth() == 0
    assert prof.total_wall_ns() >= 0


def test_self_time_excludes_child_time():
    prof = Profiler()
    prof.push("parent")
    prof.push("child")
    prof.pop()
    prof.pop()
    stats = {s.name: s for s in prof.top_frames()}
    parent, child = stats["parent"], stats["child"]
    assert parent.calls == child.calls == 1
    # Cumulative covers the child; self must not double-count it.
    assert parent.cum_ns >= child.cum_ns
    assert parent.self_ns + child.cum_ns <= parent.cum_ns + 1_000_000


def test_collapsed_paths_nest_semicolon_separated():
    prof = Profiler()
    prof.push("outer")
    prof.push("inner")
    prof.pop()
    prof.pop()
    lines = prof.collapsed().splitlines()
    paths = {line.rsplit(" ", 1)[0] for line in lines}
    assert paths == {"outer", "outer;inner"}
    for line in lines:
        assert int(line.rsplit(" ", 1)[1]) >= 1


def test_begin_event_maps_known_qualnames():
    prof = Profiler()
    assert "Network._arrive" in EVENT_FRAMES
    prof.begin_event(Network()._arrive, now=1.0, sim_dt=0.5, queue_depth=3)
    prof.end_event()
    stats = {s.name: s for s in prof.top_frames()}
    assert stats["transport.arrive"].calls == 1
    assert stats["transport.arrive"].sim_units == pytest.approx(0.5)
    assert prof.events == 1
    assert prof.max_queue_depth == 3


def test_begin_event_degrades_unknown_actions_to_event_prefix():
    prof = Profiler()
    prof.begin_event(Unmapped().tick, now=0.0, sim_dt=0.0, queue_depth=0)
    prof.end_event()
    names = [s.name for s in prof.top_frames()]
    assert names == ["event:Unmapped.tick"]


def test_sampling_every_interval():
    prof = Profiler(sample_interval=2)
    action = Unmapped().tick
    for i in range(5):
        prof.begin_event(action, now=float(i), sim_dt=0.0, queue_depth=i)
        prof.end_event()
    assert len(prof.samples) == 2  # events 2 and 4
    assert prof.samples[-1][2] == 4


def test_sample_interval_must_be_positive():
    with pytest.raises(ValueError):
        Profiler(sample_interval=0)


def test_profiled_decorator_is_transparent_when_disabled():
    calls = []

    class Engine:
        def __init__(self, profile):
            self.network = type("Net", (), {"profile": profile})()

        @profiled("dispatch.step")
        def step(self, value):
            calls.append(value)
            return value * 2

    assert Engine(None).step(21) == 42
    prof = Profiler()
    assert Engine(prof).step(21) == 42
    assert calls == [21, 21]
    stats = {s.name: s for s in prof.top_frames()}
    assert stats["dispatch.step"].calls == 1
    assert prof.depth() == 0


def test_render_top_ranks_by_self_time():
    prof = Profiler()
    prof.push("hot")
    for __ in range(10_000):
        pass
    prof.pop()
    prof.push("cold")
    prof.pop()
    text = prof.render_top(limit=5)
    assert "frame" in text and "self %" in text
    assert text.index("hot") < text.index("cold")


def test_publish_renders_per_frame_prometheus_series():
    prof = Profiler()
    prof.push("wal.append")
    prof.pop()
    prof.begin_event(Unmapped().tick, now=0.0, sim_dt=0.0, queue_depth=7)
    prof.end_event()
    prof.messages += 3
    registry = MetricsRegistry()
    prof.publish(registry)
    text = prometheus_text(registry)
    assert 'crew_profile_frame_calls_total{frame="wal.append"} 1' in text
    assert "crew_profile_events_total 1" in text
    assert "crew_profile_messages_total 3" in text
    assert "crew_profile_max_queue_depth 7" in text
    assert "crew_profile_messages_per_event 3" in text


def test_chrome_counter_trace_structure():
    prof = Profiler(sample_interval=1)
    action = Unmapped().tick
    for i in range(3):
        prof.begin_event(action, now=float(i), sim_dt=1.0, queue_depth=1)
        prof.end_event()
    doc = prof.chrome_counter_trace()
    counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
    assert {e["name"] for e in counters} >= {"queue_depth", "messages",
                                            "sim_time"}
    ts = [e["ts"] for e in counters]
    assert ts == sorted(ts)  # wall-clock timestamps are monotone


def test_install_wires_ducktyped_hooks():
    class Wal:
        appends = 0
        profile = None

    class Store:
        def __init__(self):
            self.wal = Wal()

    class NodeObj:
        def __init__(self):
            self.store = Store()

    class Net:
        profile = None

        def __init__(self):
            self._nodes = {"n1": NodeObj()}

        def node_names(self):
            return list(self._nodes)

        def node(self, name):
            return self._nodes[name]

    class Sim:
        profile = None

    class System:
        def __init__(self):
            self.simulator = Sim()
            self.network = Net()

    system = System()
    prof = Profiler()
    assert prof.install(system) is prof
    assert system.profiler is prof
    assert system.simulator.profile is prof
    assert system.network.profile is prof
    assert system.network.node("n1").store.wal.profile is prof


def test_summary_is_json_safe():
    import json

    prof = Profiler()
    prof.push("a")
    prof.pop()
    summary = prof.summary()
    json.dumps(summary)
    assert summary["frames"][0]["frame"] == "a"


def test_peak_rss_is_positive_on_posix():
    rss = peak_rss_kb()
    assert rss is None or rss > 0
