"""Unit tests for span tracing: lifecycle, nesting, null-tracer paths."""

from repro.obs.spans import NULL_SPAN, Tracer


def test_span_lifecycle_and_duration():
    tracer = Tracer()
    span = tracer.start("wf-1", "workflow", "engine", 1.0, schema="Demo")
    assert span.open
    assert span.duration == 0.0
    tracer.end(span, 4.5, status="done")
    assert not span.open
    assert span.duration == 3.5
    assert span.attrs == {"schema": "Demo", "status": "done"}


def test_parent_child_context_propagation():
    tracer = Tracer()
    parent = tracer.start("wf", "workflow", "engine", 0.0)
    child = tracer.start("wf/S1", "step", "agent-1", 1.0, parent=parent)
    assert child.parent_id == parent.span_id
    assert child.context.parent_id == parent.span_id
    assert tracer.children_of(parent) == [child]
    assert tracer.find(child.span_id) is child


def test_end_auto_closes_open_children():
    """The child-never-ends-after-parent invariant is enforced on end."""
    tracer = Tracer()
    parent = tracer.start("wf", "workflow", "engine", 0.0)
    child = tracer.start("wf/S1", "step", "agent-1", 1.0, parent=parent)
    grandchild = tracer.start("rule:r1", "rule", "engine", 2.0, parent=child)
    tracer.end(parent, 5.0)
    assert child.end == 5.0
    assert grandchild.end == 5.0
    assert child.attrs.get("auto_closed") is True
    assert tracer.check_nesting() == []


def test_closed_child_is_not_reclosed():
    tracer = Tracer()
    parent = tracer.start("wf", "workflow", "engine", 0.0)
    child = tracer.start("wf/S1", "step", "agent-1", 1.0, parent=parent)
    tracer.end(child, 2.0, status="done")
    tracer.end(parent, 5.0)
    assert child.end == 2.0
    assert "auto_closed" not in child.attrs


def test_double_end_is_a_noop():
    tracer = Tracer()
    span = tracer.start("wf", "workflow", "engine", 0.0)
    tracer.end(span, 2.0, status="done")
    tracer.end(span, 9.0, status="late")
    assert span.end == 2.0
    assert span.attrs == {"status": "done"}


def test_instant_spans_have_zero_duration():
    tracer = Tracer()
    span = tracer.instant("rule:r1", "rule", "engine", 3.0, step="S1")
    assert not span.open
    assert span.start == span.end == 3.0
    assert span.duration == 0.0


def test_disabled_tracer_returns_null_span():
    tracer = Tracer(enabled=False)
    span = tracer.start("wf", "workflow", "engine", 0.0)
    assert span is NULL_SPAN
    assert span.is_null
    tracer.end(span, 1.0)  # must not blow up or record anything
    span.annotate(ignored=True)
    assert len(tracer) == 0
    assert span.attrs == {}


def test_null_span_is_never_closed():
    # NULL_SPAN.end stays None forever, so `.open` alone is not a valid
    # guard — call sites must check `is_null` first.  Pin the behaviour.
    assert NULL_SPAN.open
    assert NULL_SPAN.is_null


def test_finish_closes_all_open_spans():
    tracer = Tracer()
    a = tracer.start("a", "workflow", "n", 0.0)
    b = tracer.start("b", "step", "n", 1.0, parent=a)
    tracer.end(b, 2.0)
    closed = tracer.finish(7.0)
    assert closed == 1
    assert a.end == 7.0
    assert tracer.open_spans() == []


def test_check_nesting_reports_violations():
    tracer = Tracer()
    parent = tracer.start("wf", "workflow", "engine", 5.0)
    child = tracer.start("wf/S1", "step", "agent", 1.0, parent=parent)
    parent.end = 6.0
    child.end = 9.0  # bypass tracer.end to build a broken tree
    problems = tracer.check_nesting()
    assert any("starts before parent" in p for p in problems)
    assert any("ends after parent" in p for p in problems)


def test_by_category_filters():
    tracer = Tracer()
    tracer.start("wf", "workflow", "n", 0.0)
    tracer.instant("rule:r", "rule", "n", 1.0)
    tracer.instant("rule:r2", "rule", "n", 2.0)
    assert len(tracer.by_category("rule")) == 2
    assert len(tracer.by_category("workflow")) == 1
    assert tracer.by_category("missing") == []
