"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.coordination import MutualExclusionAuthority, RelativeOrderAuthority
from repro.core.ocr import plan_step_action, stale_compensation_chain
from repro.model.builder import SchemaBuilder
from repro.model.coordination_spec import MutualExclusionSpec, RelativeOrderSpec
from repro.model.policies import (
    AlwaysReexecute,
    IncrementalIfInputsChanged,
    ReuseIfInputsUnchanged,
)
from repro.model.schema import StepDef
from repro.rules.events import EventTable
from repro.sim.kernel import Simulator
from repro.storage.tables import StepRecord, StepStatus
from tests.conftest import make_system, register_programs

# ---------------------------------------------------------------- strategies

small_names = st.lists(
    st.sampled_from([f"S{i}" for i in range(1, 9)]), unique=True, min_size=2, max_size=8
)


def linear_schema_of(names):
    builder = SchemaBuilder("P", inputs=["x"])
    previous = None
    for name in names:
        ins = ["WF.x"] if previous is None else [f"{previous}.out"]
        builder.step(name, program=f"P.{name}", inputs=ins, outputs=["out"])
        if previous is not None:
            builder.arc(previous, name)
        previous = name
    return builder.build()


# ---------------------------------------------------------------- simulator


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_simulator_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    times = []
    for delay in delays:
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


# ---------------------------------------------------------------- event table


@given(
    st.lists(
        st.tuples(st.sampled_from(["S1.D", "S2.D", "S3.D"]),
                  st.floats(min_value=0, max_value=100),
                  st.integers(min_value=0, max_value=5)),
        max_size=30,
    )
)
def test_event_table_never_holds_invalid_as_valid(operations):
    """After any sequence of posts/invalidations, validity is consistent:
    a token is valid iff its latest recorded occurrence was not killed by a
    later-round invalidation."""
    table = EventTable()
    for token, time, round in operations:
        table.post(token, time, round)
        table.invalidate_before_round(token, round)  # same round: must survive
        assert table.is_valid(token)
        table.invalidate_before_round(token, round + 1)
        assert not table.is_valid(token)


@given(st.dictionaries(st.sampled_from(["A.D", "B.D", "C.D"]),
                       st.tuples(st.floats(0, 100), st.integers(0, 3)),
                       max_size=3))
def test_event_merge_is_idempotent(tokens):
    table = EventTable()
    payload = {t: [time, round] for t, (time, round) in tokens.items()}
    table.merge(payload, time=0.0)
    snapshot = table.export_versioned()
    table.merge(payload, time=1.0)
    assert table.export_versioned() == snapshot


# ---------------------------------------------------------------- OCR


@given(
    status=st.sampled_from([StepStatus.NOT_STARTED, StepStatus.DONE,
                            StepStatus.FAILED, StepStatus.COMPENSATED]),
    prev_inputs=st.dictionaries(st.sampled_from(["a", "b"]), st.integers(0, 3),
                                max_size=2),
    new_inputs=st.dictionaries(st.sampled_from(["a", "b"]), st.integers(0, 3),
                               max_size=2),
    policy=st.sampled_from([AlwaysReexecute(), ReuseIfInputsUnchanged(),
                            IncrementalIfInputsChanged(0.5)]),
)
def test_ocr_plan_invariants(status, prev_inputs, new_inputs, policy):
    step = StepDef(name="S1", cost=4.0, compensation_cost=2.0)
    record = StepRecord(step="S1", status=status,
                        executions=0 if status is StepStatus.NOT_STARTED else 1,
                        last_inputs=dict(prev_inputs))
    plan = plan_step_action(step, record, new_inputs, policy)
    # Exactly one of reuse / re-execute.
    assert plan.reuse_outputs != plan.reexecute
    # Costs are never negative and bounded by the full costs.
    assert 0.0 <= plan.execution_cost <= step.cost
    assert 0.0 <= plan.compensation_cost <= step.effective_compensation_cost
    # Reuse implies zero work; compensation only ever precedes re-execution.
    if plan.reuse_outputs:
        assert plan.total_cost == 0.0
    if plan.compensate:
        assert plan.reexecute


@given(
    times=st.dictionaries(st.sampled_from(["A", "B", "C", "D"]),
                          st.floats(0, 100), min_size=1, max_size=4),
    initiator=st.sampled_from(["A", "B", "C", "D"]),
)
def test_stale_chain_is_reverse_ordered_and_ends_with_initiator(times, initiator):
    members = frozenset({"A", "B", "C", "D"})
    chain = stale_compensation_chain(members, times, initiator)
    assert chain[-1] == initiator
    assert len(chain) == len(set(chain))
    body = chain[:-1]
    body_times = [times[m] for m in body]
    assert body_times == sorted(body_times, reverse=True)
    cutoff = times.get(initiator, float("-inf"))
    assert all(times[m] >= cutoff for m in body)


# ---------------------------------------------------------------- coordination


@given(st.lists(st.tuples(st.sampled_from(["i1", "i2", "i3"]),
                          st.sampled_from(["k1", "k2"])),
                min_size=1, max_size=12))
def test_relative_order_leadership_is_a_strict_order(registrations):
    spec = RelativeOrderSpec(name="p", schema_a="A", schema_b="A",
                             steps_a=("S1", "S2"), steps_b=("S1", "S2"),
                             conflict_key="WF.k")
    authority = RelativeOrderAuthority(spec)
    for instance, key in registrations:
        authority.report_completion("A", instance, 0, key)
    instances = {i for i, __ in registrations}
    for a in instances:
        assert authority.is_leading(a, a) is False or a not in instances
        for b in instances:
            if a == b:
                continue
            lead_ab = authority.is_leading(a, b)
            lead_ba = authority.is_leading(b, a)
            assert lead_ab is not None and lead_ab != lead_ba  # antisymmetric


@given(st.lists(st.tuples(st.booleans(), st.sampled_from(["i1", "i2", "i3"])),
                min_size=1, max_size=20))
def test_mutex_never_two_holders(operations):
    spec = MutualExclusionSpec(name="m", schema_a="A", schema_b="A",
                               region_a=("S1", "S2"), region_b=("S1", "S2"))
    authority = MutualExclusionAuthority(spec)
    granted = set()
    for is_acquire, instance in operations:
        if is_acquire:
            if authority.acquire("A", instance, "k"):
                granted.add(instance)
        else:
            nxt = authority.release("A", instance, "k")
            granted.discard(instance)
            if nxt is not None:
                granted.add(nxt[1])
        holder = authority.holder("k")
        assert granted == ({holder[1]} if holder else set())


# ---------------------------------------------------------------- end-to-end


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(names=small_names, seed=st.integers(0, 1000),
       architecture=st.sampled_from(["centralized", "parallel", "distributed"]))
def test_random_linear_workflows_always_commit(names, seed, architecture):
    """Liveness: any valid linear schema commits under every architecture."""
    system = make_system(architecture, seed=seed)
    schema = linear_schema_of(names)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("P", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    # and every step ran exactly once
    counts = {}
    kind = "step.dispatch" if architecture in ("centralized", "parallel") else "step.execute"
    for record in system.trace.filter(kind=kind):
        key = record.detail["step"]
        counts[key] = counts.get(key, 0) + 1
    assert counts == {name: 1 for name in names}


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fail_at=st.integers(1, 4), origin_offset=st.integers(0, 3),
       seed=st.integers(0, 100),
       architecture=st.sampled_from(["centralized", "distributed"]))
def test_rollback_always_recovers_on_linear_chains(fail_at, origin_offset, seed,
                                                   architecture):
    """Safety+liveness: a single failure with any valid rollback point still
    commits, and rolled back steps either reuse or re-execute."""
    from repro.core.programs import FailEveryNth, NoopProgram

    names = [f"S{i}" for i in range(1, 6)]
    builder = SchemaBuilder("P", inputs=["x"])
    previous = None
    for name in names:
        ins = ["WF.x"] if previous is None else [f"{previous}.out"]
        builder.step(name, program=f"P.{name}", inputs=ins, outputs=["out"])
        if previous is not None:
            builder.arc(previous, name)
        previous = name
    failing = names[fail_at]
    origin = names[max(0, fail_at - origin_offset)]
    builder.rollback_point(failing, origin)
    schema = builder.build()
    system = make_system(architecture, seed=seed)
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        failing: FailEveryNth(NoopProgram(("out",)), {1}),
    })
    instance = system.start_workflow("P", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
