"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def laws_file(tmp_path):
    path = tmp_path / "demo.laws"
    path.write_text("""
workflow Demo {
  inputs x;
  step A program d.a reads WF.x writes o;
  step B program d.b reads A.o writes o;
  arc A -> B;
  on failure of B rollback to A;
  output out = B.o;
}
order fifo between Demo(A, B) and Demo(A, B) on WF.x;
""")
    return str(path)


def test_tables_prints_all_architectures(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    for title in ("Centralized", "Parallel", "Distributed", "Recommended Choice"):
        assert title in out
    assert "l*s/z" in out


def test_tables_with_overrides(capsys):
    assert main(["tables", "--z", "100"]) == 0
    out = capsys.readouterr().out
    assert "0.15 * l" in out  # s/z = 15/100


def test_check_validates_laws_file(capsys, laws_file):
    assert main(["check", laws_file]) == 0
    out = capsys.readouterr().out
    assert "Demo" in out
    assert "RelativeOrderSpec" in out
    assert "OK: 1 workflow(s), 1 coordination spec(s)." in out


def test_check_missing_file_errors(capsys):
    assert main(["check", "/nonexistent.laws"]) == 2
    assert "error" in capsys.readouterr().err


def test_check_invalid_laws_errors(tmp_path, capsys):
    bad = tmp_path / "bad.laws"
    bad.write_text("workflow W { step A; step B; }")  # two start steps
    assert main(["check", str(bad)]) == 1
    assert "error" in capsys.readouterr().err


def test_run_executes_instances(capsys, laws_file):
    assert main(["run", laws_file, "--instances", "2", "--input", "x=5"]) == 0
    out = capsys.readouterr().out
    assert "2/2 committed" in out


def test_run_with_trace_and_architecture(capsys, laws_file):
    assert main(["run", laws_file, "--architecture", "centralized",
                 "--trace", "--input", "x=1"]) == 0
    out = capsys.readouterr().out
    assert "workflow.commit" in out
    assert "1/1 committed under centralized control" in out


def test_scenario_travel(capsys):
    assert main(["scenario", "travel"]) == 0
    out = capsys.readouterr().out
    assert "TravelBooking-1: committed" in out
    assert "step.reuse" in out  # the OCR recovery is visible in the trace


def test_scenario_figure3_all_architectures(capsys):
    for architecture in ("centralized", "parallel", "distributed"):
        assert main(["scenario", "figure3", "--architecture", architecture]) == 0
        out = capsys.readouterr().out
        assert "Figure3-1: committed" in out


def test_compare_runs_all_architectures(capsys):
    assert main(["compare", "--instances", "3"]) == 0
    out = capsys.readouterr().out
    assert out.count("paper model vs simulation") == 3


def test_evaluate_writes_markdown_report(tmp_path, capsys):
    out = tmp_path / "report.md"
    assert main(["evaluate", "--output", str(out)]) == 0
    text = out.read_text()
    assert "# CREW evaluation (regenerated)" in text
    assert "Table 4 — centralized control" in text
    assert "Table 7 — recommendation matrix" in text
    assert "OCR vs Saga ablation" in text
    assert "Saga baseline" in text


def test_trace_chrome_is_valid_trace_event_json(capsys):
    import json

    assert main(["trace", "figure3", "--architecture", "centralized"]) == 0
    doc = json.loads(capsys.readouterr().out)
    events = doc["traceEvents"]
    cats = {e.get("cat") for e in events if e["ph"] == "X"}
    assert {"workflow", "step", "recovery"} <= cats
    # every complete event's parent starts no later and ends no earlier
    spans = {e["args"]["span_id"]: e for e in events if e["ph"] == "X"}
    for e in spans.values():
        parent = spans.get(e["args"].get("parent_id"))
        if parent is not None:
            assert parent["ts"] <= e["ts"]
            assert e["ts"] + e["dur"] <= parent["ts"] + parent["dur"] + 1.0


def test_trace_jsonl_lines_parse(capsys):
    import json

    assert main(["trace", "figure3", "--format", "jsonl"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    rows = [json.loads(line) for line in lines]
    assert {"record", "span"} == {r["type"] for r in rows}


def test_trace_out_writes_file(tmp_path):
    import json

    out = tmp_path / "trace.json"
    assert main(["trace", "figure3", "--out", str(out)]) == 0
    assert json.loads(out.read_text())["traceEvents"]


def test_metrics_prometheus_output(capsys):
    assert main(["metrics", "figure3", "--instances", "2"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE crew_step_latency histogram" in out
    assert "crew_step_latency_bucket" in out
    assert "crew_instances_started_total" in out


def test_scenario_with_observability_outputs(tmp_path, capsys):
    import json

    trace_out = tmp_path / "t.json"
    metrics_out = tmp_path / "m.prom"
    assert main(["scenario", "figure3", "--trace-out", str(trace_out),
                 "--metrics-out", str(metrics_out)]) == 0
    assert json.loads(trace_out.read_text())["traceEvents"]
    assert "crew_step_latency" in metrics_out.read_text()


def test_run_trace_out_implies_instrumentation(tmp_path, laws_file):
    import json

    out = tmp_path / "run-trace.json"
    assert main(["run", laws_file, "--input", "x=1",
                 "--trace-out", str(out)]) == 0
    events = json.loads(out.read_text())["traceEvents"]
    assert any(e.get("cat") == "workflow" for e in events)


def test_trace_node_and_category_filters(capsys):
    import json

    assert main(["trace", "figure3", "--format", "jsonl",
                 "--architecture", "centralized",
                 "--node", "engine", "--category", "message"]) == 0
    rows = [json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()]
    assert rows
    assert all(r["node"] == "engine" for r in rows)
    spans = [r for r in rows if r["type"] == "span"]
    assert spans and all(r["category"] == "message" for r in spans)


def test_trace_chrome_has_flow_events(capsys):
    import json

    assert main(["trace", "figure3", "--architecture", "distributed"]) == 0
    events = json.loads(capsys.readouterr().out)["traceEvents"]
    assert [e for e in events if e["ph"] == "s" and e["cat"] == "flow"]
    assert [e for e in events if e["ph"] == "f" and e["cat"] == "flow"]


def test_trace_follow_prints_causal_chain(capsys):
    assert main(["trace", "figure3", "--architecture", "distributed",
                 "--follow", "Figure3-1"]) == 0
    out = capsys.readouterr().out
    assert "causal chain for Figure3-1" in out
    assert "<-link-" in out  # at least one cross-node hop


def test_trace_follow_unknown_instance_errors(capsys):
    assert main(["trace", "figure3", "--follow", "Nope-1"]) == 1
    assert "no spans" in capsys.readouterr().err


@pytest.fixture()
def jsonl_trace(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert main(["trace", "figure3", "--architecture", "distributed",
                 "--seed", "7", "--format", "jsonl", "--out", str(path)]) == 0
    capsys.readouterr()
    return str(path)


def test_analyze_reports_timeline_and_is_clean(capsys, jsonl_trace):
    assert main(["analyze", jsonl_trace]) == 0
    out = capsys.readouterr().out
    assert "Figure3-1" in out
    assert "critical path" in out
    assert "phase" in out
    assert "no causal anomalies" in out


def test_analyze_check_invariants_passes_on_canonical_trace(capsys, jsonl_trace):
    assert main(["analyze", jsonl_trace, "--check-invariants"]) == 0
    assert "invariants OK" in capsys.readouterr().out


def test_analyze_check_invariants_fails_on_violating_trace(tmp_path, capsys):
    import json

    bad = tmp_path / "bad.jsonl"
    bad.write_text("\n".join([
        json.dumps({"type": "record", "time": 1.0, "node": "e",
                    "kind": "workflow.commit",
                    "detail": {"instance": "w-1"}}),
        json.dumps({"type": "record", "time": 2.0, "node": "e",
                    "kind": "workflow.commit",
                    "detail": {"instance": "w-1"}}),
    ]) + "\n")
    assert main(["analyze", str(bad), "--check-invariants"]) == 1
    out = capsys.readouterr().out
    assert "at-most-once-commit" in out
    assert "workflow.commit" in out  # the offending record chain is printed


def test_analyze_strict_fails_on_anomalies(tmp_path, capsys):
    import json

    bad = tmp_path / "orphan.jsonl"
    bad.write_text(json.dumps({
        "type": "span", "span_id": 1, "parent_id": None, "link_id": 99,
        "name": "recv:X", "category": "message", "node": "a",
        "start": 0.0, "end": 0.0, "duration": 0.0, "open": False,
        "attrs": {"direction": "recv", "msg_id": 1, "lamport": 1},
    }) + "\n")
    assert main(["analyze", str(bad)]) == 0  # informational by default
    capsys.readouterr()
    assert main(["analyze", str(bad), "--strict"]) == 1
    assert "orphan-link" in capsys.readouterr().out


def test_analyze_missing_file_errors(capsys):
    assert main(["analyze", "/nonexistent.jsonl"]) == 2
    assert "error" in capsys.readouterr().err


def test_profile_single_config_prints_table_and_collapsed(capsys):
    assert main(["profile", "--config", "centralized-normal",
                 "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "# profile: 1 config(s)" in out
    assert "self %" in out                       # ranked top-frames table
    assert "transport.arrive" in out
    assert "# collapsed stacks" in out           # flamegraph output
    assert any(";" in line and line.rsplit(" ", 1)[1].isdigit()
               for line in out.splitlines())


def test_profile_rejects_bad_config(capsys):
    assert main(["profile", "--config", "bogus-nonsense"]) == 1
    assert "bad profile config" in capsys.readouterr().err


def test_profile_writes_artifacts(tmp_path, capsys):
    import json

    collapsed = tmp_path / "p.collapsed"
    chrome = tmp_path / "p.json"
    metrics = tmp_path / "p.prom"
    blob = tmp_path / "p.summary.json"
    assert main(["profile", "--config", "parallel-normal",
                 "--collapsed", str(collapsed), "--chrome", str(chrome),
                 "--metrics-out", str(metrics), "--json", str(blob)]) == 0
    assert ";" in collapsed.read_text()
    doc = json.loads(chrome.read_text())
    assert any(e.get("ph") == "C" for e in doc["traceEvents"])
    assert "crew_profile_frame_calls_total" in metrics.read_text()
    summary = json.loads(blob.read_text())
    assert summary["runs"][0]["config"] == "parallel-normal"
    assert summary["top_frames"]
    # collapsed went to the file, not stdout
    assert "# collapsed stacks" not in capsys.readouterr().out


def test_sweep_progress_flag_prints_status_lines(capsys):
    assert main(["sweep", "--workers", "1", "--progress"]) == 0
    captured = capsys.readouterr()
    assert "[6/6]" in captured.err
    assert "events/s" in captured.err
    assert "events/s" in captured.out            # table column too


def test_top_parse_prometheus():
    from repro.cli import _metric_value, _parse_prometheus

    text = "\n".join([
        "# HELP crew_x Things.",
        "# TYPE crew_x counter",
        'crew_x{architecture="centralized",status="COMMITTED"} 3',
        'crew_x{architecture="centralized",status="ABORTED"} 1',
        "crew_plain 2.5",
        "garbage line without a value x",
        "",
    ])
    metrics = _parse_prometheus(text)
    assert _metric_value(metrics, "crew_plain") == 2.5
    assert _metric_value(metrics, "crew_x") == 4.0          # summed
    assert _metric_value(metrics, "crew_x", status="COMMITTED") == 3.0
    assert _metric_value(metrics, "crew_missing", default=7.0) == 7.0


def test_top_render_frame():
    from repro.cli import _parse_prometheus, _render_top

    status = {
        "architecture": "centralized", "runtime": "asyncio", "uptime": 12.5,
        "ready": True, "draining": False, "instances_finished": 1,
        "instances_submitted": 2, "events_processed": 9, "messages_sent": 8,
        "executor_retries": 0, "executor_failures": 0, "trace_dropped": 0,
    }
    instances = [
        {"instance": "Orders-1", "workflow": "Orders",
         "status": "committed", "age": 1.25},
        {"instance": "Orders-2", "status": "running", "age": 0.5},
    ]
    metrics = _parse_prometheus("\n".join([
        "crew_realtime_pending_timers 2",
        "crew_executor_inflight_tasks 1",
        "crew_service_event_subscribers 0",
        "crew_service_instance_latency_seconds_count 1",
        "crew_service_instance_latency_seconds_sum 0.25",
    ]))
    events = {"Orders-1": {"count": 12, "last": "workflow.committed"}}
    frame = _render_top(status, instances, metrics, events)
    assert "1/2 finished" in frame
    assert "mean latency 0.250s" in frame
    assert "Orders-1" in frame and "workflow.committed" in frame
    assert "Orders-2" in frame and "running" in frame
    assert "ready" in frame and "NOT READY" not in frame
    empty = _render_top(dict(status, ready=False, draining=True), [], {}, {})
    assert "NOT READY (draining)" in empty
    assert "(no instances submitted yet)" in empty
