"""Distributed failure-handling paths under injected transport faults.

The watchdog/probe machinery in :mod:`repro.engines.distributed.failure`
exists for exactly the conditions the fault layer creates: crashed
executors, lost probe reports, duplicated replies.  These tests drive
those paths through :meth:`ControlSystem.inject_faults` instead of
hand-placed ``crash()`` calls, so the whole scenario replays from
``(seed, plan)``.
"""

from repro.engines import DistributedControlSystem, SystemConfig
from repro.engines.distributed import elect_executor
from repro.model import SchemaBuilder
from repro.sim.faults import Crash, FaultPlan
from tests.conftest import linear_schema, register_programs


def make(seed=2, num_agents=6, agents_per_step=2, **config_kwargs):
    return DistributedControlSystem(
        SystemConfig(seed=seed, **config_kwargs),
        num_agents=num_agents,
        agents_per_step=agents_per_step,
    )


def query_step_schema():
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("S1", program="W.S1", inputs=["WF.x"], outputs=["out"])
    builder.step("S2", program="W.S2", step_type="query",
                 inputs=["S1.out"], outputs=["out"])
    builder.step("S3", program="W.S3", inputs=["S2.out"], outputs=["out"])
    builder.sequence("S1", "S2", "S3")
    return builder.build()


def slow_s2_schema(cost=200.0):  # x work_time_scale 0.1 = 20 sim-time units
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("S1", program="W.S1", inputs=["WF.x"], outputs=["out"])
    builder.step("S2", program="W.S2", inputs=["S1.out"], outputs=["out"],
                 cost=cost)
    builder.step("S3", program="W.S3", inputs=["S2.out"], outputs=["out"])
    builder.sequence("S1", "S2", "S3")
    return builder.build()


def start_probe_setup(plan, seed=5):
    """A workflow whose S2 runs long on a non-coordination agent, probed
    mid-flight by the coordination agent under ``plan``."""
    system = make(seed=seed, num_agents=6, agents_per_step=1)
    schema = slow_s2_schema()
    system.register_schema(schema)
    register_programs(system, schema)
    system.inject_faults(plan)
    instance = system.start_workflow("W", {"x": 1})
    system.run(until=8.0)  # S1 done, S2 executing
    ca = system.agent(system.assignment.eligible("W", "S1")[0])
    s2_agent = system.assignment.eligible("W", "S2")[0]
    assert s2_agent != ca.name  # report must cross the (faulty) network
    ca.workflow_status_probe(instance)
    return system, ca, instance


def test_watchdog_takeover_under_injected_executor_crash():
    """A planned crash of the query-step executor: the peer's watchdog
    fires and takes the step over while the executor is still down."""
    system = make(seed=2, num_agents=4, agents_per_step=2,
                  step_status_timeout=5.0, step_status_poll_interval=3.0)
    schema = query_step_schema()
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("W", {"x": 1})
    executor = elect_executor(
        system.assignment.eligible("W", "S2"), "W", instance, "S2"
    )
    injector = system.inject_faults(
        FaultPlan(crashes=(Crash(executor, 1.15, 150.0),)))
    system.run(until=400.0)
    assert system.outcome(instance).committed
    assert injector.stats.crashes == 1
    assert system.trace.count("step.takeover") == 1
    done = [r for r in system.trace.filter(kind="step.done")
            if r.detail["step"] == "S2"]
    assert done[0].time < 151.15  # finished before the executor came back


def test_watchdog_waits_for_crashed_update_agent():
    """Update steps must wait for the crashed executor; the watchdog
    re-arms until the planned recovery brings it back."""
    system = make(seed=2, num_agents=4, agents_per_step=2,
                  step_status_timeout=5.0, step_status_poll_interval=3.0)
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    executor = elect_executor(
        system.assignment.eligible("Linear", "S2"), "Linear", instance, "S2"
    )
    injector = system.inject_faults(
        FaultPlan(crashes=(Crash(executor, 1.15, 40.0),)))
    system.run()
    assert system.outcome(instance).committed
    assert injector.stats.recoveries == 1
    done = [r for r in system.trace.filter(kind="step.done")
            if r.detail["step"] == "S2"]
    assert done and done[0].time >= 41.15  # only after the recovery


def test_probe_report_lost_once_then_retransmitted():
    """Drop the first WorkflowStatusProbeReport: the seeded backoff
    retransmits it and the origin still learns where the workflow is."""
    plan = FaultPlan(drop_p=1.0, drop_limit=1,
                     interfaces=("WorkflowStatusProbeReport",))
    system, ca, instance = start_probe_setup(plan)
    system.run()
    stats = system.faults.stats
    assert stats.dropped == 1
    assert stats.retransmits == 1
    assert stats.lost == 0
    reports = ca.probe_reports(instance)
    assert len(reports) == 1
    assert reports[0]["running"] == ["S2"]


def test_probe_report_lost_forever_without_retry():
    """Exhausting the retry budget loses the report: the probe stays
    unanswered but the workflow itself is unaffected."""
    plan = FaultPlan(drop_p=1.0, interfaces=("WorkflowStatusProbeReport",))
    system, ca, instance = start_probe_setup(plan)
    system.run(until=3000.0)
    assert system.faults.stats.lost == 1
    assert ca.probe_reports(instance) == []
    assert system.outcome(instance).committed  # workflow unharmed


def test_duplicate_probe_reply_suppressed():
    """Duplicate every probe report: receiver-side dedup keeps exactly
    one copy per probe."""
    plan = FaultPlan(dup_p=1.0, interfaces=("WorkflowStatusProbeReport",))
    system, ca, instance = start_probe_setup(plan)
    system.run()
    stats = system.faults.stats
    assert stats.duplicated >= 1
    assert stats.suppressed >= 1
    assert len(ca.probe_reports(instance)) == 1


def test_duplicate_probe_chain_applies_once():
    """Duplicated probe messages hit the per-probe dedup in
    ``_apply_status_probe``: each agent reports at most once."""
    plan = FaultPlan(dup_p=1.0, interfaces=("WorkflowStatusProbe",))
    system, ca, instance = start_probe_setup(plan)
    system.run()
    reports = ca.probe_reports(instance)
    agents = [r["agent"] for r in reports]
    assert len(agents) == len(set(agents))
    assert len(reports) == 1
