"""Integration tests for centralized workflow control."""

from repro.core.programs import FailEveryNth, FunctionProgram, NoopProgram
from repro.engines import CentralizedControlSystem, SystemConfig
from repro.model import AlwaysReexecute, SchemaBuilder
from repro.sim.metrics import Mechanism
from repro.storage.tables import InstanceStatus
from tests.conftest import (
    branching_schema,
    linear_schema,
    parallel_schema,
    register_programs,
)


def make(seed=1, **kwargs):
    return CentralizedControlSystem(SystemConfig(seed=seed), **kwargs)


def run_linear(system, steps=3, inputs=None):
    schema = linear_schema(steps=steps)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", inputs or {"x": 1})
    system.run()
    return instance


def test_linear_workflow_commits():
    system = make()
    instance = run_linear(system)
    outcome = system.outcome(instance)
    assert outcome.committed
    assert outcome.outputs["result"].startswith("S3.out")


def test_message_count_matches_2sa_for_normal_execution():
    """Paper Table 4: normal execution exchanges 2·s·a messages/instance."""
    for a in (1, 2, 3):
        system = make(num_agents=4, agents_per_step=a)
        run_linear(system, steps=5)
        assert system.metrics.total_messages(Mechanism.NORMAL) == 2 * 5 * a


def test_parallel_branches_and_join():
    system = make()
    schema = parallel_schema()
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Fanout", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    done = [r.detail["step"] for r in system.trace.filter(kind="step.done")]
    assert done.index("End") == len(done) - 1
    assert set(done) == {"Start", "A", "B", "End"}


def test_xor_branch_takes_condition_path():
    system = make()
    schema = branching_schema()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "S2": FunctionProgram(lambda i, c: {"route": "top"}),
    })
    instance = system.start_workflow("Branchy", {"load": 1})
    system.run()
    done = {r.detail["step"] for r in system.trace.filter(kind="step.done")}
    assert "S3" in done and "S5" not in done
    assert system.outcome(instance).committed


def test_failure_rollback_reexecute_and_branch_change():
    """The full Figure-3 story, centrally controlled."""
    system = make()
    schema = branching_schema()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "S2": FunctionProgram(
            lambda i, c: {"route": "top" if c.attempt == 1 else "bottom"}
        ),
        "S4": FailEveryNth(NoopProgram(("y",)), {1}),
    })
    # S2 must actually re-execute for the branch to flip.
    from repro.model.policies import AlwaysReexecute as AR

    object.__setattr__(schema, "cr_policies", {**schema.cr_policies, "S2": AR()})
    instance = system.start_workflow("Branchy", {"load": 1})
    system.run()
    assert system.outcome(instance).committed
    assert system.trace.count("rollback") == 1
    # Abandoned branch step S3 compensated by CompensateThread.
    compensated = [r.detail["step"] for r in system.trace.filter(kind="step.compensate")]
    assert "S3" in compensated


def test_ocr_reuse_skips_agent_messages():
    """REUSE re-executions generate no dispatch messages (the OCR saving)."""
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"])
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"])
    builder.sequence("A", "B", "C")
    builder.rollback_point("C", "A")
    builder.output("r", "C.o")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "C": FailEveryNth(NoopProgram(("o",)), {1}),
    })
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    # A and B are reused; only C re-executes under FAILURE.
    assert system.trace.count("step.reuse") == 2
    assert system.metrics.total_messages(Mechanism.FAILURE) == 2  # dispatch+result


def test_compensation_set_reverse_order():
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"],
                 cr_policy=AlwaysReexecute())
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"])
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"])
    builder.sequence("A", "B", "C")
    builder.compensation_set("A", "B")
    builder.rollback_point("C", "A")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "C": FailEveryNth(NoopProgram(("o",)), {1}),
    })
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    compensated = [r.detail["step"] for r in system.trace.filter(kind="step.compensate")]
    # Dependent set compensates in reverse execution order: B before A.
    assert compensated == ["B", "A"]


def test_unhandled_failure_defaults_to_saga_abort():
    system = make()
    schema = linear_schema(steps=3)  # no rollback points
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "S3": FailEveryNth(NoopProgram(("out",)), {1, 2, 3, 4}),
    })
    instance = system.start_workflow("Linear", {"x": 1})
    system.run()
    outcome = system.outcome(instance)
    assert outcome.status is InstanceStatus.ABORTED
    compensated = [r.detail["step"] for r in system.trace.filter(kind="step.compensate")]
    assert compensated == ["S2", "S1"]  # reverse execution order


def test_user_abort_compensates_declared_steps():
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"], cost=100.0)
    builder.step("C", program="W.C", inputs=["B.o"])
    builder.sequence("A", "B", "C")
    builder.abort_compensation("A", "B")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("W", {"x": 1})
    system.abort_workflow(instance, delay=3.0)  # while B is executing
    system.run()
    assert system.outcome(instance).status is InstanceStatus.ABORTED
    compensated = [r.detail["step"] for r in system.trace.filter(kind="step.compensate")]
    assert compensated == ["A"]  # only A had completed
    assert system.metrics.total_messages(Mechanism.ABORT) == 2  # request + ack


def test_abort_after_commit_rejected():
    system = make()
    instance = run_linear(system)
    system.abort_workflow(instance)
    system.run()
    assert system.outcome(instance).committed
    assert system.trace.count("abort.rejected") == 1


def test_change_inputs_triggers_partial_rollback():
    system = make()
    builder = SchemaBuilder("W", inputs=["x", "tune"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o", "WF.tune"], outputs=["o"])
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"], cost=500.0)
    builder.sequence("A", "B", "C")
    builder.output("r", "C.o")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "B": FunctionProgram(lambda i, c: {"o": i["WF.tune"]}),
        "C": FunctionProgram(lambda i, c: {"o": i["B.o"]}),
    })
    instance = system.start_workflow("W", {"x": 1, "tune": 0})
    # C (slow) is still executing when the amendment arrives.
    system.change_inputs(instance, {"tune": 42}, delay=20.0)
    system.run()
    outcome = system.outcome(instance)
    assert outcome.committed
    assert outcome.outputs["r"] == 42  # re-executed with the new input
    assert system.trace.count("rollback") == 1
    # A is upstream of the rollback origin: untouched, never re-dispatched.
    a_dispatches = [r for r in system.trace.filter(kind="step.dispatch")
                    if r.detail["step"] == "A"]
    assert len(a_dispatches) == 1
    # B re-executed (its input changed), so it was dispatched twice.
    b_dispatches = [r for r in system.trace.filter(kind="step.dispatch")
                    if r.detail["step"] == "B"]
    assert len(b_dispatches) == 2


def test_change_inputs_before_consumer_runs_is_cheap():
    system = make()
    builder = SchemaBuilder("W", inputs=["x", "tune"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"], cost=50.0)
    builder.step("B", program="W.B", inputs=["A.o", "WF.tune"], outputs=["o"])
    builder.sequence("A", "B")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("W", {"x": 1, "tune": 0})
    system.change_inputs(instance, {"tune": 1}, delay=1.0)  # A still running
    system.run()
    assert system.outcome(instance).committed
    assert system.trace.count("rollback") == 0  # B hadn't run: nothing to roll back


def test_loop_reexecutes_body_until_condition_false():
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["n"])
    builder.step("B", program="W.B", inputs=["A.n"], outputs=["n"])
    builder.sequence("A", "B")
    builder.loop("B", "A", while_condition="B.n < 3")
    builder.output("n", "B.n")
    schema = builder.build()
    system.register_schema(schema)
    counter = {"n": 0}

    def count(i, c):
        counter["n"] += 1
        return {"n": counter["n"]}

    register_programs(system, schema, behaviors={
        "A": NoopProgram(("n",)),
        "B": FunctionProgram(count),
    })
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    outcome = system.outcome(instance)
    assert outcome.committed
    assert outcome.outputs["n"] == 3
    assert system.trace.count("loop.iterate") == 2


def test_nested_workflow_commits_parent():
    system = make()
    child = SchemaBuilder("Child", inputs=["a"])
    child.step("C1", program="Child.C1", inputs=["WF.a"], outputs=["o"])
    child.output("co", "C1.o")
    system.register_schema(child.build())
    parent = SchemaBuilder("Parent", inputs=["x"])
    parent.step("P1", program="Parent.P1", inputs=["WF.x"], outputs=["o"])
    parent.step("Sub", subworkflow="Child", inputs=["P1.o"], outputs=["co"])
    parent.step("P2", program="Parent.P2", inputs=["Sub.co"], outputs=["o"])
    parent.sequence("P1", "Sub", "P2")
    parent.output("r", "P2.o")
    system.register_schema(parent.build())
    for name in ("Child.C1", "Parent.P1", "Parent.P2"):
        system.register_program(name, NoopProgram(("o",)))
    instance = system.start_workflow("Parent", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    # the nested child committed too
    nested = [i for i in system.outcomes if i.startswith(instance + ".Sub")]
    assert len(nested) == 1
    assert system.outcomes[nested[0]].committed


def test_engine_crash_forward_recovery():
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"], cost=30.0)
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"])
    builder.sequence("A", "B", "C")
    builder.output("r", "C.o")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("W", {"x": 1})

    def crash_and_recover():
        # The WFDB (class + instance tables) is durable; only volatile
        # rule-engine state is lost and rebuilt by forward recovery.
        system.engine.crash()
        system.engine.recover()

    # Crash mid-run (while B is executing), then recover.
    system.simulator.schedule(3.0, crash_and_recover)
    system.run()
    outcome = system.outcome(instance)
    assert outcome.committed
    # A completed before the crash: its result was recovered and reused.
    executes = [r for r in system.trace.filter(kind="step.dispatch")
                if r.detail["step"] == "A"]
    assert len(executes) == 1


def test_workflow_status_reflects_lifecycle():
    system = make()
    schema = linear_schema()
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    system.run(until=0.5)
    assert system.workflow_status(instance) is InstanceStatus.RUNNING
    system.run()
    assert system.workflow_status(instance) is InstanceStatus.COMMITTED


def test_load_probe_selects_least_loaded_agent():
    system = make(num_agents=2, agents_per_step=2)
    schema = linear_schema(steps=1)
    system.register_schema(schema)
    register_programs(system, schema)
    # Occupy agent-000 with a long step from another schema.
    other = linear_schema(name="Other", steps=1)
    system.register_schema(other)
    busy = SchemaBuilder("Busy", inputs=["x"])
    busy.step("L", program="Busy.L", inputs=["WF.x"], cost=1000.0)
    system.register_schema(busy.build())
    system.register_program("Busy.L", NoopProgram(()))
    register_programs(system, other)
    system.start_workflow("Busy", {"x": 1})
    instance = system.start_workflow("Linear", {"x": 1}, delay=5.0)
    system.run(until=200.0)
    dispatches = {
        (r.detail["instance"], r.detail["step"]): r.detail["agent"]
        for r in system.trace.filter(kind="step.dispatch")
    }
    busy_agent = dispatches[("Busy-1", "L")]
    linear_agent = dispatches[(instance, "S1")]
    assert linear_agent != busy_agent
