"""Unit tests for shared engine machinery (base helpers, SpecIndex)."""

import pytest

from repro.engines.base import (
    AgentAssignment,
    SystemConfig,
    governed_step_count,
    record_compensation,
    record_execution_failure,
    record_execution_success,
    record_reuse,
)
from repro.engines.coord import SpecIndex
from repro.errors import SchemaError, WorkloadError
from repro.model import (
    MutualExclusionSpec,
    RelativeOrderSpec,
    RollbackDependencySpec,
    compile_schema,
)
from repro.model.schema import StepDef
from repro.storage.tables import InstanceState, StepStatus
from tests.conftest import linear_schema


# ----------------------------------------------------------- system config


def test_config_rejects_bad_selection():
    with pytest.raises(WorkloadError):
        SystemConfig(successor_selection="psychic")


# ----------------------------------------------------------- agent assignment


def test_round_robin_spreads_with_a_agents_per_step():
    assignment = AgentAssignment()
    compiled = compile_schema(linear_schema(steps=3))
    assignment.assign_round_robin(compiled, ["x", "y", "z"], agents_per_step=2)
    assert assignment.eligible("Linear", "S1") == ("x", "y")
    assert assignment.eligible("Linear", "S2") == ("y", "z")
    assert assignment.eligible("Linear", "S3") == ("z", "x")


def test_assignment_rejects_oversized_a():
    assignment = AgentAssignment()
    compiled = compile_schema(linear_schema(steps=2))
    with pytest.raises(SchemaError):
        assignment.assign_round_robin(compiled, ["only"], agents_per_step=2)


def test_assignment_unknown_step_raises():
    assignment = AgentAssignment()
    with pytest.raises(SchemaError):
        assignment.eligible("W", "ghost")
    with pytest.raises(SchemaError):
        assignment.assign("W", "S1", [])


# ----------------------------------------------------------- record helpers


def step_def(**kw):
    return StepDef(name="S1", outputs=("o",), **kw)


def test_record_execution_success_updates_everything():
    state = InstanceState(schema_name="W", instance_id="i")
    token = record_execution_success(state, step_def(), {"WF.x": 1}, {"o": 9},
                                     now=3.0, agent="a1")
    record = state.steps["S1"]
    assert token == "S1.D"
    assert record.status is StepStatus.DONE
    assert record.executions == 1
    assert record.last_inputs == {"WF.x": 1}
    assert record.last_outputs == {"o": 9}
    assert record.agent == "a1"
    assert state.data["S1.o"] == 9


def test_record_execution_failure():
    state = InstanceState(schema_name="W", instance_id="i")
    token = record_execution_failure(state, step_def(), {"WF.x": 1}, now=3.0,
                                     agent="a1")
    assert token == "S1.F"
    assert state.steps["S1"].status is StepStatus.FAILED
    assert "S1.o" not in state.data


def test_record_reuse_rebinds_previous_outputs():
    state = InstanceState(schema_name="W", instance_id="i")
    record_execution_success(state, step_def(), {}, {"o": 9}, now=1.0, agent="a")
    state.unbind_outputs("S1", ("o",))
    token = record_reuse(state, step_def(), now=5.0)
    assert token == "S1.D"
    assert state.data["S1.o"] == 9
    assert state.steps["S1"].reuses == 1
    assert state.steps["S1"].executions == 1  # reuse is not an execution


def test_record_compensation_unbinds_outputs():
    state = InstanceState(schema_name="W", instance_id="i")
    record_execution_success(state, step_def(), {}, {"o": 9}, now=1.0, agent="a")
    token = record_compensation(state, step_def(), "complete")
    assert token == "S1.C"
    assert state.steps["S1"].status is StepStatus.COMPENSATED
    assert "S1.o" not in state.data


# ----------------------------------------------------------- governed steps


def make_specs():
    return [
        RelativeOrderSpec(name="ro", schema_a="Linear", schema_b="Linear",
                          steps_a=("S1", "S2"), steps_b=("S1", "S2")),
        MutualExclusionSpec(name="mx", schema_a="Linear", schema_b="Linear",
                            region_a=("S2", "S4"), region_b=("S2", "S4")),
        RollbackDependencySpec(name="rd", schema_a="Linear", schema_b="Linear",
                               trigger_step_a="S3", rollback_to_b="S1"),
    ]


def test_governed_step_count_covers_all_blocks():
    compiled = compile_schema(linear_schema(steps=5))
    count = governed_step_count(compiled, make_specs())
    # ro: S1,S2 (2) + mx region S2..S4 (3) + rd: S3, S1 (2) = 7 spec-steps.
    assert count == 7


def test_governed_step_count_zero_without_specs():
    compiled = compile_schema(linear_schema(steps=5))
    assert governed_step_count(compiled, []) == 0


# ----------------------------------------------------------- spec index


def test_spec_index_lookups():
    index = SpecIndex()
    for spec in make_specs():
        index.add(spec)
    assert index.ro_roles("Linear", "S2") == [(index.ro[0], 1)]
    assert index.ro_roles("Linear", "S9") == []
    assert [s.name for s in index.mx_region_first("Linear", "S2")] == ["mx"]
    assert [s.name for s in index.mx_region_last("Linear", "S4")] == ["mx"]
    assert index.mx_region_first("Linear", "S3") == []
    assert [s.name for s in index.rd_triggers("Linear")] == ["rd"]
    assert [s.name for s in index.rd_targets("Linear", "S1")] == ["rd"]
    assert index.rd_targets("Linear", "S2") == []
    assert len(index.specs_for("Linear")) == 3
    assert index.specs_for("Other") == []


def test_spec_index_governed_pairs():
    index = SpecIndex()
    index.add(make_specs()[0])
    pairs = index.ro_governed_pairs("Linear")
    assert [(k, s) for __, k, s in pairs] == [(0, "S1"), (1, "S2")]


def test_conflict_key_value():
    spec = make_specs()[0]
    state = InstanceState(schema_name="Linear", instance_id="i",
                          inputs={"x": "part-7"})
    assert SpecIndex.conflict_key_value(spec, state) is None  # keyless spec
    keyed = RelativeOrderSpec(name="ro2", schema_a="Linear", schema_b="Linear",
                              steps_a=("S1",), steps_b=("S1",),
                              conflict_key="WF.x")
    assert SpecIndex.conflict_key_value(keyed, state) == "part-7"
