"""Tests for the front-end database facade."""

import pytest

from repro.engines import FrontEndDatabase
from repro.errors import FrontEndError
from repro.storage.tables import InstanceStatus
from tests.conftest import linear_schema, make_system, register_programs


def make_frontend(architecture="distributed"):
    system = make_system(architecture, seed=4)
    schema = linear_schema()
    system.register_schema(schema)
    register_programs(system, schema)
    return FrontEndDatabase(system), system


def test_submit_maps_reference_to_instance():
    frontend, system = make_frontend()
    instance = frontend.submit("ORDER-1", "Linear", {"x": 1})
    assert frontend.instance_of("ORDER-1") == instance
    assert frontend.reference_of(instance) == "ORDER-1"
    system.run()
    assert frontend.status("ORDER-1") is InstanceStatus.COMMITTED
    assert frontend.result("ORDER-1").committed


def test_duplicate_reference_rejected():
    frontend, __ = make_frontend()
    frontend.submit("R1", "Linear", {"x": 1})
    with pytest.raises(FrontEndError):
        frontend.submit("R1", "Linear", {"x": 2})


def test_unknown_reference_rejected():
    frontend, __ = make_frontend()
    with pytest.raises(FrontEndError):
        frontend.instance_of("ghost")
    with pytest.raises(FrontEndError):
        frontend.cancel("ghost")


def test_cancel_translates_to_abort():
    frontend, system = make_frontend()
    frontend.submit("R1", "Linear", {"x": 1})
    frontend.cancel("R1", delay=0.01)
    system.run()
    assert frontend.status("R1") is InstanceStatus.ABORTED


def test_amend_translates_to_change_inputs():
    frontend, system = make_frontend("centralized")
    frontend.submit("R1", "Linear", {"x": 1})
    frontend.amend("R1", {"x": 5}, delay=0.01)
    system.run()
    assert frontend.status("R1") is InstanceStatus.COMMITTED


def test_references_sorted():
    frontend, __ = make_frontend()
    frontend.submit("B", "Linear", {"x": 1})
    frontend.submit("A", "Linear", {"x": 2})
    assert frontend.references() == ["A", "B"]


def test_result_before_finish_raises():
    frontend, __ = make_frontend()
    frontend.submit("R1", "Linear", {"x": 1})
    with pytest.raises(FrontEndError):
        frontend.result("R1")


def test_frontend_works_with_all_architectures():
    for architecture in ("centralized", "parallel", "distributed"):
        frontend, system = make_frontend(architecture)
        frontend.submit("R1", "Linear", {"x": 1})
        system.run()
        assert frontend.result("R1").committed
