"""Integration tests for distributed workflow control."""

from repro.core.programs import FailEveryNth, FunctionProgram, NoopProgram
from repro.engines import DistributedControlSystem, SystemConfig
from repro.engines.distributed import elect_executor
from repro.model import AlwaysReexecute, SchemaBuilder
from repro.sim.metrics import Mechanism
from repro.storage.tables import InstanceStatus
from tests.conftest import (
    branching_schema,
    linear_schema,
    parallel_schema,
    register_programs,
)


def make(seed=2, num_agents=6, agents_per_step=2, **config_kwargs):
    return DistributedControlSystem(
        SystemConfig(seed=seed, **config_kwargs),
        num_agents=num_agents,
        agents_per_step=agents_per_step,
    )


def test_linear_workflow_commits_and_navigates_by_packets():
    system = make()
    schema = linear_schema(steps=4)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    # Every step executed exactly once.
    executes = [r.detail["step"] for r in system.trace.filter(kind="step.execute")]
    assert sorted(executes) == ["S1", "S2", "S3", "S4"]


def test_normal_message_count_bounded_by_sa_plus_f():
    """Paper Table 6: s·a + f messages per instance (self-sends are local,
    so the measured count is at most the formula)."""
    system = make(num_agents=12, agents_per_step=2)
    schema = linear_schema(steps=6)
    system.register_schema(schema)
    register_programs(system, schema)
    system.start_workflow("Linear", {"x": 1})
    system.run()
    measured = system.metrics.total_messages(Mechanism.NORMAL)
    assert measured <= 6 * 2 + 1
    assert measured >= 6  # at least one hop per step


def test_election_is_deterministic_and_stable():
    eligible = ("a", "b", "c")
    pick1 = elect_executor(eligible, "W", "i1", "S1")
    pick2 = elect_executor(eligible, "W", "i1", "S1")
    assert pick1 == pick2
    # Down agents are skipped deterministically.
    alt = elect_executor(eligible, "W", "i1", "S1", is_up=lambda a: a != pick1)
    assert alt != pick1


def test_coordination_agent_is_start_step_agent():
    system = make()
    schema = linear_schema()
    system.register_schema(schema)
    register_programs(system, schema)
    coordination_agent = system.coordination_agent_for("Linear")
    assert coordination_agent.name == system.assignment.eligible("Linear", "S1")[0]


def test_parallel_branches_join_across_agents():
    system = make()
    schema = parallel_schema()
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Fanout", {"x": 1})
    system.run()
    assert system.outcome(instance).committed


def test_terminal_agents_report_step_completed():
    system = make(num_agents=8)
    schema = parallel_schema()
    system.register_schema(schema)
    register_programs(system, schema)
    system.start_workflow("Fanout", {"x": 1})
    system.run()
    assert system.trace.count("terminal.reported") == 1


def test_figure3_distributed_rollback_and_branch_change():
    system = make()
    schema = branching_schema()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "S2": FunctionProgram(
            lambda i, c: {"route": "top" if c.attempt == 1 else "bottom"}
        ),
        "S4": FailEveryNth(NoopProgram(("y",)), {1}),
    })
    object.__setattr__(schema, "cr_policies",
                       {**schema.cr_policies, "S2": AlwaysReexecute()})
    instance = system.start_workflow("Branchy", {"load": 1})
    system.run()
    assert system.outcome(instance).committed
    assert system.trace.count("rollback") >= 1
    done_steps = [r.detail["step"] for r in system.trace.filter(kind="step.done")]
    assert "S5" in done_steps  # the other branch ran on re-execution


def test_halt_thread_probes_quiesce_parallel_branch():
    """A failure on one branch halts the other (the paper's race handling)."""
    system = make(num_agents=8)
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("O", program="W.O", inputs=["WF.x"], outputs=["o"])
    builder.step("A1", program="W.A1", inputs=["O.o"], outputs=["o"])
    builder.step("B1", program="W.B1", inputs=["O.o"], outputs=["o"], cost=30.0)
    builder.step("B2", program="W.B2", inputs=["B1.o"], outputs=["o"], cost=30.0)
    builder.step("J", program="W.J", join="and", inputs=["A1.o", "B2.o"],
                 outputs=["o"])
    builder.parallel("O", ["A1", "B1"])
    builder.arc("B1", "B2")
    builder.join("J", ["A1", "B2"], kind="and")
    builder.rollback_point("A1", "O")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "A1": FailEveryNth(NoopProgram(("o",)), {1}),
    })
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    assert system.trace.count("halt.thread") >= 1
    assert system.metrics.total_messages(Mechanism.FAILURE) > 0


def test_compensate_set_chain_reverse_order():
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"],
                 cr_policy=AlwaysReexecute())
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"])
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"])
    builder.sequence("A", "B", "C")
    builder.compensation_set("A", "B")
    builder.rollback_point("C", "A")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "C": FailEveryNth(NoopProgram(("o",)), {1}),
    })
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    compensations = [
        (r.time, r.detail["step"])
        for r in system.trace.filter(kind="step.compensated")
    ]
    steps = [s for __, s in sorted(compensations)]
    assert steps == ["B", "A"]  # reverse execution order via the chain


def test_ocr_reuse_in_distributed_recovery():
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"])
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"])
    builder.sequence("A", "B", "C")
    builder.rollback_point("C", "A")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "C": FailEveryNth(NoopProgram(("o",)), {1}),
    })
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    reused = [r.detail["step"] for r in system.trace.filter(kind="step.reuse")]
    assert set(reused) == {"A", "B"}


def test_unhandled_failure_aborts_via_coordination_agent():
    system = make()
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "S3": FailEveryNth(NoopProgram(("out",)), {1, 2, 3}),
    })
    instance = system.start_workflow("Linear", {"x": 1})
    system.run()
    assert system.outcome(instance).status is InstanceStatus.ABORTED
    compensated = [r.detail["step"] for r in system.trace.filter(kind="step.compensated")]
    assert compensated == ["S2", "S1"]


def test_user_abort_sends_compensate_to_all_eligible():
    system = make(num_agents=6, agents_per_step=2)
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"], cost=200.0)
    builder.sequence("A", "B")
    builder.abort_compensation("A")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("W", {"x": 1})
    system.abort_workflow(instance, delay=5.0)
    system.run()
    assert system.outcome(instance).status is InstanceStatus.ABORTED
    # The coordination agent addressed both eligible agents of A.
    assert system.metrics.interface_messages("StepCompensate") >= 1
    compensated = [r.detail["step"] for r in system.trace.filter(kind="step.compensated")]
    assert compensated == ["A"]


def test_change_inputs_rolls_back_origin_step():
    system = make()
    builder = SchemaBuilder("W", inputs=["x", "tune"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o", "WF.tune"], outputs=["o"])
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"], cost=300.0)
    builder.sequence("A", "B", "C")
    builder.output("r", "C.o")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "B": FunctionProgram(lambda i, c: {"o": i["WF.tune"]}),
        "C": FunctionProgram(lambda i, c: {"o": i["B.o"]}),
    })
    instance = system.start_workflow("W", {"x": 1, "tune": 0})
    system.change_inputs(instance, {"tune": 7}, delay=10.0)
    system.run()
    outcome = system.outcome(instance)
    assert outcome.committed
    assert outcome.outputs["r"] == 7
    assert system.metrics.total_messages(Mechanism.INPUT_CHANGE) >= 1


def test_loops_work_across_agents():
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["n"])
    builder.step("B", program="W.B", inputs=["A.n"], outputs=["n"])
    builder.sequence("A", "B")
    builder.loop("B", "A", while_condition="B.n < 3")
    builder.output("n", "B.n")
    schema = builder.build()
    system.register_schema(schema)
    counter = {"n": 0}

    def count(i, c):
        counter["n"] += 1
        return {"n": counter["n"]}

    register_programs(system, schema, behaviors={
        "B": FunctionProgram(count),
    })
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    outcome = system.outcome(instance)
    assert outcome.committed
    assert outcome.outputs["n"] == 3


def test_nested_workflow_distributed():
    system = make()
    child = SchemaBuilder("Child", inputs=["a"])
    child.step("C1", program="Child.C1", inputs=["WF.a"], outputs=["o"])
    child.output("co", "C1.o")
    system.register_schema(child.build())
    parent = SchemaBuilder("Parent", inputs=["x"])
    parent.step("P1", program="Parent.P1", inputs=["WF.x"], outputs=["o"])
    parent.step("Sub", subworkflow="Child", inputs=["P1.o"], outputs=["co"])
    parent.step("P2", program="Parent.P2", inputs=["Sub.co"], outputs=["o"])
    parent.sequence("P1", "Sub", "P2")
    parent.output("r", "P2.o")
    system.register_schema(parent.build())
    for name in ("Child.C1", "Parent.P1", "Parent.P2"):
        system.register_program(name, NoopProgram(("o",)))
    instance = system.start_workflow("Parent", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    nested = [i for i in system.outcomes if i.startswith(instance + ".Sub")]
    assert len(nested) == 1 and system.outcomes[nested[0]].committed


def test_crashed_successor_excluded_from_election():
    system = make(num_agents=4, agents_per_step=2)
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    executor = elect_executor(
        system.assignment.eligible("Linear", "S2"), "Linear", instance, "S2"
    )
    system.agent(executor).crash()
    system.run()
    assert system.outcome(instance).committed
    # Executed by the other eligible agent.
    s2_agents = [r.node for r in system.trace.filter(kind="step.execute")
                 if r.detail["step"] == "S2"]
    assert executor not in s2_agents


def test_update_step_waits_for_crashed_agent_recovery():
    system = make(num_agents=4, agents_per_step=2,
                  step_status_timeout=5.0, step_status_poll_interval=3.0)
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    executor = elect_executor(
        system.assignment.eligible("Linear", "S2"), "Linear", instance, "S2"
    )
    # Crash just after the packet is delivered to the executor.
    system.simulator.schedule(1.15, system.agent(executor).crash)
    system.simulator.schedule(40.0, system.agent(executor).recover)
    system.run()
    assert system.outcome(instance).committed
    done = [r for r in system.trace.filter(kind="step.done")
            if r.detail["step"] == "S2"]
    assert done and done[0].time >= 40.0  # only after the recovery


def test_query_step_taken_over_by_peer():
    system = make(num_agents=4, agents_per_step=2,
                  step_status_timeout=5.0, step_status_poll_interval=3.0)
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("S1", program="W.S1", inputs=["WF.x"], outputs=["out"])
    builder.step("S2", program="W.S2", step_type="query",
                 inputs=["S1.out"], outputs=["out"])
    builder.step("S3", program="W.S3", inputs=["S2.out"], outputs=["out"])
    builder.sequence("S1", "S2", "S3")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("W", {"x": 1})
    executor = elect_executor(
        system.assignment.eligible("W", "S2"), "W", instance, "S2"
    )
    system.simulator.schedule(1.15, system.agent(executor).crash)
    system.run(until=200.0)
    assert system.outcome(instance).committed
    assert system.trace.count("step.takeover") == 1
    done = [r for r in system.trace.filter(kind="step.done")
            if r.detail["step"] == "S2"]
    assert done[0].time < 40.0  # long before any recovery


def test_agent_recovery_resends_packets_idempotently():
    """A recovered agent re-navigates completed steps; receivers dedupe."""
    system = make(num_agents=4, agents_per_step=1)
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    s1_agent = system.assignment.eligible("Linear", "S1")[0]
    system.simulator.schedule(5.0, system.agent(s1_agent).crash)
    system.simulator.schedule(10.0, system.agent(s1_agent).recover)
    system.run()
    assert system.outcome(instance).committed
    # No step executed more than once despite the resends.
    from collections import Counter

    executes = Counter(
        r.detail["step"] for r in system.trace.filter(kind="step.execute")
    )
    assert all(count == 1 for count in executes.values())


def test_purge_broadcast_clears_fragments():
    system = make(num_agents=4, agents_per_step=1, purge_interval=5.0)
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    assert system.trace.count("purge.broadcast") == 1
    for agent in system.agents:
        assert not agent.agdb.has_fragment(instance) or agent.agdb.was_purged(instance)


def test_step_status_poll_reports_and_repairs():
    system = make(num_agents=4, agents_per_step=1)
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    system.run()
    # Poll S2's agents from the S3 agent after the fact.
    s3_agent = system.agent(system.assignment.eligible("Linear", "S3")[0])
    s3_agent.poll_step_status("Linear", instance, "S2")
    system.run()
    replies = system.trace.filter(kind="step.status_reply")
    assert replies and replies[0].detail["status"] in ("done", "unknown", "not_executed")


def test_stale_packet_from_older_epoch_ignored():
    system = make()
    schema = linear_schema(steps=2)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    system.run()
    from repro.core.packets import WorkflowPacket

    agent = system.agent(system.assignment.eligible("Linear", "S2")[0])
    runtime = agent.runtimes.get(instance)
    if runtime is not None:
        runtime.fragment.recovery_epoch = 5
        packet = WorkflowPacket(
            schema_name="Linear", instance_id=instance, action="execute",
            target_step="S2", recovery_epoch=1,
        )
        agent._ingest_packet(packet)
        assert system.trace.count("packet.stale") == 1


def test_workflow_status_via_coordination_agent():
    system = make()
    schema = linear_schema()
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    system.run(until=0.5)
    assert system.workflow_status(instance) is InstanceStatus.RUNNING
    system.run()
    assert system.workflow_status(instance) is InstanceStatus.COMMITTED
