"""Parallel-control recovery: one engine crashes, its instances survive."""

from repro.engines import ParallelControlSystem, SystemConfig
from repro.storage.tables import InstanceStatus
from tests.conftest import linear_schema, register_programs
from repro.model import SchemaBuilder


def make():
    return ParallelControlSystem(SystemConfig(seed=41), num_engines=2,
                                 num_agents=4, agents_per_step=1)


def test_engine_crash_recovers_owned_instances():
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"], cost=40.0)
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"])
    builder.sequence("A", "B", "C")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema)
    # Two instances, one on each engine.
    i_zero = system.start_workflow("W", {"x": 0})
    i_one = system.start_workflow("W", {"x": 1})
    owner_zero = system.owner_of(i_zero)
    engine = next(e for e in system.engines if e.name == owner_zero)

    def crash_recover():
        engine.crash()
        engine.recover()

    # Crash engine-00 while B is executing for its instance.
    system.simulator.schedule(4.0, crash_recover)
    system.run()
    assert system.outcome(i_zero).committed
    assert system.outcome(i_one).committed


def test_engine_crash_does_not_disturb_other_engines():
    system = make()
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema)
    instances = [system.start_workflow("Linear", {"x": i}) for i in range(4)]
    other = system.engines[1]
    system.simulator.schedule(1.0, other.crash)
    system.simulator.schedule(8.0, other.recover)
    system.run()
    for instance in instances:
        assert system.outcome(instance).committed


def test_parallel_abort_and_status_after_owner_recovery():
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], cost=500.0)
    builder.sequence("A", "B")
    builder.abort_compensation("A")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("W", {"x": 1})
    engine = next(e for e in system.engines
                  if e.name == system.owner_of(instance))

    def crash_recover():
        engine.crash()
        engine.recover()

    system.simulator.schedule(5.0, crash_recover)
    system.abort_workflow(instance, delay=10.0)
    system.run()
    assert system.outcome(instance).status is InstanceStatus.ABORTED
