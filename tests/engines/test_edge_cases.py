"""Edge-case integration tests across architectures."""

import pytest

from repro.core.programs import FailEveryNth, FunctionProgram, NoopProgram
from repro.core.packets import WorkflowPacket
from repro.engines import DistributedControlSystem, SystemConfig
from repro.model import SchemaBuilder
from tests.conftest import linear_schema, make_system, register_programs


def test_parallel_change_inputs_partial_rollback():
    system = make_system("parallel", seed=51)
    builder = SchemaBuilder("W", inputs=["x", "tune"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o", "WF.tune"], outputs=["o"])
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"], cost=400.0)
    builder.sequence("A", "B", "C")
    builder.output("r", "C.o")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "B": FunctionProgram(lambda i, c: {"o": i["WF.tune"]}),
        "C": FunctionProgram(lambda i, c: {"o": i["B.o"]}),
    })
    instance = system.start_workflow("W", {"x": 1, "tune": 0})
    system.change_inputs(instance, {"tune": 9}, delay=15.0)
    system.run()
    outcome = system.outcome(instance)
    assert outcome.committed and outcome.outputs["r"] == 9


def test_purged_instance_ignores_late_packet():
    system = DistributedControlSystem(
        SystemConfig(seed=52, purge_interval=2.0), num_agents=4, agents_per_step=1
    )
    schema = linear_schema(steps=2)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    # A duplicate packet arrives long after the purge broadcast.
    agent = system.agent(system.assignment.eligible("Linear", "S2")[0])
    assert agent.agdb.was_purged(instance)
    stale = WorkflowPacket(schema_name="Linear", instance_id=instance,
                           action="execute", target_step="S2",
                           events={"WF.S": 0.0, "S1.D": 1.0})
    agent._ingest_packet(stale)  # must be a no-op, not a resurrection
    system.run()
    assert not agent.agdb.has_fragment(instance)


def test_nested_step_reused_by_ocr_on_parent_rollback():
    """A rollback whose re-execution re-reaches a nested-workflow step with
    unchanged inputs reuses the child's outputs without re-running it."""
    system = make_system("centralized", seed=53)
    child = SchemaBuilder("Child", inputs=["a"])
    child.step("C1", program="Child.C1", inputs=["WF.a"], outputs=["o"])
    child.output("co", "C1.o")
    system.register_schema(child.build())
    parent = SchemaBuilder("Parent", inputs=["x"])
    parent.step("P1", program="Parent.P1", inputs=["WF.x"], outputs=["o"])
    parent.step("Sub", subworkflow="Child", inputs=["P1.o"], outputs=["co"])
    parent.step("P2", program="Parent.P2", inputs=["Sub.co"], outputs=["o"])
    parent.sequence("P1", "Sub", "P2")
    parent.rollback_point("P2", "Sub")
    system.register_schema(parent.build())
    system.register_program("Child.C1", FunctionProgram(lambda i, c: {"o": "child"}))
    system.register_program("Parent.P1", FunctionProgram(lambda i, c: {"o": "p1"}))
    system.register_program(
        "Parent.P2", FailEveryNth(NoopProgram(("o",)), {1})
    )
    instance = system.start_workflow("Parent", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    nested = [i for i in system.outcomes if i.startswith(instance + ".Sub")]
    assert len(nested) == 1  # the child ran exactly once — reused on retry
    reused = [r.detail["step"] for r in system.trace.filter(kind="step.reuse")]
    assert "Sub" in reused


def test_laws_loop_and_subworkflow_end_to_end():
    from repro.laws import load_laws

    doc = load_laws("""
    workflow Child {
      inputs a;
      step C1 program c.one reads WF.a writes o;
      output co = C1.o;
    }
    workflow Parent {
      inputs x;
      step P1 program p.one reads WF.x writes n;
      step Sub subworkflow Child reads P1.n writes co;
      step P2 program p.two reads Sub.co writes n;
      arc P1 -> Sub;
      arc Sub -> P2;
      loop P2 -> P1 while "P2.n < 2";
      output n = P2.n;
    }
    """)
    system = make_system("centralized", seed=54)
    doc.install(system)
    counter = {"n": 0}

    def count(inputs, ctx):
        counter["n"] += 1
        return {"n": counter["n"]}

    system.register_program("c.one", NoopProgram(("o",)))
    system.register_program("p.one", NoopProgram(("n",)))
    system.register_program("p.two", FunctionProgram(count))
    instance = system.start_workflow("Parent", {"x": 1})
    system.run()
    outcome = system.outcome(instance)
    assert outcome.committed
    assert outcome.outputs["n"] == 2
    # Each loop iteration spawned a fresh child instance.
    children = [i for i in system.outcomes if ".Sub#" in i]
    assert len(children) == 2


def test_abort_unknown_instance_raises_frontend_error():
    from repro.errors import FrontEndError

    system = make_system("distributed", seed=55)
    with pytest.raises(FrontEndError):
        system.abort_workflow("nope")


def test_zero_latency_network_still_correct():
    system = make_system("distributed", seed=56,
                         config=SystemConfig(seed=56, latency=0.0))
    schema = linear_schema(steps=4)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
