"""Paper-scale integration run: the full Table 3 deployment point.

c=20 schemas, z=50 agents, a=2, failures/input-changes/aborts at the
paper's probabilities — the closest thing to the authors' prototype
deployment that fits in a unit-test budget.  Asserts global liveness
(every instance reaches a final state) and the headline cost shape.
"""

import pytest

from repro.engines import DistributedControlSystem, SystemConfig
from repro.sim.metrics import Mechanism
from repro.storage.tables import InstanceStatus
from repro.workloads import WorkloadGenerator, WorkloadParameters


@pytest.mark.slow
def test_paper_scale_distributed_deployment():
    params = WorkloadParameters(c=20, i=5)  # 100 concurrent instances
    generator = WorkloadGenerator(params, seed=98, coordination=True)
    workload = generator.build()
    system = DistributedControlSystem(
        SystemConfig(seed=98, trace=False), num_agents=params.z,
        agents_per_step=params.a,
    )
    generator.install(system, workload)
    run = generator.drive(system, workload, instances_per_schema=5)
    system.run()

    finished = [i for i in run.instances if i in system.outcomes]
    assert len(finished) == len(run.instances) == 100
    statuses = {system.outcomes[i].status for i in finished}
    assert InstanceStatus.COMMITTED in statuses
    # Aborted instances only come from the admin abort requests.
    aborted = [i for i in finished
               if system.outcomes[i].status is InstanceStatus.ABORTED]
    assert set(aborted) <= set(run.aborted_requests)

    # Table 6 shape at full scale.
    per_instance = system.metrics.per_instance_messages(Mechanism.NORMAL)
    assert per_instance <= params.s * params.a + params.f
    mean_load = system.metrics.per_instance_load(
        Mechanism.NORMAL, system.agent_names()
    )
    assert mean_load < 1.0  # ~s/z, far below the centralized s


@pytest.mark.slow
def test_paper_scale_coordination_under_contention():
    """Heavy conflict: every instance shares one key, so the per-schema
    FIFO ordering serializes them all — and they all still commit."""
    params = WorkloadParameters(c=3, i=8, pf=0.0, pi=0.0, pa=0.0)
    generator = WorkloadGenerator(params, seed=99, key_pool=1,
                                  coordination=True)
    workload = generator.build()
    system = DistributedControlSystem(
        SystemConfig(seed=99, trace=False), num_agents=params.z,
        agents_per_step=params.a,
    )
    generator.install(system, workload)
    run = generator.drive(system, workload, instances_per_schema=8)
    system.run()
    assert all(i in system.outcomes and system.outcomes[i].committed
               for i in run.instances)
    assert system.metrics.total_messages(Mechanism.COORDINATION) > 0
