"""Cross-architecture equivalence: one enactment semantics, three placements.

The same schemas with the same (deterministic) programs must produce the
same *outcomes* — statuses, workflow outputs, branch decisions — under
all three control architectures.
"""

from repro.core.programs import FailEveryNth, FunctionProgram, NoopProgram
from repro.workloads import figure3_workflow, travel_booking
from tests.conftest import (
    ALL_ARCHITECTURES,
    branching_schema,
    linear_schema,
    make_system,
    parallel_schema,
    register_programs,
)


def run_everywhere(build_and_start):
    """Run one scenario under all architectures; return outcome summaries."""
    results = {}
    for architecture in ALL_ARCHITECTURES:
        system = make_system(architecture, seed=11)
        ids = build_and_start(system)
        system.run()
        results[architecture] = [
            (system.outcome(i).status.value, tuple(sorted(system.outcome(i).outputs)))
            for i in ids
        ]
    assert len({tuple(v) for v in results.values()}) == 1, results
    return results


def test_linear_outcomes_agree():
    def scenario(system):
        schema = linear_schema(steps=5)
        system.register_schema(schema)
        register_programs(system, schema)
        return [system.start_workflow("Linear", {"x": i}) for i in range(3)]

    run_everywhere(scenario)


def test_parallel_fanout_outcomes_agree():
    def scenario(system):
        schema = parallel_schema()
        system.register_schema(schema)
        register_programs(system, schema)
        return [system.start_workflow("Fanout", {"x": 1})]

    run_everywhere(scenario)


def test_figure3_recovery_outcomes_agree():
    def scenario(system):
        scenario_obj = figure3_workflow()
        scenario_obj.install(system)
        return [system.start_workflow("Figure3", {"load": 7})]

    run_everywhere(scenario)


def test_travel_booking_ocr_outcomes_agree():
    def scenario(system):
        travel_booking().install(system)
        return [system.start_workflow("TravelBooking",
                                      {"traveller": "mk", "dates": "d1"})]

    run_everywhere(scenario)


def test_branch_decision_identical_across_architectures():
    """The same data-dependent branch is taken everywhere."""
    decisions = {}
    for architecture in ALL_ARCHITECTURES:
        system = make_system(architecture, seed=12)
        schema = branching_schema()
        system.register_schema(schema)
        register_programs(system, schema, behaviors={
            "S2": FunctionProgram(lambda i, c: {"route": "top"}),
        })
        system.start_workflow("Branchy", {"load": 1})
        system.run()
        done = {r.detail["step"] for r in system.trace.filter(kind="step.done")}
        decisions[architecture] = ("S3" in done, "S5" in done)
    assert len(set(decisions.values())) == 1
    assert decisions["centralized"] == (True, False)


def test_saga_abort_equivalent_everywhere():
    statuses = {}
    for architecture in ALL_ARCHITECTURES:
        system = make_system(architecture, seed=13)
        schema = linear_schema(steps=3)
        system.register_schema(schema)
        register_programs(system, schema, behaviors={
            "S3": FailEveryNth(NoopProgram(("out",)), {1, 2, 3}),
        })
        instance = system.start_workflow("Linear", {"x": 1})
        system.run()
        compensated = [r.detail["step"]
                       for r in system.trace.filter(kind="step.compensate")]
        compensated += [r.detail["step"]
                        for r in system.trace.filter(kind="step.compensated")]
        statuses[architecture] = (
            system.outcome(instance).status.value, tuple(compensated)
        )
    assert len(set(statuses.values())) == 1
    assert statuses["centralized"] == ("aborted", ("S2", "S1"))
