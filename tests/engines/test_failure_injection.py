"""Adversarial failure-injection tests: races the paper's protocols must survive."""

from repro.core.programs import FailEveryNth, FunctionProgram, NoopProgram
from repro.engines import SystemConfig
from repro.engines.distributed import elect_executor
from repro.model import AlwaysReexecute, SchemaBuilder
from repro.storage.tables import InstanceStatus
from tests.conftest import linear_schema, make_system, register_programs


def test_rollback_races_inflight_parallel_branch():
    """A rollback fires while the sibling branch's packets are in flight;
    the halt probes + invalidation rounds must keep state consistent."""
    system = make_system("distributed", seed=31, num_agents=8, agents_per_step=2)
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("O", program="W.O", inputs=["WF.x"], outputs=["o"])
    # Fast failing branch vs slow healthy branch.
    builder.step("F1", program="W.F1", inputs=["O.o"], outputs=["o"], cost=1.0)
    builder.step("H1", program="W.H1", inputs=["O.o"], outputs=["o"], cost=15.0)
    builder.step("H2", program="W.H2", inputs=["H1.o"], outputs=["o"], cost=15.0)
    builder.step("J", program="W.J", join="and", inputs=["F1.o", "H2.o"],
                 outputs=["o"])
    builder.parallel("O", ["F1", "H1"])
    builder.arc("H1", "H2")
    builder.join("J", ["F1", "H2"], kind="and")
    builder.rollback_point("F1", "O")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "F1": FailEveryNth(NoopProgram(("o",)), {1}),
    })
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    # J executed exactly once despite the racing recovery.
    j_runs = [r for r in system.trace.filter(kind="step.execute")
              if r.detail["step"] == "J"]
    assert len(j_runs) == 1


def test_double_failure_two_recovery_rounds():
    """The failing step fails twice: two rollbacks, two recovery epochs."""
    system = make_system("distributed", seed=32)
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"],
                 cr_policy=AlwaysReexecute())
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"])
    builder.sequence("A", "B")
    builder.rollback_point("B", "A")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "B": FailEveryNth(NoopProgram(("o",)), {1, 2}),
    })
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    assert system.trace.count("rollback") == 2
    b_runs = [r for r in system.trace.filter(kind="step.execute")
              if r.detail["step"] == "B"]
    assert len(b_runs) == 3  # fail, fail, success


def test_failure_in_loop_body():
    """A step failing inside a loop: rollback and loop iteration interact."""
    system = make_system("distributed", seed=33)
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["n"])
    builder.step("B", program="W.B", inputs=["A.n"], outputs=["n"])
    builder.sequence("A", "B")
    builder.loop("B", "A", while_condition="B.n < 2")
    builder.rollback_point("B", "B")  # retry in place
    builder.output("n", "B.n")
    schema = builder.build()
    system.register_schema(schema)
    state = {"n": 0}

    def count(inputs, ctx):
        state["n"] += 1
        return {"n": state["n"]}

    system.register_program("W.A", NoopProgram(("n",)))
    system.register_program("W.B", FailEveryNth(FunctionProgram(count), {1}))
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    outcome = system.outcome(instance)
    assert outcome.committed
    assert outcome.outputs["n"] == 2


def test_abort_during_recovery():
    """User abort lands while the workflow is mid-rollback."""
    system = make_system("distributed", seed=34)
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"],
                 cost=50.0, cr_policy=AlwaysReexecute())
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"])
    builder.sequence("A", "B", "C")
    builder.rollback_point("C", "B")
    builder.abort_compensation("A", "B")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "C": FailEveryNth(NoopProgram(("o",)), {1}),
    })
    instance = system.start_workflow("W", {"x": 1})
    # C fails at ~12.x; B re-executes (slow); abort lands mid-re-execution.
    system.abort_workflow(instance, delay=14.0)
    system.run()
    assert system.outcome(instance).status is InstanceStatus.ABORTED


def test_crash_of_coordination_agent_recovers_summaries():
    """The coordination agent crashes after commit; its durable summary
    survives, so a late abort request is still rejected."""
    system = make_system("distributed", seed=35)
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    coordination_agent = system.coordination_agent_for("Linear")
    coordination_agent.crash()
    coordination_agent.recover()
    assert system.workflow_status(instance) is InstanceStatus.COMMITTED
    system.abort_workflow(instance)
    system.run()
    assert system.outcome(instance).committed  # rejection, not abort
    assert system.trace.count("abort.rejected") == 1


def test_crash_during_rollback_recovers_and_finishes():
    """An agent crashes between receiving HaltThread and re-execution."""
    system = make_system("distributed", seed=36,
                         config=SystemConfig(seed=36, step_status_timeout=8.0,
                                             step_status_poll_interval=4.0))
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"])
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"])
    builder.sequence("A", "B", "C")
    builder.rollback_point("C", "B")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "C": FailEveryNth(NoopProgram(("o",)), {1}),
    })
    instance = system.start_workflow("W", {"x": 1})
    b_agent = elect_executor(system.assignment.eligible("W", "B"), "W",
                             instance, "B")
    # C fails ~3.3; WorkflowRollback reaches B's agent ~4.3.  Crash it just
    # after, recover later; the durable AGDB replays and re-executes.
    system.simulator.schedule(4.5, lambda: (
        system.agent(b_agent).crash() if system.agent(b_agent).is_up else None
    ))
    system.simulator.schedule(30.0, lambda: (
        system.agent(b_agent).recover() if not system.agent(b_agent).is_up else None
    ))
    system.run()
    assert system.outcome(instance).committed


def test_many_concurrent_instances_with_failures():
    """Throughput smoke: 30 concurrent failure-prone instances all finish."""
    system = make_system("distributed", seed=37, num_agents=10, agents_per_step=2)
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"])
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"])
    builder.sequence("A", "B", "C")
    builder.rollback_point("C", "B")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "C": FailEveryNth(NoopProgram(("o",)), {1}),
    })
    instances = [system.start_workflow("W", {"x": i}, delay=i * 0.3)
                 for i in range(30)]
    system.run()
    assert all(system.outcome(i).committed for i in instances)
    assert system.trace.count("rollback") == 30
