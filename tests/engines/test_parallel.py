"""Integration tests for parallel workflow control."""

import pytest

from repro.core.programs import FailEveryNth, NoopProgram
from repro.engines import ParallelControlSystem, SystemConfig
from repro.engines.parallel import TimestampMutex
from repro.model import RelativeOrderSpec, SchemaBuilder
from repro.sim.metrics import Mechanism
from repro.storage.tables import InstanceStatus
from tests.conftest import linear_schema, register_programs


def make(seed=3, num_engines=2, num_agents=4, agents_per_step=1):
    return ParallelControlSystem(
        SystemConfig(seed=seed), num_engines=num_engines,
        num_agents=num_agents, agents_per_step=agents_per_step,
    )


def test_instances_distributed_round_robin():
    system = make(num_engines=3)
    schema = linear_schema()
    system.register_schema(schema)
    register_programs(system, schema)
    ids = [system.start_workflow("Linear", {"x": i}) for i in range(6)]
    owners = [system.owner_of(i) for i in ids]
    assert owners == ["engine-00", "engine-01", "engine-02"] * 2
    system.run()
    assert all(system.outcome(i).committed for i in ids)


def test_message_counts_match_centralized_for_normal_execution():
    """Table 5: parallel normal-execution messages equal Table 4's 2·s·a."""
    system = make(num_engines=4, num_agents=4, agents_per_step=2)
    schema = linear_schema(steps=5)
    system.register_schema(schema)
    register_programs(system, schema)
    for i in range(4):
        system.start_workflow("Linear", {"x": i})
    system.run()
    per_instance = system.metrics.total_messages(Mechanism.NORMAL) / 4
    assert per_instance == 2 * 5 * 2


def test_per_engine_load_shrinks_with_more_engines():
    loads = {}
    for engines in (1, 4):
        system = make(num_engines=engines, num_agents=4)
        schema = linear_schema(steps=5)
        system.register_schema(schema)
        register_programs(system, schema)
        for i in range(8):
            system.start_workflow("Linear", {"x": i})
        system.run()
        loads[engines] = system.metrics.mean_node_load(
            Mechanism.NORMAL, system.engine_nodes()
        )
    assert loads[4] < loads[1]


def test_failure_handling_on_owner_engine():
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"])
    builder.sequence("A", "B")
    builder.rollback_point("B", "A")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "B": FailEveryNth(NoopProgram(("o",)), {1}),
    })
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    assert system.trace.count("rollback") == 1


def test_cross_engine_relative_ordering():
    """Conflicting instances on different engines still execute in order."""
    system = make(num_engines=2, num_agents=4)
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema)
    system.add_coordination(RelativeOrderSpec(
        name="fifo", schema_a="Linear", schema_b="Linear",
        steps_a=("S1", "S2"), steps_b=("S1", "S2"), conflict_key="WF.x",
    ))
    # Same key -> conflict; engines alternate, so i1/i2 are on different engines.
    i1 = system.start_workflow("Linear", {"x": "k"}, delay=0.0)
    i2 = system.start_workflow("Linear", {"x": "k"}, delay=0.2)
    system.run()
    assert system.outcome(i1).committed and system.outcome(i2).committed
    done = {
        (r.detail["instance"], r.detail["step"]): r.time
        for r in system.trace.filter(kind="step.done")
    }
    assert done[(i1, "S2")] < done[(i2, "S2")]
    # Coordination was cross-engine: broadcast messages were exchanged.
    assert system.metrics.total_messages(Mechanism.COORDINATION) > 0


def test_coordination_messages_scale_with_engine_count():
    counts = {}
    for engines in (2, 4):
        system = make(num_engines=engines, num_agents=4)
        schema = linear_schema(steps=3)
        system.register_schema(schema)
        register_programs(system, schema)
        system.add_coordination(RelativeOrderSpec(
            name="fifo", schema_a="Linear", schema_b="Linear",
            steps_a=("S1", "S2"), steps_b=("S1", "S2"), conflict_key="WF.x",
        ))
        for i in range(4):
            system.start_workflow("Linear", {"x": "k"}, delay=i * 0.5)
        system.run()
        counts[engines] = system.metrics.total_messages(Mechanism.COORDINATION)
    assert counts[4] > counts[2]  # the paper's (me+ro+rd)*e*s broadcast term


def test_timestamp_mutex_orders_by_stamp():
    mutex = TimestampMutex()
    mutex.request((2.0, "i2"), "W", "i2")
    mutex.request((1.0, "i1"), "W", "i1")
    assert mutex.holder() == ("W", "i1")
    mutex.release("i1")
    assert mutex.holder() == ("W", "i2")
    mutex.release("i2")
    assert mutex.holder() is None


def test_timestamp_mutex_reacquire_after_release():
    mutex = TimestampMutex()
    mutex.request((1.0, "i1"), "W", "i1")
    mutex.release("i1")
    mutex.request((5.0, "i1"), "W", "i1")
    assert mutex.holder() == ("W", "i1")
    assert mutex.waiting() == 1


def test_abort_routed_to_owner_engine():
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], cost=100.0)
    builder.sequence("A", "B")
    builder.abort_compensation("A")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema)
    i1 = system.start_workflow("W", {"x": 1})
    i2 = system.start_workflow("W", {"x": 2})
    system.abort_workflow(i2, delay=3.0)
    system.run()
    assert system.outcome(i1).committed
    assert system.outcome(i2).status is InstanceStatus.ABORTED


def test_unknown_instance_operations_rejected():
    from repro.errors import FrontEndError

    system = make()
    with pytest.raises(FrontEndError):
        system.abort_workflow("ghost")
    with pytest.raises(FrontEndError):
        system.workflow_status("ghost")
