"""Crash recovery must not reopen the stale-packet window.

A rollback (or loop re-entry) invalidates event occurrences and records a
``token -> round`` cutoff in the agent's ``known_invalidations`` map.  The
map is persisted with the AGDB fragment: after a crash and recovery the
agent still knows the cutoffs, so a stale packet carrying a
pre-invalidation occurrence cannot transiently revive it (and spuriously
re-fire the rules that depend on it).
"""

from repro.core.packets import WorkflowPacket
from repro.core.programs import NoopProgram
from repro.engines import DistributedControlSystem, SystemConfig
from repro.engines.runtime import open_invalidation_round
from repro.model import SchemaBuilder
from repro.storage.tables import InstanceStatus


def make_system():
    system = DistributedControlSystem(
        SystemConfig(seed=5), num_agents=4, agents_per_step=1
    )
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"])
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"], cost=500.0)
    builder.sequence("A", "B", "C")
    builder.output("r", "C.o")
    system.register_schema(builder.build())
    for step in ("A", "B", "C"):
        system.register_program(f"W.{step}", NoopProgram(("o",)))
    return system


def halted_b_agent():
    """Run A and B, then simulate a rollback halt (origin A) at B's agent:
    A.D/B.D invalidated under a new cutoff round, fragment persisted."""
    system = make_system()
    instance = system.start_workflow("W", {"x": 1})
    system.run(until=50.0)
    assert system.workflow_status(instance) is InstanceStatus.RUNNING
    agent = system.agent(system.assignment.eligible("W", "B")[0])
    runtime = agent.runtimes[instance]
    assert "A.D" in runtime.engine.events and "B.D" in runtime.engine.events
    round = open_invalidation_round(runtime, ["A.D", "B.D"])
    runtime.engine.invalidate_events(["A.D", "B.D"])
    runtime.engine.reset_rules_for_steps({"A", "B"})
    agent._persist(runtime)
    return system, instance, agent, round


def test_invalidation_cutoffs_survive_crash_and_recovery():
    system, instance, agent, round = halted_b_agent()
    before = agent.runtimes[instance]

    agent.crash()
    agent.recover()

    recovered = agent.runtimes[instance]
    assert recovered is not before  # rebuilt from the AGDB WAL
    assert recovered.known_invalidations.get("A.D") == round
    assert recovered.known_invalidations.get("B.D") == round
    # The invalidated occurrences did not come back with the snapshot.
    assert "A.D" not in recovered.engine.events
    assert "B.D" not in recovered.engine.events


def test_stale_packet_cannot_revive_invalidated_event_after_recovery():
    system, instance, agent, round = halted_b_agent()
    agent.crash()
    agent.recover()
    recovered = agent.runtimes[instance]

    executions_before = recovered.fragment.record("B").executions
    # A packet sent before the rollback carries the old (round-0)
    # occurrence of A.D and no cutoffs.  Without the persisted high-water
    # map the merge would revalidate A.D here and re-fire B's rule.
    stale = WorkflowPacket(
        schema_name="W",
        instance_id=instance,
        action="execute",
        target_step="B",
        data=dict(recovered.fragment.data),
        events={"A.D": [1.0, 0]},
        invalidations={},
        recovery_epoch=recovered.fragment.recovery_epoch,
    )
    agent._ingest_packet(stale)

    assert not recovered.engine.events.is_valid("A.D")
    assert recovered.known_invalidations.get("A.D") == round
    assert recovered.fragment.record("B").executions == executions_before
