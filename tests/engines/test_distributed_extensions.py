"""Tests for distributed-control extensions: load-based successor selection
and the workflow-status probe chain (paper Section 4.1)."""

from repro.core.programs import NoopProgram
from repro.engines import DistributedControlSystem, SystemConfig
from repro.model import SchemaBuilder
from tests.conftest import linear_schema, register_programs


def make(seed=5, selection="hash", **cfg):
    return DistributedControlSystem(
        SystemConfig(seed=seed, successor_selection=selection, **cfg),
        num_agents=4, agents_per_step=2,
    )


# ------------------------------------------------------- load-based selection


def test_load_mode_probes_eligible_successors():
    system = make(selection="load")
    schema = linear_schema(steps=4)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    # Each of the 3 inter-step hops probed the a=2 eligible successors.
    assert system.metrics.interface_messages("StateInformation") > 0


def test_hash_mode_sends_no_probes():
    system = make(selection="hash")
    schema = linear_schema(steps=4)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    assert system.metrics.interface_messages("StateInformation") == 0


def test_load_mode_prefers_idle_agent():
    system = make(selection="load")
    # A long-running blocker occupies one agent.
    blocker = SchemaBuilder("Blocker", inputs=["x"])
    blocker.step("L", program="Blocker.L", inputs=["WF.x"], cost=2000.0)
    system.register_schema(blocker.build())
    system.register_program("Blocker.L", NoopProgram(()))
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema)
    system.start_workflow("Blocker", {"x": 1})
    instance = system.start_workflow("Linear", {"x": 1}, delay=5.0)
    system.run(until=150.0)
    assert system.outcome(instance).committed
    busy_agent = system.assignment.eligible("Blocker", "L")[0]
    # The dispatcher routed around the busy agent wherever a choice existed.
    linear_steps_on_busy = [
        r for r in system.trace.filter(kind="step.execute")
        if r.detail["instance"] == instance and r.node == busy_agent
    ]
    assert len(linear_steps_on_busy) <= 1


def test_load_mode_outcomes_match_hash_mode():
    outcomes = {}
    for selection in ("hash", "load"):
        system = make(selection=selection)
        schema = linear_schema(steps=5)
        system.register_schema(schema)
        register_programs(system, schema)
        instance = system.start_workflow("Linear", {"x": 3})
        system.run()
        outcomes[selection] = (
            system.outcome(instance).status.value,
            sorted(system.outcome(instance).outputs),
        )
    assert outcomes["hash"] == outcomes["load"]


# ------------------------------------------------------- status probe chain


def probe_setup():
    system = make()
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"], cost=200.0)
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"])
    builder.sequence("A", "B", "C")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema)
    return system


def test_probe_locates_running_step():
    system = probe_setup()
    instance = system.start_workflow("W", {"x": 1})
    system.probe_workflow(instance, delay=6.0)  # B (slow) is executing
    system.run(until=15.0)
    reports = system.probe_reports(instance)
    assert reports
    running = {step for report in reports for step in report["running"]}
    assert running == {"B"}
    system.run()
    assert system.outcome(instance).committed


def test_probe_on_finished_workflow_reports_nothing():
    system = probe_setup()
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    system.probe_workflow(instance)
    system.run()
    running = {step for report in system.probe_reports(instance)
               for step in report["running"]}
    assert running == set()


def test_probe_chain_traverses_agents():
    """The probe reaches the current step's agent through the packet path,
    even when that agent is several hops from the coordination agent."""
    system = probe_setup()
    instance = system.start_workflow("W", {"x": 1})
    system.probe_workflow(instance, delay=6.0)
    system.run(until=15.0)
    probes_sent = system.metrics.interface_messages("WorkflowStatusProbe")
    assert probes_sent >= 1  # chained beyond the coordination agent
    reports = system.probe_reports(instance)
    coordination_agent = system.coordination_agent_for("W").name
    assert any(report["agent"] != coordination_agent for report in reports)


def test_duplicate_probes_are_deduplicated():
    system = probe_setup()
    instance = system.start_workflow("W", {"x": 1})
    agent = system.coordination_agent_for("W")
    system.simulator.schedule(6.0, agent.workflow_status_probe, instance)
    system.simulator.schedule(6.0, agent.workflow_status_probe, instance)
    system.run(until=15.0)
    reports = system.probe_reports(instance)
    # Two probes, each deduplicated per agent: at most one report per
    # (probe, agent) pair.
    keys = [(r["probe_id"], r["agent"]) for r in reports]
    assert len(keys) == len(set(keys))
    system.run()


# ------------------------------------------------- Figure 7 R.O. piggyback


def test_established_orders_piggyback_on_packets():
    """The Figure 7 packet carries "R.O. Leading/Lagging" info: once the
    authority establishes an order, the lagging instance's packets name
    the (spec, leading, lagging) triple."""
    from repro.model import RelativeOrderSpec

    system = make(seed=5)
    schema = linear_schema(steps=4)
    system.register_schema(schema)
    register_programs(system, schema)
    system.add_coordination(RelativeOrderSpec(
        name="fifo", schema_a="Linear", schema_b="Linear",
        steps_a=("S2", "S3"), steps_b=("S2", "S3"), conflict_key="WF.x",
    ))
    leader = system.start_workflow("Linear", {"x": "k"})
    lagger = system.start_workflow("Linear", {"x": "k"}, delay=0.3)
    system.run()
    assert system.outcome(leader).committed
    assert system.outcome(lagger).committed
    piggybacked = set()
    for agent in system.agents:
        runtime = agent.runtimes.get(lagger)
        if runtime is not None:
            piggybacked |= runtime.ro_info
    assert ("fifo", leader, lagger) in piggybacked
