"""Coordinated-execution integration tests across all three architectures."""

import pytest

from repro.core.programs import FailEveryNth, NoopProgram
from repro.model import (
    MutualExclusionSpec,
    RelativeOrderSpec,
    RollbackDependencySpec,
    SchemaBuilder,
)
from repro.storage.tables import InstanceStatus
from tests.conftest import ALL_ARCHITECTURES, linear_schema, make_system, register_programs


def done_times(system):
    return {
        (r.detail["instance"], r.detail["step"]): r.time
        for r in system.trace.filter(kind="step.done")
    }


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_relative_ordering_enforced(architecture):
    """Figure 2: conflicting steps execute in the same relative order."""
    system = make_system(architecture, seed=5)
    schema = linear_schema(steps=4)
    system.register_schema(schema)
    register_programs(system, schema)
    system.add_coordination(RelativeOrderSpec(
        name="fifo", schema_a="Linear", schema_b="Linear",
        steps_a=("S2", "S3"), steps_b=("S2", "S3"), conflict_key="WF.x",
    ))
    i1 = system.start_workflow("Linear", {"x": "part-1"}, delay=0.0)
    i2 = system.start_workflow("Linear", {"x": "part-1"}, delay=0.3)
    i3 = system.start_workflow("Linear", {"x": "part-2"}, delay=0.1)
    system.run()
    for instance in (i1, i2, i3):
        assert system.outcome(instance).committed
    times = done_times(system)
    # i1 leads i2 (same part): each governed pair in the same relative order.
    assert times[(i1, "S2")] < times[(i2, "S2")]
    assert times[(i1, "S3")] < times[(i2, "S3")]


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_relative_ordering_nonconflicting_keys_run_freely(architecture):
    system = make_system(architecture, seed=6)
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema)
    system.add_coordination(RelativeOrderSpec(
        name="fifo", schema_a="Linear", schema_b="Linear",
        steps_a=("S1", "S2"), steps_b=("S1", "S2"), conflict_key="WF.x",
    ))
    ids = [system.start_workflow("Linear", {"x": f"k{i}"}, delay=i * 0.1)
           for i in range(3)]
    system.run()
    assert all(system.outcome(i).committed for i in ids)


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_mutual_exclusion_regions_do_not_interleave(architecture):
    system = make_system(architecture, seed=7)
    schema = linear_schema(steps=4)
    system.register_schema(schema)
    register_programs(system, schema)
    system.add_coordination(MutualExclusionSpec(
        name="mx", schema_a="Linear", schema_b="Linear",
        region_a=("S2", "S3"), region_b=("S2", "S3"), conflict_key="WF.x",
    ))
    i1 = system.start_workflow("Linear", {"x": "r"}, delay=0.0)
    i2 = system.start_workflow("Linear", {"x": "r"}, delay=0.1)
    system.run()
    assert system.outcome(i1).committed and system.outcome(i2).committed
    times = done_times(system)
    # Regions [S2..S3] must be serialized: one instance's S3 completes
    # before the other's S2 starts (done(S3) <= done-ish(S2)); check via
    # completion times — no overlap of [S2start..S3done] intervals is
    # approximated by: the later S2 completes after the earlier S3.
    first, second = ((i1, i2) if times[(i1, "S2")] < times[(i2, "S2")] else (i2, i1))
    assert times[(first, "S3")] < times[(second, "S2")]


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_rollback_dependency_cascades(architecture):
    system = make_system(architecture, seed=8)
    builder = SchemaBuilder("W", inputs=["k"])
    builder.step("A", program="W.A", inputs=["WF.k"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"])
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"], cost=80.0)
    builder.sequence("A", "B", "C")
    builder.rollback_point("C", "B")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "C": FailEveryNth(NoopProgram(("o",)), {1}),
    })
    system.add_coordination(RollbackDependencySpec(
        name="rd", schema_a="W", schema_b="W",
        trigger_step_a="B", rollback_to_b="B", conflict_key="WF.k",
    ))
    # i1 will fail at C (attempt 1) and roll back to B, which must drag the
    # conflicting i2 back to B as well.
    i1 = system.start_workflow("W", {"k": "x"}, delay=0.0)
    i2 = system.start_workflow("W", {"k": "x"}, delay=0.2)
    system.run()
    assert system.outcome(i1).committed
    assert system.outcome(i2).committed
    cascades = system.trace.filter(kind="rollback.dependency")
    assert any(r.detail["dependent"] == i2 for r in cascades)


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_abort_releases_relative_order_block(architecture):
    """Aborting the leading instance must unblock the lagging one."""
    system = make_system(architecture, seed=9)
    builder = SchemaBuilder("W", inputs=["k"])
    builder.step("A", program="W.A", inputs=["WF.k"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"], cost=500.0)
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"])
    builder.sequence("A", "B", "C")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema)
    system.add_coordination(RelativeOrderSpec(
        name="fifo", schema_a="W", schema_b="W",
        steps_a=("A", "C"), steps_b=("A", "C"), conflict_key="WF.k",
    ))
    i1 = system.start_workflow("W", {"k": "x"}, delay=0.0)
    i2 = system.start_workflow("W", {"k": "x"}, delay=0.5)
    # i1's slow B blocks its C; abort i1 while i2 waits for clearance.
    system.abort_workflow(i1, delay=10.0)
    system.run()
    assert system.outcome(i1).status is InstanceStatus.ABORTED
    assert system.outcome(i2).committed
