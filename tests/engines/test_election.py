"""Edge cases of the deterministic executor election.

``elect_executor`` must (a) agree across all computing agents, (b) skip
crashed candidates deterministically, (c) fall back to the permutation
head when *every* candidate is down (messages then queue durably for it),
and (d) be independent of the recovery epoch so a re-execution after a
rollback lands on the agent that holds the previous execution's data —
the precondition for OCR reuse.
"""

from repro.core.programs import FailEveryNth, NoopProgram
from repro.engines import DistributedControlSystem, SystemConfig
from repro.engines.distributed import elect_executor
from repro.model import SchemaBuilder
from tests.conftest import linear_schema, register_programs


ELIGIBLE = ("a", "b", "c", "d")


def test_single_candidate_shortcut():
    assert elect_executor(("only",), "W", "i1", "S") == "only"
    # Even when that candidate is down: there is nobody else.
    assert elect_executor(("only",), "W", "i1", "S", is_up=lambda a: False) == "only"


def test_all_candidates_crashed_falls_back_to_permutation_head():
    expected_head = elect_executor(ELIGIBLE, "W", "i1", "S")
    pick = elect_executor(ELIGIBLE, "W", "i1", "S", is_up=lambda a: False)
    assert pick == expected_head
    # Deterministic: every agent computes the same fallback.
    assert pick == elect_executor(ELIGIBLE, "W", "i1", "S", is_up=lambda a: False)


def test_down_candidates_are_skipped_in_rotation_order():
    order = []
    remaining = set(ELIGIBLE)
    # Peeling winners one at a time reveals the underlying permutation.
    while remaining:
        pick = elect_executor(ELIGIBLE, "W", "i1", "S",
                              is_up=lambda a: a in remaining)
        order.append(pick)
        remaining.discard(pick)
    assert sorted(order) == sorted(ELIGIBLE)
    assert order[0] == elect_executor(ELIGIBLE, "W", "i1", "S")
    # The rotation is a cyclic shift of the eligible tuple, so agents
    # need no shared state beyond the static directory.
    start = ELIGIBLE.index(order[0])
    assert tuple(order) == tuple(
        ELIGIBLE[(start + i) % len(ELIGIBLE)] for i in range(len(ELIGIBLE))
    )


def test_election_spreads_across_instances_and_steps():
    picks = {
        elect_executor(ELIGIBLE, "W", f"i{n}", "S") for n in range(40)
    }
    assert len(picks) > 1  # not all instances pile onto one agent
    picks_by_step = {
        elect_executor(ELIGIBLE, "W", "i1", f"S{n}") for n in range(40)
    }
    assert len(picks_by_step) > 1


def test_election_is_epoch_independent():
    """The election key is (schema, instance, step) only — no epoch, no
    round — so recomputing after any number of rollbacks gives the same
    executor."""
    first = elect_executor(ELIGIBLE, "W", "i1", "S")
    assert all(
        elect_executor(ELIGIBLE, "W", "i1", "S") == first for __ in range(5)
    )


def test_reexecution_after_rollback_lands_on_same_agent():
    """Integration: a rollback re-execution re-elects the original
    executor (epoch-independence in vivo), enabling OCR reuse."""
    system = DistributedControlSystem(
        SystemConfig(seed=3), num_agents=6, agents_per_step=2
    )
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", program="W.A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", program="W.B", inputs=["A.o"], outputs=["o"])
    builder.step("C", program="W.C", inputs=["B.o"], outputs=["o"])
    builder.sequence("A", "B", "C")
    builder.rollback_point("C", "A")
    schema = builder.build()
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        "C": FailEveryNth(NoopProgram(("o",)), {1}),
    })
    instance = system.start_workflow("W", {"x": 1})
    system.run()
    assert system.outcome(instance).committed
    # B was visited twice (first pass + post-rollback reuse) on one agent.
    visits = [
        (r.node, r.kind)
        for r in system.trace.records
        if r.kind in ("step.execute", "step.reuse")
        and r.detail.get("step") == "B"
    ]
    assert len(visits) >= 2
    assert len({node for node, __ in visits}) == 1


def test_crashed_agents_excluded_until_recovery():
    system = DistributedControlSystem(
        SystemConfig(seed=2), num_agents=4, agents_per_step=2
    )
    schema = linear_schema(steps=3)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("Linear", {"x": 1})
    eligible = system.assignment.eligible("Linear", "S2")
    primary = elect_executor(eligible, "Linear", instance, "S2")
    system.agent(primary).crash()
    # Every other agent now elects the backup — unanimously.
    backup = elect_executor(eligible, "Linear", instance, "S2",
                            is_up=system.network.is_up)
    assert backup != primary
    system.agent(primary).recover()
    assert (
        elect_executor(eligible, "Linear", instance, "S2",
                       is_up=system.network.is_up)
        == primary
    )
