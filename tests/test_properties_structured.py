"""Property-based tests over randomly composed *structured* workflows.

A recursive hypothesis strategy builds block-structured schemas —
sequences, parallel (AND) blocks and if-then-else (XOR) blocks, arbitrarily
nested — and checks the liveness/safety invariants the enactment layers
must uphold for every shape:

* every instance commits under all three architectures;
* no step executes more than once (without failures);
* exactly one branch of every XOR block runs;
* with an injected failure + rollback point, instances still commit and
  the XOR-exclusive invariant still holds on the final pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.programs import FailEveryNth, NoopProgram
from repro.model.builder import SchemaBuilder
from tests.conftest import make_system, register_programs


# -------------------------------------------------------------- block model


@dataclass
class Seq:
    parts: list = field(default_factory=list)


@dataclass
class Par:
    branches: list = field(default_factory=list)


@dataclass
class Xor:
    branches: list = field(default_factory=list)  # first = taken branch


@dataclass
class Step:
    pass


def blocks(max_depth=3):
    """Recursive strategy over structured blocks."""
    return st.recursive(
        st.builds(Step),
        lambda inner: st.one_of(
            st.builds(Seq, st.lists(inner, min_size=2, max_size=3)),
            st.builds(Par, st.lists(inner, min_size=2, max_size=2)),
            st.builds(Xor, st.lists(inner, min_size=2, max_size=2)),
        ),
        max_leaves=6,
    )


class _Assembler:
    """Lowers a block tree onto a SchemaBuilder, returning entry/exit steps."""

    def __init__(self):
        self.builder = SchemaBuilder("P", inputs=["x"])
        self.counter = 0
        self.xor_taken: list[str] = []
        self.xor_skipped: list[str] = []
        #: False while lowering a branch that can never execute (a non-taken
        #: XOR alternative); expectations are only recorded on live paths.
        self.live = True

    def new_step(self, join="none", inputs=()):
        self.counter += 1
        name = f"N{self.counter}"
        self.builder.step(name, program=f"P.{name}", inputs=list(inputs),
                          outputs=["out"], join=join)
        return name

    def lower(self, block) -> tuple[str, str]:
        if isinstance(block, Step):
            name = self.new_step()
            return name, name
        if isinstance(block, Seq):
            first_entry, previous_exit = self.lower(block.parts[0])
            for part in block.parts[1:]:
                entry, exit_ = self.lower(part)
                self.builder.arc(previous_exit, entry)
                previous_exit = exit_
            return first_entry, previous_exit
        if isinstance(block, Par):
            split = self.new_step()
            join = self.new_step(join="and")
            for branch in block.branches:
                entry, exit_ = self.lower(branch)
                self.builder.arc(split, entry)
                self.builder.arc(exit_, join)
            return split, join
        if isinstance(block, Xor):
            split = self.new_step()
            join = self.new_step(join="xor")
            taken, *others = block.branches
            entry, exit_ = self.lower(taken)
            self.builder.arc(split, entry, condition="WF.x > 0")
            self.builder.arc(exit_, join)
            if self.live:
                self.xor_taken.append(entry)
            was_live = self.live
            self.live = False
            for branch in others:
                entry_o, exit_o = self.lower(branch)
                from repro.model.schema import ControlArc

                self.builder._arcs.append(ControlArc(split, entry_o, is_else=True))
                self.builder.arc(exit_o, join)
                if was_live:
                    self.xor_skipped.append(entry_o)
            self.live = was_live
            return split, join
        raise TypeError(block)


def assemble(tree):
    assembler = _Assembler()
    root = Seq([Step(), tree, Step()])  # guarantee single start/terminal
    entry, exit_ = assembler.lower(root)
    assembler.builder.output("result", f"{exit_}.out")
    schema = assembler.builder.build()
    return schema, assembler


# ---------------------------------------------------------------- properties


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tree=blocks(), seed=st.integers(0, 500),
       architecture=st.sampled_from(["centralized", "parallel", "distributed"]))
def test_structured_workflows_commit_exactly_once(tree, seed, architecture):
    schema, assembler = assemble(tree)
    system = make_system(architecture, seed=seed, num_agents=6, agents_per_step=2)
    system.register_schema(schema)
    register_programs(system, schema)
    instance = system.start_workflow("P", {"x": 1})
    system.run()
    assert system.outcome(instance).committed

    kind = ("step.dispatch" if architecture in ("centralized", "parallel")
            else "step.execute")
    executed = [r.detail["step"] for r in system.trace.filter(kind=kind)]
    assert len(executed) == len(set(executed)), "a step executed twice"
    # Exactly one branch of every XOR block ran.
    for taken in assembler.xor_taken:
        assert taken in executed
    for skipped in assembler.xor_skipped:
        assert skipped not in executed


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tree=blocks(), seed=st.integers(0, 200),
       architecture=st.sampled_from(["centralized", "distributed"]))
def test_structured_workflows_survive_a_failure(tree, seed, architecture):
    """Inject a first-attempt failure at the terminal step with a rollback
    point at the start: full-workflow rollback + OCR re-execution must still
    commit and preserve the XOR exclusivity invariant."""
    schema, assembler = assemble(tree)
    steps = list(schema.steps)
    terminal = steps[-1]
    start = steps[0]
    # Frozen dataclass: annotate the rollback point post-hoc for the test.
    object.__setattr__(schema, "rollback_points", {terminal: start})
    system = make_system(architecture, seed=seed, num_agents=6, agents_per_step=2)
    system.register_schema(schema)
    register_programs(system, schema, behaviors={
        terminal: FailEveryNth(NoopProgram(("out",)), {1}),
    })
    instance = system.start_workflow("P", {"x": 1})
    system.run()
    assert system.outcome(instance).committed

    kind = ("step.dispatch" if architecture in ("centralized", "parallel")
            else "step.execute")
    executed = [r.detail["step"] for r in system.trace.filter(kind=kind)]
    for skipped in assembler.xor_skipped:
        assert skipped not in executed
