"""Latency-model parameter validation and delay behaviour."""

import pytest

from repro.errors import ParameterError, SimulationError
from repro.runtime.latency import FixedLatency, UniformLatency
from repro.runtime.rng import SimRandom


def test_fixed_latency_delay_is_constant():
    model = FixedLatency(2.5)
    assert model.delay("a", "b") == 2.5
    assert model.delay("x", "y") == 2.5


def test_fixed_latency_zero_is_legal():
    assert FixedLatency(0.0).delay("a", "b") == 0.0


@pytest.mark.parametrize("bad", [-1.0, -0.001, float("nan"),
                                 float("inf"), float("-inf")])
def test_fixed_latency_rejects_bad_values(bad):
    with pytest.raises(ParameterError):
        FixedLatency(bad)


def test_uniform_latency_draws_within_bounds():
    rng = SimRandom(3).stream("latency")
    model = UniformLatency(rng, low=0.5, high=1.5)
    for __ in range(100):
        assert 0.5 <= model.delay("a", "b") <= 1.5


def test_uniform_latency_rejects_inverted_bounds():
    rng = SimRandom(3).stream("latency")
    with pytest.raises(ParameterError) as excinfo:
        UniformLatency(rng, low=2.0, high=1.0)
    assert "inverted" in str(excinfo.value)


@pytest.mark.parametrize("low,high", [(-0.5, 1.0), (float("nan"), 1.0),
                                      (0.5, float("inf"))])
def test_uniform_latency_rejects_bad_bounds(low, high):
    rng = SimRandom(3).stream("latency")
    with pytest.raises(ParameterError):
        UniformLatency(rng, low=low, high=high)


def test_parameter_error_is_both_value_and_simulation_error():
    """Callers catching ValueError (stdlib idiom) and callers catching
    SimulationError (historical repo idiom) both see the rejection."""
    with pytest.raises(ValueError):
        FixedLatency(-1.0)
    with pytest.raises(SimulationError):
        FixedLatency(-1.0)
