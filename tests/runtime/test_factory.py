"""Runtime registry: lazy name-based backend resolution."""

import pytest

from repro.errors import ParameterError
from repro.runtime import available_runtimes, build_runtime, register_runtime
from repro.runtime.protocols import Runtime


def test_builtin_names_are_registered():
    names = available_runtimes()
    assert "sim" in names
    assert "asyncio" in names
    assert "realtime" in names


def test_build_sim_runtime_by_name():
    runtime = build_runtime("sim")
    assert runtime.name == "sim"
    assert runtime.supports_faults()
    assert isinstance(runtime, Runtime)


def test_build_asyncio_runtime_by_name_and_alias():
    for name in ("asyncio", "realtime"):
        runtime = build_runtime(name)
        assert runtime.name == "asyncio"
        assert runtime.supports_faults()


def test_default_is_sim():
    assert build_runtime().name == "sim"


def test_unknown_runtime_name_raises():
    with pytest.raises(ParameterError) as excinfo:
        build_runtime("quantum")
    assert "quantum" in str(excinfo.value)
    assert "sim" in str(excinfo.value)  # the error lists what exists


def test_register_runtime_validates_target_shape():
    with pytest.raises(ParameterError):
        register_runtime("broken", "no-colon-here")


def test_register_and_build_custom_runtime():
    register_runtime("sim2", "repro.sim.runtime:SimRuntime")
    try:
        assert build_runtime("sim2").name == "sim"
    finally:
        from repro.runtime import factory

        factory._REGISTRY.pop("sim2", None)


def test_bad_attribute_target_raises():
    register_runtime("ghost", "repro.sim.runtime:NoSuchRuntime")
    try:
        with pytest.raises(ParameterError):
            build_runtime("ghost")
    finally:
        from repro.runtime import factory

        factory._REGISTRY.pop("ghost", None)
