"""Observability seams of the wall-clock runtime.

The realtime layer cannot import ``obs`` (layering contract), so these
hooks are duck-typed slots the service injects: the clock's ``profile``
and ``event_hook``, and the executor's ``on_retry``/``on_give_up``
callbacks.  Also covered: the cancel-vs-fire race on
:class:`~repro.runtime.realtime.RealtimeClock` — a handle cancelled by
an earlier callback in the same loop tick must neither fire nor corrupt
the pending-count accounting.
"""

import asyncio

from repro.runtime.realtime import RealtimeClock, RealtimeRuntime
from repro.runtime.retry import RetryPolicy


def test_cancel_racing_inflight_fire():
    """Two timers due the same tick; the first cancels the second."""

    async def main():
        clock = RealtimeClock()
        clock.start()
        fired = []
        handle_b = None

        def action_a():
            fired.append("a")
            handle_b.cancel()

        def action_b():  # pragma: no cover - must not run
            fired.append("b")

        clock.schedule(0.0, action_a)
        handle_b = clock.schedule(0.0, action_b)
        assert clock.pending == 2
        assert await clock.join(timeout=2.0)
        assert fired == ["a"]
        assert clock.pending == 0
        assert clock.events_processed == 1

    asyncio.run(main())


def test_cancel_after_fire_is_a_noop():
    async def main():
        clock = RealtimeClock()
        clock.start()
        fired = []
        handle = clock.schedule(0.0, fired.append, "x")
        assert await clock.join(timeout=2.0)
        assert fired == ["x"] and clock.pending == 0
        handle.cancel()  # late cancel must not decrement pending again
        handle.cancel()  # and must stay idempotent
        assert clock.pending == 0
        # the idle event must still be set (join returns immediately)
        assert await clock.join(timeout=0.1)

    asyncio.run(main())


def test_event_hook_and_profile_bracket_every_fire():
    class FakeProfiler:
        def __init__(self):
            self.begins = []
            self.ends = 0

        def begin_event(self, action, now, dt, queue_depth):
            self.begins.append((getattr(action, "__name__", "?"), queue_depth))

        def end_event(self):
            self.ends += 1

    async def main():
        clock = RealtimeClock()
        clock.start()
        hooked = []
        clock.event_hook = lambda now, pending: hooked.append(pending)
        profiler = FakeProfiler()
        clock.profile = profiler

        def tick():
            pass

        clock.schedule(0.0, tick)
        clock.schedule(0.001, tick)
        assert await clock.join(timeout=2.0)
        assert len(hooked) == 2
        assert profiler.ends == 2
        assert [name for name, __ in profiler.begins] == ["tick", "tick"]

    asyncio.run(main())


def test_profile_end_event_runs_even_when_action_raises():
    class FakeProfiler:
        def __init__(self):
            self.depth = 0

        def begin_event(self, action, now, dt, queue_depth):
            self.depth += 1

        def end_event(self):
            self.depth -= 1

    async def main():
        clock = RealtimeClock()
        clock.start()
        profiler = FakeProfiler()
        clock.profile = profiler

        def boom():
            raise RuntimeError("step failed")

        clock.schedule(0.0, boom)
        # the exception propagates to the loop's exception handler, not us
        await asyncio.sleep(0.05)
        assert profiler.depth == 0
        assert clock.pending == 0

    asyncio.run(main())


def test_executor_retry_and_give_up_hooks():
    async def main():
        runtime = RealtimeRuntime(
            retry=RetryPolicy(budget=2, base_delay=0.001, max_delay=0.002)
        )
        runtime.start()
        executor = runtime.executor
        retries, give_ups = [], []
        executor.on_retry = (
            lambda fn, name, exc, attempt, backoff:
            retries.append((name, attempt, backoff))
        )
        executor.on_give_up = (
            lambda fn, name, exc, attempts: give_ups.append((name, attempts))
        )

        def always_fails():
            raise ValueError("transient")

        executor.submit(0.0, always_fails)
        assert await executor.join(timeout=5.0)
        assert executor.retries == 2
        assert [a for __, a, __ in retries] == [1, 2]
        assert all(b > 0 for __, __, b in retries)
        [(gave_name, gave_attempts)] = give_ups
        assert gave_name.endswith("always_fails") and gave_attempts == 3
        assert len(executor.failures) == 1

    asyncio.run(main())


def test_executor_hook_exceptions_are_swallowed():
    """A broken observability hook must not kill the worker task."""

    async def main():
        runtime = RealtimeRuntime(
            retry=RetryPolicy(budget=1, base_delay=0.001, max_delay=0.002)
        )
        runtime.start()
        executor = runtime.executor

        def bad_hook(*args):
            raise RuntimeError("observer crashed")

        executor.on_retry = bad_hook
        executor.on_give_up = bad_hook
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise ValueError("transient")

        executor.submit(0.0, flaky)
        assert await executor.join(timeout=5.0)
        assert len(calls) == 2  # retried despite the broken hook
        assert executor.failures == []

    asyncio.run(main())


def test_hooks_default_off_and_cost_nothing():
    async def main():
        runtime = RealtimeRuntime()
        runtime.start()
        assert runtime.executor.on_retry is None
        assert runtime.executor.on_give_up is None
        assert runtime.clock.profile is None
        done = []
        runtime.executor.submit(0.0, done.append, 1)
        assert await runtime.join(timeout=2.0)
        assert done == [1]

    asyncio.run(main())
