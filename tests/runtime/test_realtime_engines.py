"""The full engine stack on the wall-clock runtime.

These are the integration seams the serve daemon depends on: each
architecture's control system, constructed over
:class:`~repro.runtime.realtime.RealtimeRuntime`, runs a real workflow
to commit on actual asyncio timers.  Timing assertions are loose (the
suite must pass on slow CI); outcome assertions are exact.
"""

import asyncio

import pytest

from repro.engines import (
    CentralizedControlSystem,
    DistributedControlSystem,
    ParallelControlSystem,
    SystemConfig,
)
from repro.errors import WorkloadError
from repro.model import SchemaBuilder
from repro.runtime.realtime import RealtimeRuntime
from repro.sim.faults import FaultPlan

SYSTEMS = {
    "centralized": CentralizedControlSystem,
    "parallel": ParallelControlSystem,
    "distributed": DistributedControlSystem,
}


def pair_schema():
    builder = SchemaBuilder("Pair", inputs=["x"])
    builder.step("A", program="p.a", inputs=["WF.x"], outputs=["y"], cost=1)
    builder.step("B", program="p.b", inputs=["A.y"], outputs=["z"], cost=1)
    builder.arc("A", "B")
    builder.output("result", "B.z")
    return builder.build()


def wallclock_config():
    return SystemConfig(
        runtime="asyncio",
        latency=0.0,
        work_time_scale=0.001,
        step_status_timeout=1.0,
        step_status_poll_interval=0.5,
    )


async def run_to_outcome(system, instance_id, timeout=5.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if instance_id in system.outcomes:
            return system.outcomes[instance_id]
        await asyncio.sleep(0.02)
    raise AssertionError(f"{instance_id} did not finish within {timeout}s")


@pytest.mark.parametrize("architecture", sorted(SYSTEMS))
def test_workflow_commits_on_wall_clock(architecture):
    async def main():
        runtime = RealtimeRuntime()
        system = SYSTEMS[architecture](wallclock_config(), runtime=runtime)
        runtime.start()
        system.register_schema(pair_schema())
        instance_id = system.start_workflow("Pair", {"x": 1})
        outcome = await run_to_outcome(system, instance_id)
        assert outcome.committed
        assert outcome.outputs == {"result": "B.z@1"}
        assert system.metrics.total_messages() > 0

    asyncio.run(main())


def test_config_runtime_name_builds_realtime_backend():
    """SystemConfig(runtime="asyncio") resolves through the factory —
    no explicit runtime object needed."""

    async def main():
        system = CentralizedControlSystem(wallclock_config())
        assert system.runtime.name == "asyncio"
        system.runtime.start()
        system.register_schema(pair_schema())
        instance_id = system.start_workflow("Pair", {"x": 1})
        outcome = await run_to_outcome(system, instance_id)
        assert outcome.committed

    asyncio.run(main())


def test_synchronous_run_is_refused_on_asyncio_runtime():
    system = CentralizedControlSystem(wallclock_config())
    with pytest.raises(WorkloadError) as excinfo:
        system.run()
    assert "join()" in str(excinfo.value)


def test_fault_injection_installs_on_asyncio_runtime():
    system = CentralizedControlSystem(wallclock_config())
    injector = system.inject_faults(FaultPlan(drop_p=0.1))
    assert system.runtime.faults is injector
    assert system.runtime.executor.faults is injector
    with pytest.raises(WorkloadError):
        system.inject_faults(FaultPlan())  # double install is refused
