"""Runtime conformance: both backends honour the same protocol contract.

Every test here runs twice — once against the deterministic simulated
runtime (``"sim"``) and once against the wall-clock asyncio runtime
(``"asyncio"``) — driving the *same* assertions through
:class:`repro.runtime.protocols.Clock`, ``Transport`` and ``Executor``.
That is the point of the pluggable runtime layer: the engines cannot
tell the substrates apart, so neither should these tests.

The asyncio variants run real (tiny) wall-clock delays under
``asyncio.run``; tolerances are deliberately loose — ordering and
counting are asserted exactly, elapsed time only directionally.
"""

import asyncio

import pytest

from repro.errors import SimulationError, WorkloadError
from repro.runtime import build_runtime
from repro.runtime.metrics import Mechanism
from repro.runtime.node import Node
from repro.runtime.protocols import (
    Clock,
    Executor,
    Runtime,
    Transport,
)

RUNTIMES = ("sim", "asyncio")

#: Wall-clock scale for the asyncio variants: long enough to order
#: events reliably, short enough to keep the suite fast.
TICK = {"sim": 1.0, "asyncio": 0.01}


def drive(runtime, body, settle=None):
    """Run ``body(runtime)`` and then the runtime to quiescence.

    ``body`` does all the scheduling; under simulation the clock then
    runs synchronously, under asyncio we await the runtime's join.
    Returns whatever ``body`` returned.
    """
    if runtime.name == "sim":
        result = body(runtime)
        runtime.clock.run()
        return result

    async def main():
        runtime.clock.start()
        result = body(runtime)
        assert await runtime.join(timeout=5.0), "asyncio runtime failed to settle"
        if settle is not None:
            await asyncio.sleep(settle)
        return result

    return asyncio.run(main())


class Recorder(Node):
    def __init__(self, name, sim, net):
        super().__init__(name, sim, net)
        self.received = []

    def handle_message(self, message):
        self.received.append((message.interface, dict(message.payload)))


@pytest.fixture(params=RUNTIMES)
def runtime(request):
    return build_runtime(request.param)


def test_satisfies_runtime_protocols(runtime):
    assert isinstance(runtime, Runtime)
    assert isinstance(runtime.clock, Clock)
    assert isinstance(runtime.transport, Transport)
    assert isinstance(runtime.executor, Executor)


def test_clock_runs_callbacks_in_delay_order(runtime):
    tick = TICK[runtime.name]
    fired = []

    def body(rt):
        rt.clock.schedule(3 * tick, fired.append, "late")
        rt.clock.schedule(1 * tick, fired.append, "early")
        rt.clock.schedule(2 * tick, fired.append, "middle")

    drive(runtime, body)
    assert fired == ["early", "middle", "late"]
    assert runtime.clock.events_processed == 3
    assert runtime.clock.pending == 0


def test_clock_schedule_at_absolute_time(runtime):
    tick = TICK[runtime.name]
    fired = []

    def body(rt):
        rt.clock.schedule_at(2 * tick, lambda: fired.append(("at", rt.clock.now)))

    drive(runtime, body)
    assert len(fired) == 1
    assert fired[0][1] >= 2 * tick - 1e-9


def test_clock_cancel_prevents_firing(runtime):
    tick = TICK[runtime.name]
    fired = []

    def body(rt):
        handle = rt.clock.schedule(1 * tick, fired.append, "cancelled")
        rt.clock.schedule(2 * tick, fired.append, "kept")
        handle.cancel()
        assert handle.cancelled
        handle.cancel()  # idempotent

    drive(runtime, body)
    assert fired == ["kept"]
    assert runtime.clock.pending == 0


def test_clock_rejects_negative_delay(runtime):
    def body(rt):
        with pytest.raises(SimulationError):
            rt.clock.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            rt.clock.schedule_at(-1.0, lambda: None)

    drive(runtime, body)


def test_executor_runs_submitted_work(runtime):
    tick = TICK[runtime.name]
    ran = []

    def body(rt):
        rt.executor.submit(1 * tick, ran.append, "work")
        rt.executor.submit(0.0, ran.append, "now")

    drive(runtime, body)
    assert sorted(ran) == ["now", "work"]


def test_transport_delivers_and_counts(runtime):
    def body(rt):
        a = Recorder("a", rt.clock, rt.transport)
        b = Recorder("b", rt.clock, rt.transport)
        assert rt.transport.node_names() == ["a", "b"]
        assert rt.transport.is_up("a") and rt.transport.is_up("b")
        a.send("b", "wi", {"n": 1}, Mechanism.NORMAL)
        a.send("b", "wi", {"n": 2}, Mechanism.NORMAL)
        return b

    b = drive(runtime, body)
    assert [p["n"] for __, p in b.received] == [1, 2]
    assert runtime.metrics.total_messages(Mechanism.NORMAL) == 2
    assert runtime.transport.delivered == 2


def test_transport_parks_messages_for_down_node(runtime):
    def body(rt):
        a = Recorder("a", rt.clock, rt.transport)
        b = Recorder("b", rt.clock, rt.transport)
        b.is_up = False
        a.send("b", "wi", {"n": 1}, Mechanism.FAILURE)
        return a, b

    __, b = drive(runtime, body)
    assert b.received == []
    assert runtime.transport.parked_count("b") == 1
    b.is_up = True
    assert runtime.transport.flush_parked("b") == 1
    assert [p["n"] for __, p in b.received] == [1]
    assert runtime.transport.parked_count("b") == 0


def test_transport_rejects_self_send_and_unknown_destination(runtime):
    def body(rt):
        Recorder("a", rt.clock, rt.transport)
        with pytest.raises(SimulationError):
            rt.transport.send("a", "a", "wi", {}, Mechanism.NORMAL)
        with pytest.raises(SimulationError):
            rt.transport.send("a", "ghost", "wi", {}, Mechanism.NORMAL)

    drive(runtime, body)


def test_fault_support_is_declared_honestly(runtime):
    from repro.sim.faults import FaultPlan

    from repro.runtime.retry import RetryPolicy
    from repro.runtime.rng import SimRandom

    plan = FaultPlan()
    if runtime.supports_faults():
        injector = runtime.install_faults(plan, SimRandom(1), RetryPolicy())
        assert injector is not None
    else:
        with pytest.raises(WorkloadError):
            runtime.install_faults(plan, SimRandom(1), RetryPolicy())
