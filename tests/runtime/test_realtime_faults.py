"""Wall-clock fault injection: the lifted injector on the asyncio runtime.

The fault core now lives in :mod:`repro.runtime.faults` (the sim module
re-exports it), so the same :class:`FaultPlan` drives both backends.
These tests cover the realtime-only surface: executor crash/stall
faults, seeded retry jitter, and outcome-level replay consistency.
"""

import asyncio

from repro.errors import InjectedFault
from repro.runtime.faults import FaultPlan, FaultStats
from repro.runtime.realtime import RealtimeRuntime, TaskExecutor
from repro.runtime.retry import RetryPolicy
from repro.sim.rng import SimRandom

FAST_RETRY = RetryPolicy(base_delay=0.01, factor=1.0, max_delay=0.01,
                         jitter=0.0, budget=2)


def test_exec_fault_fields_roundtrip_through_spec():
    plan = FaultPlan(exec_fail_p=0.25, exec_stall_p=0.1, exec_stall_s=0.75)
    spec = plan.to_spec()
    assert "execfail=0.25" in spec
    assert "execstall=0.1" in spec
    assert "execstallfor=0.75" in spec
    parsed = FaultPlan.parse(spec)
    assert parsed.to_dict() == plan.to_dict()


def test_exec_fault_dimensions_are_minimizable():
    plan = FaultPlan(drop_p=0.1, exec_fail_p=0.5, exec_stall_p=0.5)
    dims = plan.dimensions()
    assert "exec_fail_p" in dims and "exec_stall_p" in dims
    without = plan.without("exec_fail_p")
    assert without.exec_fail_p == 0.0
    assert without.drop_p == 0.1


def test_injected_executor_failures_exhaust_retry_budget():
    async def main():
        runtime = RealtimeRuntime(retry=FAST_RETRY, rng=SimRandom(7))
        runtime.start()
        injector = runtime.install_faults(
            FaultPlan(exec_fail_p=1.0), SimRandom(7).spawn("faults"),
            retry=FAST_RETRY,
        )
        ran = []
        runtime.executor.submit(0.0, ran.append, "x")
        assert await runtime.join(timeout=5.0)
        # Every attempt (initial + 2 retries) drew an injected failure;
        # the work never ran and the give-up is recorded, not raised.
        assert ran == []
        assert injector.stats.exec_failures == 3
        [(name, err)] = runtime.executor.failures
        assert "InjectedFault" in err

    asyncio.run(main())


def test_injected_executor_stall_delays_but_completes():
    async def main():
        runtime = RealtimeRuntime(retry=FAST_RETRY, rng=SimRandom(7))
        runtime.start()
        injector = runtime.install_faults(
            FaultPlan(exec_stall_p=1.0, exec_stall_s=0.05),
            SimRandom(7).spawn("faults"), retry=FAST_RETRY,
        )
        loop = asyncio.get_running_loop()
        ran = []
        started = loop.time()
        runtime.executor.submit(0.0, ran.append, "x")
        assert await runtime.join(timeout=5.0)
        assert ran == ["x"]
        assert loop.time() - started >= 0.05
        assert injector.stats.exec_stalls == 1
        assert injector.stats.exec_failures == 0

    asyncio.run(main())


def test_fault_stats_counts_exec_dimensions():
    stats = FaultStats()
    assert stats.as_dict()["exec_failures"] == 0
    assert stats.as_dict()["exec_stalls"] == 0


def test_retry_jitter_is_seeded_and_replayable():
    """Two executors with the same rng seed draw identical backoffs."""

    def backoff_sequence(seed):
        async def main():
            runtime = RealtimeRuntime(
                retry=RetryPolicy(base_delay=0.01, factor=1.0,
                                  max_delay=0.01, jitter=0.5, budget=3),
                rng=SimRandom(seed),
            )
            runtime.start()
            backoffs = []
            runtime.executor.on_retry = (
                lambda fn, name, exc, attempt, backoff:
                backoffs.append(backoff)
            )

            def flaky():
                raise ValueError("transient")

            runtime.executor.submit(0.0, flaky)
            assert await runtime.join(timeout=5.0)
            return backoffs

        return asyncio.run(main())

    first = backoff_sequence(21)
    second = backoff_sequence(21)
    different = backoff_sequence(22)
    assert len(first) == 3
    assert first == second
    assert first != different


def test_executor_without_injector_never_consults_faults():
    async def main():
        runtime = RealtimeRuntime(retry=FAST_RETRY, rng=SimRandom(0))
        runtime.start()
        assert isinstance(runtime.executor, TaskExecutor)
        assert runtime.executor.faults is None
        ran = []
        runtime.executor.submit(0.0, ran.append, 1)
        assert await runtime.join(timeout=5.0)
        assert ran == [1]

    asyncio.run(main())


def test_injected_fault_is_transient():
    assert issubclass(InjectedFault, Exception)
    # The retry loop treats any non-cancellation exception as transient;
    # InjectedFault must not be a special-cased terminal error.
    from repro.errors import SimulationError

    assert issubclass(InjectedFault, SimulationError)


def test_realtime_replays_are_outcome_consistent():
    """`repro chaos --runtime asyncio`: same (config, seed, plan) twice
    ends with identical per-instance outcome digests."""
    from repro.analysis.chaos import run_realtime_chaos

    report = run_realtime_chaos(
        "centralized/normal", seed=3,
        plan_spec="drop=0.1,dup=0.1,delay=0.1",
        instances=4, replays=2, timeout_s=30.0,
    )
    assert report.consistent, report.as_dict()
    assert len(report.digests) == 2
    assert report.digests[0] == report.digests[1]
    assert not report.unfinished
