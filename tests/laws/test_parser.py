"""Unit tests for the LAWS parser."""

import pytest

from repro.errors import LawsSyntaxError
from repro.laws.parser import parse_laws


MINIMAL = """
workflow W {
  inputs x;
  step A program p.a reads WF.x writes o;
  step B reads A.o;
  arc A -> B;
}
"""


def test_minimal_workflow():
    doc = parse_laws(MINIMAL)
    assert len(doc.workflows) == 1
    wf = doc.workflows[0]
    assert wf.name == "W"
    assert wf.inputs == ("x",)
    assert [s.name for s in wf.steps] == ["A", "B"]
    assert wf.steps[0].program == "p.a"
    assert wf.steps[0].reads == ("WF.x",)
    assert wf.steps[0].writes == ("o",)
    assert wf.arcs[0].src == "A" and wf.arcs[0].dst == "B"


def test_step_attributes():
    doc = parse_laws("""
    workflow W {
      step A program p type query cost 2.5 resources inv, machines
             writes o compensation cost 1.5 compensation program undo_p;
      step B noncompensable join xor;
      step C subworkflow Child;
    }
    """)
    a, b, c = doc.workflows[0].steps
    assert a.step_type == "query"
    assert a.cost == 2.5
    assert a.resources == ("inv", "machines")
    assert a.compensation_cost == 1.5
    assert a.compensation_program == "undo_p"
    assert not b.compensable and b.join == "xor"
    assert c.subworkflow == "Child"


def test_conditional_arcs_and_branch():
    doc = parse_laws("""
    workflow W {
      step A writes o; step B; step C; step D;
      arc A -> B when "A.o > 1";
      arc A -> C otherwise;
      branch B -> C when "A.o > 5", D otherwise;
    }
    """)
    wf = doc.workflows[0]
    assert wf.arcs[0].condition == "A.o > 1"
    assert wf.arcs[1].is_else
    branch = wf.branches[0]
    assert branch.conditional == (("C", "A.o > 5"),)
    assert branch.otherwise == "D"


def test_parallel_join_loop():
    doc = parse_laws("""
    workflow W {
      step A; step B; step C; step D;
      parallel A -> B, C;
      join D from B, C kind and;
      loop D -> A while "D.n < 3";
    }
    """)
    wf = doc.workflows[0]
    assert wf.parallels[0].branches == ("B", "C")
    assert wf.joins[0].sources == ("B", "C") and wf.joins[0].kind == "and"
    assert wf.loops[0].condition == "D.n < 3"


def test_failure_handling_clauses():
    doc = parse_laws("""
    workflow W {
      step A; step B; step C;
      on failure of C rollback to A;
      compensation set { A, B };
      on abort compensate A, B;
    }
    """)
    wf = doc.workflows[0]
    assert wf.rollbacks[0].failed_step == "C" and wf.rollbacks[0].origin == "A"
    assert wf.compensation_sets[0].members == ("A", "B")
    assert wf.abort_compensate[0].steps == ("A", "B")


def test_cr_clauses():
    doc = parse_laws("""
    workflow W {
      step A; step B; step C; step D;
      cr A always;
      cr B reuse_if_unchanged;
      cr C incremental 0.4;
      cr D reuse when "prev.WF.x == new.WF.x" incremental when "new.WF.x > 0" fraction 0.2;
    }
    """)
    crs = {c.step: c for c in doc.workflows[0].cr_decls}
    assert crs["A"].policy == "always"
    assert crs["B"].policy == "reuse_if_unchanged"
    assert crs["C"].policy == "incremental" and crs["C"].fraction == 0.4
    assert crs["D"].policy == "condition"
    assert crs["D"].reuse_when == "prev.WF.x == new.WF.x"
    assert crs["D"].incremental_when == "new.WF.x > 0"
    assert crs["D"].fraction == 0.2


def test_output_clause():
    doc = parse_laws("""
    workflow W { step A writes o; output res = A.o; }
    """)
    out = doc.workflows[0].outputs[0]
    assert out.name == "res" and out.ref == "A.o"


def test_order_declaration():
    doc = parse_laws("""
    workflow A { step S1; step S2; arc S1 -> S2; }
    workflow B { step T1; step T2; arc T1 -> T2; }
    order fifo between A(S1, S2) and B(T1, T2) on WF.part;
    """)
    order = doc.orders[0]
    assert order.name == "fifo"
    assert order.steps_a == ("S1", "S2") and order.steps_b == ("T1", "T2")
    assert order.conflict_key == "WF.part"


def test_mutex_declaration():
    doc = parse_laws("""
    workflow A { step S1; step S2; arc S1 -> S2; }
    mutex lock between A[S1..S2] and A[S1..S2];
    """)
    mutex = doc.mutexes[0]
    assert mutex.region_a == ("S1", "S2")
    assert mutex.conflict_key is None


def test_rollback_dependency_declaration():
    doc = parse_laws("""
    workflow A { step S1; step S2; arc S1 -> S2; }
    workflow B { step T1; }
    rollback_dependency rd when A.S1 rolls back force B to T1 on WF.k;
    """)
    rd = doc.rollback_dependencies[0]
    assert rd.schema_a == "A" and rd.trigger_step_a == "S1"
    assert rd.schema_b == "B" and rd.rollback_to_b == "T1"


def test_syntax_errors_carry_location():
    with pytest.raises(LawsSyntaxError) as err:
        parse_laws("workflow W { step ; }")
    assert "line" in str(err.value)


def test_unexpected_toplevel_rejected():
    with pytest.raises(LawsSyntaxError):
        parse_laws("step A;")


def test_branch_arm_requires_when_or_otherwise():
    with pytest.raises(LawsSyntaxError):
        parse_laws("workflow W { step A; step B; branch A -> B; }")


def test_bad_join_kind_rejected():
    with pytest.raises(LawsSyntaxError):
        parse_laws("workflow W { step A; step B; step C; join C from A, B kind sideways; }")


def test_rollback_dependency_requires_dotted_trigger():
    with pytest.raises(LawsSyntaxError):
        parse_laws("""
        workflow A { step S1; }
        rollback_dependency rd when S1 rolls back force A to S1;
        """)
