"""Unit tests for LAWS -> model translation (and end-to-end execution)."""

import pytest

from repro.errors import LawsSemanticError, ValidationError
from repro.laws import load_laws
from repro.model import (
    AlwaysReexecute,
    ConditionPolicy,
    IncrementalIfInputsChanged,
    JoinKind,
    MutualExclusionSpec,
    RelativeOrderSpec,
    ReuseIfInputsUnchanged,
    RollbackDependencySpec,
    StepType,
)
from tests.conftest import make_system


SOURCE = """
workflow Orders {
  inputs part, qty;
  step Check program p.check type query reads WF.part, WF.qty writes ok cost 1;
  step Reserve program p.reserve reads Check.ok writes rsv cost 2 compensation cost 1.5;
  step Ship program p.ship reads Reserve.rsv writes trk;
  arc Check -> Reserve;
  arc Reserve -> Ship;
  on failure of Ship rollback to Reserve;
  compensation set { Check, Reserve };
  on abort compensate Reserve;
  cr Reserve incremental 0.4;
  cr Check always;
  output tracking = Ship.trk;
}
workflow Billing {
  inputs part;
  step B1 program p.bill reads WF.part writes inv;
  output invoice = B1.inv;
}
order fifo between Orders(Reserve, Ship) and Orders(Reserve, Ship) on WF.part;
mutex lock between Orders[Check..Reserve] and Billing[B1..B1] on WF.part;
rollback_dependency rd when Orders.Reserve rolls back force Billing to B1 on WF.part;
"""


def test_full_translation():
    doc = load_laws(SOURCE)
    assert [s.name for s in doc.schemas] == ["Orders", "Billing"]
    orders = doc.schemas[0]
    assert orders.steps["Check"].step_type is StepType.QUERY
    assert orders.steps["Reserve"].compensation_cost == 1.5
    assert orders.rollback_points == {"Ship": "Reserve"}
    assert orders.compensation_sets == (frozenset({"Check", "Reserve"}),)
    assert orders.abort_compensation_steps == ("Reserve",)
    assert isinstance(orders.cr_policies["Reserve"], IncrementalIfInputsChanged)
    assert isinstance(orders.cr_policies["Check"], AlwaysReexecute)
    assert isinstance(orders.cr_policies["Ship"], ReuseIfInputsUnchanged)
    assert orders.outputs == {"tracking": "Ship.trk"}
    assert [type(s) for s in doc.specs] == [
        RelativeOrderSpec, MutualExclusionSpec, RollbackDependencySpec
    ]


def test_translated_schema_runs():
    doc = load_laws(SOURCE)
    system = make_system("distributed", seed=1)
    doc.install(system)
    instance = system.start_workflow("Orders", {"part": "gasket", "qty": 2})
    system.run()
    assert system.outcome(instance).committed


def test_branch_and_join_translation():
    doc = load_laws("""
    workflow W {
      inputs x;
      step A reads WF.x writes o;
      step B; step C; step D join xor;
      branch A -> B when "A.o > 1", C otherwise;
      arc B -> D;
      arc C -> D;
    }
    """)
    schema = doc.schemas[0]
    assert schema.steps["D"].join is JoinKind.XOR
    conditions = {a.dst: (a.condition, a.is_else) for a in schema.arcs if a.src == "A"}
    assert conditions["B"] == ("A.o > 1", False)
    assert conditions["C"] == (None, True)


def test_condition_policy_translation():
    doc = load_laws("""
    workflow W {
      inputs x;
      step A reads WF.x writes o;
      cr A reuse when "prev.WF.x == new.WF.x" fraction 0.1;
    }
    """)
    policy = doc.schemas[0].cr_policies["A"]
    assert isinstance(policy, ConditionPolicy)
    assert policy.incremental_fraction == 0.1


def test_cr_for_unknown_step_rejected():
    with pytest.raises(LawsSemanticError):
        load_laws("workflow W { step A; cr GHOST always; }")


def test_duplicate_workflow_rejected():
    with pytest.raises(LawsSemanticError):
        load_laws("workflow W { step A; } workflow W { step B; }")


def test_order_with_unknown_schema_rejected():
    with pytest.raises(LawsSemanticError):
        load_laws("""
        workflow A { step S1; }
        order o between A(S1) and GHOST(T1);
        """)


def test_order_with_unknown_step_rejected():
    with pytest.raises(LawsSemanticError):
        load_laws("""
        workflow A { step S1; }
        order o between A(S1) and A(GHOST);
        """)


def test_invalid_workflow_structure_fails_validation():
    with pytest.raises(ValidationError):
        load_laws("workflow W { step A; step B; }")  # two start steps
