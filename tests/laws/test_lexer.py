"""Unit tests for the LAWS tokenizer."""

import pytest

from repro.errors import LawsSyntaxError
from repro.laws.lexer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text) if t.kind != "eof"]


def test_keywords_vs_names():
    assert kinds("workflow Foo") == [("keyword", "workflow"), ("name", "Foo")]


def test_dotted_names():
    assert kinds("WF.part") == [("name", "WF.part")]
    assert kinds("order.check") == [("name", "order.check")]


def test_arrow_and_range_punctuation():
    assert kinds("A -> B") == [("name", "A"), ("punct", "->"), ("name", "B")]
    assert kinds("A..B") == [("name", "A"), ("punct", ".."), ("name", "B")]


def test_numbers():
    assert kinds("cost 2.5") == [("keyword", "cost"), ("number", "2.5")]
    assert kinds("42") == [("number", "42")]


def test_strings_both_quotes():
    assert kinds('when "S1.o > 1"') == [("keyword", "when"), ("string", "S1.o > 1")]
    assert kinds("when 'x'") == [("keyword", "when"), ("string", "x")]


def test_comments_ignored():
    assert kinds("A # this is a comment\nB") == [("name", "A"), ("name", "B")]


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert tokens[0].line == 1 and tokens[0].column == 1
    assert tokens[1].line == 2 and tokens[1].column == 3


def test_unterminated_string_rejected():
    with pytest.raises(LawsSyntaxError):
        tokenize('when "unfinished')
    with pytest.raises(LawsSyntaxError):
        tokenize('when "multi\nline"')


def test_unexpected_character_rejected():
    with pytest.raises(LawsSyntaxError):
        tokenize("workflow @")


def test_punctuation_suite():
    text = "{ } ; , ( ) [ ] ="
    assert [v for __, v in kinds(text)] == ["{", "}", ";", ",", "(", ")", "[", "]", "="]
