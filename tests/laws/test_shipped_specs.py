"""The LAWS specification shipped in examples/ stays loadable and runnable."""

import pathlib

import pytest

from repro.core.programs import NoopProgram
from repro.laws import load_laws
from repro.model.export import to_dot
from tests.conftest import make_system

SPEC_PATH = pathlib.Path(__file__).resolve().parents[2] / "examples" / "order_fulfilment.laws"


@pytest.fixture(scope="module")
def document():
    return load_laws(SPEC_PATH.read_text())


def test_shipped_spec_parses(document):
    assert [schema.name for schema in document.schemas] == ["Orders"]
    assert [spec.name for spec in document.specs] == ["part_fifo"]
    orders = document.schemas[0]
    assert orders.rollback_points == {"Ship": "Reserve"}
    assert orders.compensation_sets == (frozenset({"Reserve", "Pack"}),)


def test_shipped_spec_renders_to_dot(document):
    dot = to_dot(document.schemas[0])
    assert "digraph" in dot
    assert '"Reserve" -> "Expedite"' in dot
    assert 'label="otherwise"' in dot


@pytest.mark.parametrize("architecture", ["centralized", "distributed"])
def test_shipped_spec_runs(document, architecture):
    system = make_system(architecture, seed=61)
    document.install(system)
    for program, outputs in (("ord.check", ("ok",)), ("ord.reserve", ("rsv",)),
                             ("ord.rush", ("tag",)), ("ord.pack", ("box",)),
                             ("ord.ship", ("trk",))):
        system.register_program(program, NoopProgram(outputs))
    small = system.start_workflow("Orders", {"part": "gasket", "qty": 2})
    bulk = system.start_workflow("Orders", {"part": "gasket", "qty": 50},
                                 delay=0.2)
    system.run()
    assert system.outcome(small).committed
    assert system.outcome(bulk).committed
    done = {(r.detail["instance"], r.detail["step"])
            for r in system.trace.filter(
                kind="step.done")}
    # qty>10 takes the Expedite branch; small order skips it.
    assert (bulk, "Expedite") in done
    assert (small, "Expedite") not in done
