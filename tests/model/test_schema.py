"""Unit tests for the schema data model."""

import pytest

from repro.errors import SchemaError
from repro.model.schema import (
    ControlArc,
    JoinKind,
    StepDef,
    StepType,
    WorkflowSchema,
    split_ref,
    step_output_ref,
    workflow_input_ref,
)


def test_ref_helpers():
    assert workflow_input_ref("qty") == "WF.qty"
    assert step_output_ref("S2", "O1") == "S2.O1"
    assert split_ref("S2.O1") == ("S2", "O1")


def test_split_ref_rejects_malformed():
    for bad in ("S2", ".O1", "S2.", ""):
        with pytest.raises(SchemaError):
            split_ref(bad)


def test_step_def_defaults():
    step = StepDef(name="S1")
    assert step.step_type is StepType.UPDATE
    assert step.compensable
    assert step.effective_compensation_cost == step.cost


def test_step_def_compensation_cost_override():
    step = StepDef(name="S1", cost=4.0, compensation_cost=1.0)
    assert step.effective_compensation_cost == 1.0


def test_step_def_rejects_bad_names():
    with pytest.raises(SchemaError):
        StepDef(name="")
    with pytest.raises(SchemaError):
        StepDef(name="A.B")
    with pytest.raises(SchemaError):
        StepDef(name="WF")


def test_step_def_rejects_negative_cost():
    with pytest.raises(SchemaError):
        StepDef(name="S1", cost=-1.0)


def test_step_def_validates_input_refs():
    with pytest.raises(SchemaError):
        StepDef(name="S1", inputs=("notaref",))


def test_step_def_rejects_dotted_outputs():
    with pytest.raises(SchemaError):
        StepDef(name="S1", outputs=("S1.O1",))


def test_step_output_refs_and_producers():
    step = StepDef(name="S3", inputs=("WF.x", "S1.a", "S2.b"), outputs=("o",))
    assert step.output_refs() == ("S3.o",)
    assert step.input_producer_steps() == frozenset({"S1", "S2"})


def test_control_arc_rejects_self_loop():
    with pytest.raises(SchemaError):
        ControlArc("S1", "S1")


def test_control_arc_else_with_condition_rejected():
    with pytest.raises(SchemaError):
        ControlArc("S1", "S2", condition="x > 1", is_else=True)


def test_loop_arc_cannot_be_else():
    with pytest.raises(SchemaError):
        ControlArc("S1", "S2", is_else=True, loop=True)


def test_schema_queries():
    steps = {
        "S1": StepDef(name="S1", outputs=("o",)),
        "S2": StepDef(name="S2"),
        "S3": StepDef(name="S3"),
    }
    arcs = (
        ControlArc("S1", "S2"),
        ControlArc("S2", "S3"),
        ControlArc("S3", "S1", condition="True", loop=True),
    )
    schema = WorkflowSchema(name="W", inputs=("x",), steps=steps, arcs=arcs)
    assert schema.successors("S1") == ("S2",)
    assert schema.predecessors("S2") == ("S1",)
    assert len(schema.forward_arcs()) == 2
    assert len(schema.loop_arcs()) == 1
    assert schema.input_refs() == ("WF.x",)


def test_schema_unknown_step_raises():
    schema = WorkflowSchema(name="W", steps={"S1": StepDef(name="S1")})
    with pytest.raises(SchemaError):
        schema.step("missing")


def test_schema_requires_steps():
    with pytest.raises(SchemaError):
        WorkflowSchema(name="W", steps={})


def test_compensation_set_lookup():
    schema = WorkflowSchema(
        name="W",
        steps={"S1": StepDef(name="S1"), "S2": StepDef(name="S2")},
        compensation_sets=(frozenset({"S1", "S2"}),),
    )
    assert schema.compensation_set_of("S1") == frozenset({"S1", "S2"})
    assert schema.compensation_set_of("S9") is None


def test_rollback_origin_lookup():
    schema = WorkflowSchema(
        name="W",
        steps={"S1": StepDef(name="S1"), "S2": StepDef(name="S2")},
        arcs=(ControlArc("S1", "S2"),),
        rollback_points={"S2": "S1"},
    )
    assert schema.rollback_origin("S2") == "S1"
    assert schema.rollback_origin("S1") is None


def test_describe_renders_structure():
    schema = WorkflowSchema(
        name="W",
        steps={"S1": StepDef(name="S1"), "S2": StepDef(name="S2", join=JoinKind.XOR)},
        arcs=(ControlArc("S1", "S2"),),
    )
    text = schema.describe()
    assert "workflow W" in text
    assert "join=xor" in text
