"""Unit tests for schema compilation into rule templates."""

from repro.model.builder import SchemaBuilder
from repro.model.compiler import compile_schema
from repro.rules.events import WF_START, step_done


def rule_for(compiled, step, index=0):
    templates = compiled.templates_for(step)
    execute = [t for t in templates if t.kind == "execute"]
    return execute[index]


def test_start_step_rule_requires_workflow_start():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"])
    compiled = compile_schema(b.build())
    assert rule_for(compiled, "A").events == frozenset({WF_START})


def test_sequential_rule_requires_predecessor_done():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B", inputs=["A.o"])
    b.arc("A", "B")
    compiled = compile_schema(b.build())
    assert rule_for(compiled, "B").events == frozenset({step_done("A")})


def test_data_producer_events_added():
    """A rule waits for the done events of steps it consumes data from."""
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B", outputs=["o"])
    b.step("C")
    b.step("D", join="and", inputs=["A.o", "B.o"])
    b.parallel("A", ["B", "C"])
    b.arc("B", "D")
    b.arc("C", "D")
    compiled = compile_schema(b.build())
    events = rule_for(compiled, "D").events
    # Preds B and C, plus data producer A.
    assert events == frozenset({step_done("A"), step_done("B"), step_done("C")})


def test_and_join_single_rule_all_preds():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"])
    b.step("B")
    b.step("C")
    b.step("D", join="and")
    b.parallel("A", ["B", "C"])
    b.arc("B", "D")
    b.arc("C", "D")
    compiled = compile_schema(b.build())
    rules = [t for t in compiled.templates_for("D") if t.kind == "execute"]
    assert len(rules) == 1
    assert rules[0].events == frozenset({step_done("B"), step_done("C")})


def test_xor_join_one_rule_per_arc():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B")
    b.step("C")
    b.step("D", join="xor")
    b.branch("A", [("B", "A.o > 1")], otherwise="C")
    b.arc("B", "D")
    b.arc("C", "D")
    compiled = compile_schema(b.build())
    rules = [t for t in compiled.templates_for("D") if t.kind == "execute"]
    assert len(rules) == 2
    assert {frozenset(r.events) for r in rules} == {
        frozenset({step_done("B")}),
        frozenset({step_done("C")}),
    }


def test_branch_conditions_are_mutually_exclusivized():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B")
    b.step("C")
    b.step("D")
    b.step("J", join="xor")
    b.branch("A", [("B", "A.o > 10"), ("C", "A.o > 5")], otherwise="D")
    for step in ("B", "C", "D"):
        b.arc(step, "J")
    compiled = compile_schema(b.build())
    cond_b = rule_for(compiled, "B").condition_text
    cond_c = rule_for(compiled, "C").condition_text
    cond_d = rule_for(compiled, "D").condition_text
    assert cond_b == "A.o > 10"
    assert "not (A.o > 10)" in cond_c and "A.o > 5" in cond_c
    assert "not (A.o > 10)" in cond_d and "not (A.o > 5)" in cond_d
    # exactly one fires for any value of A.o
    for value in (0, 7, 20):
        env = {"A.o": value}
        fired = [
            s
            for s, cond in (("B", cond_b), ("C", cond_c), ("D", cond_d))
            if compiled.condition_for(rule_for(compiled, s).rule_id).evaluate(env)
        ]
        assert len(fired) == 1


def test_loop_template_and_forward_guard():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B", outputs=["n"])
    b.step("C")
    b.sequence("A", "B", "C")
    b.loop("B", "A", while_condition="B.n < 3")
    compiled = compile_schema(b.build())
    loops = compiled.loop_templates_for("B")
    assert len(loops) == 1
    assert loops[0].loop_target == "A"
    assert loops[0].loop_body == frozenset({"A", "B"})
    # Forward continuation guarded by the negated loop condition.
    assert rule_for(compiled, "C").condition_text == "not (B.n < 3)"


def test_terminal_profiles_for_xor_terminals():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B")
    b.step("C")
    b.branch("A", [("B", "A.o > 1")], otherwise="C")
    compiled = compile_schema(b.build())
    assert compiled.terminal_profiles["B"] == {"A": "B"}
    assert compiled.terminal_profiles["C"] == {"A": "C"}


def test_commit_ready_parallel_terminals():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"])
    b.step("T1")
    b.step("T2")
    b.parallel("A", ["T1", "T2"])
    compiled = compile_schema(b.build())
    assert not compiled.commit_ready(set())
    assert not compiled.commit_ready({"T1"})
    assert compiled.commit_ready({"T1", "T2"})


def test_commit_ready_xor_terminals():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("T1")
    b.step("T2")
    b.branch("A", [("T1", "A.o > 1")], otherwise="T2")
    compiled = compile_schema(b.build())
    # Either branch terminal alone suffices: the other is unreachable.
    assert compiled.commit_ready({"T1"})
    assert compiled.commit_ready({"T2"})


def test_commit_ready_mixed_parallel_and_xor():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("P")  # parallel terminal, always expected
    b.step("X1")
    b.step("X2")
    b.parallel("A", ["P", "M"]) if False else None
    b.step("M", outputs=["o"])
    b.arc("A", "P")
    b.arc("A", "M")
    b.branch("M", [("X1", "M.o > 1")], otherwise="X2")
    compiled = compile_schema(b.build())
    assert not compiled.commit_ready({"X1"})
    assert compiled.commit_ready({"X1", "P"})
    assert compiled.commit_ready({"X2", "P"})
    assert not compiled.commit_ready({"P"})


def test_invalidation_and_affected_helpers():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B", outputs=["o"])
    b.step("C")
    b.sequence("A", "B", "C")
    compiled = compile_schema(b.build())
    assert compiled.invalidation_set("B") == frozenset({"B", "C"})
    assert compiled.affected_terminals("B") == frozenset({"C"})


def test_branch_first_map():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B")
    b.step("C")
    b.step("D", join="xor")
    b.branch("A", [("B", "A.o > 1")], otherwise="C")
    b.arc("B", "D")
    b.arc("C", "D")
    compiled = compile_schema(b.build())
    assert compiled.branch_first_map == {"B": "A", "C": "A"}


def test_abandoned_branch_members():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B1", outputs=["o"])
    b.step("B2")
    b.step("C")
    b.step("D", join="xor")
    b.branch("A", [("B1", "A.o > 1")], otherwise="C")
    b.arc("B1", "B2")
    b.arc("B2", "D")
    b.arc("C", "D")
    compiled = compile_schema(b.build())
    assert compiled.abandoned_branch_members("A", "C") == frozenset({"B1", "B2"})
    assert compiled.abandoned_branch_members("A", "B1") == frozenset({"C"})


def test_rule_ids_unique():
    from tests.conftest import branching_schema

    compiled = compile_schema(branching_schema())
    ids = [t.rule_id for t in compiled.rule_templates]
    assert len(ids) == len(set(ids))
