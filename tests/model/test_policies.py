"""Unit tests for compensation/re-execution policies."""

import pytest

from repro.model.policies import (
    AlwaysReexecute,
    ConditionPolicy,
    CRDecision,
    IncrementalIfInputsChanged,
    ReuseIfInputsUnchanged,
)


def test_always_reexecute():
    policy = AlwaysReexecute()
    assert policy.decide({"a": 1}, {"a": 1}, {}) is CRDecision.COMPLETE


def test_reuse_if_unchanged():
    policy = ReuseIfInputsUnchanged()
    assert policy.decide({"a": 1}, {"a": 1}, {}) is CRDecision.REUSE
    assert policy.decide({"a": 1}, {"a": 2}, {}) is CRDecision.COMPLETE


def test_incremental_if_changed():
    policy = IncrementalIfInputsChanged(0.5)
    assert policy.decide({"a": 1}, {"a": 1}, {}) is CRDecision.REUSE
    assert policy.decide({"a": 1}, {"a": 2}, {}) is CRDecision.INCREMENTAL
    assert policy.incremental_fraction == 0.5


def test_incremental_fraction_bounds():
    with pytest.raises(ValueError):
        IncrementalIfInputsChanged(0.0)
    with pytest.raises(ValueError):
        IncrementalIfInputsChanged(1.5)


def test_condition_policy_reuse_branch():
    policy = ConditionPolicy(reuse_when="prev.WF.x == new.WF.x")
    assert policy.decide({"WF.x": 1}, {"WF.x": 1}, {}) is CRDecision.REUSE
    assert policy.decide({"WF.x": 1}, {"WF.x": 2}, {}) is CRDecision.COMPLETE


def test_condition_policy_incremental_branch():
    policy = ConditionPolicy(
        reuse_when="prev.WF.x == new.WF.x",
        incremental_when="new.WF.x - prev.WF.x < 10",
        incremental_fraction=0.2,
    )
    assert policy.decide({"WF.x": 1}, {"WF.x": 5}, {}) is CRDecision.INCREMENTAL
    assert policy.decide({"WF.x": 1}, {"WF.x": 100}, {}) is CRDecision.COMPLETE


def test_condition_policy_sees_previous_outputs():
    policy = ConditionPolicy(reuse_when="out.S1.o > 0")
    assert policy.decide({}, {}, {"S1.o": 5}) is CRDecision.REUSE
    assert policy.decide({}, {}, {"S1.o": -1}) is CRDecision.COMPLETE


def test_condition_policy_defaults_to_complete():
    policy = ConditionPolicy()
    assert policy.decide({}, {}, {}) is CRDecision.COMPLETE
