"""Unit tests for schema validation (each structural check)."""

import pytest

from repro.errors import ValidationError
from repro.model.builder import SchemaBuilder
from repro.model.validation import validate_schema


def build_raw(configure):
    """Build without validation, then validate explicitly."""
    builder = SchemaBuilder("W", inputs=["x"])
    configure(builder)
    return builder.build(validate=False)


def expect_problem(configure, fragment):
    schema = build_raw(configure)
    with pytest.raises(ValidationError) as err:
        validate_schema(schema)
    assert fragment in str(err.value)


def test_valid_schema_passes():
    def configure(b):
        b.step("A", inputs=["WF.x"], outputs=["o"])
        b.step("B", inputs=["A.o"])
        b.arc("A", "B")

    graph = validate_schema(build_raw(configure))
    assert graph.start_steps == ("A",)


def test_unknown_arc_endpoints():
    def configure(b):
        b.step("A")
        b._arcs.append(type(b._arcs)() if False else None)  # placeholder

    # construct directly: arc to a missing step
    from repro.model.schema import ControlArc, StepDef, WorkflowSchema

    schema = WorkflowSchema(
        name="W", steps={"A": StepDef(name="A")}, arcs=(ControlArc("A", "GHOST"),)
    )
    with pytest.raises(Exception):
        validate_schema(schema)


def test_duplicate_arc_detected():
    from repro.model.schema import ControlArc, StepDef, WorkflowSchema

    schema = WorkflowSchema(
        name="W",
        steps={"A": StepDef(name="A"), "B": StepDef(name="B")},
        arcs=(ControlArc("A", "B"), ControlArc("A", "B")),
    )
    with pytest.raises(ValidationError) as err:
        validate_schema(schema)
    assert "duplicate arc" in str(err.value)


def test_multiple_start_steps_rejected():
    expect_problem(
        lambda b: (b.step("A"), b.step("B")),
        "exactly one start step",
    )


def test_cycle_in_forward_arcs_rejected():
    def configure(b):
        b.step("A")
        b.step("B")
        b.arc("A", "B")
        b.arc("B", "A")

    expect_problem(configure, "cycle")


def test_mixed_split_rejected():
    def configure(b):
        b.step("A", inputs=["WF.x"], outputs=["o"])
        b.step("B")
        b.step("C")
        b.arc("A", "B", condition="WF.x > 1")
        b.arc("A", "C")  # unconditional next to conditional

    expect_problem(configure, "mixes conditional and unconditional")


def test_multiple_else_arcs_rejected():
    def configure(b):
        from repro.model.schema import ControlArc

        b.step("A", inputs=["WF.x"])
        b.step("B")
        b.step("C")
        b.step("D")
        b.arc("A", "B", condition="WF.x > 1")
        b._arcs.append(ControlArc("A", "C", is_else=True))
        b._arcs.append(ControlArc("A", "D", is_else=True))

    expect_problem(configure, "multiple else-arcs")


def test_else_without_conditions_rejected():
    def configure(b):
        from repro.model.schema import ControlArc

        b.step("A")
        b.step("B")
        b.step("C")
        b.arc("A", "B")
        b._arcs.append(ControlArc("A", "C", is_else=True))

    expect_problem(configure, "else-arc but no conditions")


def test_undeclared_join_rejected():
    def configure(b):
        b.step("A")
        b.step("B")
        b.step("C")
        b.step("D")  # join=NONE but two in-arcs
        b.parallel("A", ["B", "C"])
        b.arc("B", "D")
        b.arc("C", "D")

    expect_problem(configure, "no declared")


def test_join_declared_without_multiple_inputs_rejected():
    def configure(b):
        b.step("A")
        b.step("B", join="and")
        b.arc("A", "B")

    expect_problem(configure, "declares join")


def test_unknown_workflow_input_ref():
    expect_problem(
        lambda b: b.step("A", inputs=["WF.ghost"]),
        "no input 'ghost'",
    )


def test_input_from_undefined_step():
    expect_problem(
        lambda b: b.step("A", inputs=["S9.o"]),
        "undefined step",
    )


def test_input_item_not_produced():
    def configure(b):
        b.step("A", outputs=["o"])
        b.step("B", inputs=["A.ghost"])
        b.arc("A", "B")

    expect_problem(configure, "does not produce")


def test_input_from_downstream_step_rejected():
    def configure(b):
        b.step("A", inputs=["B.o"])
        b.step("B", outputs=["o"])
        b.arc("A", "B")

    expect_problem(configure, "downstream")


def test_input_across_exclusive_branches_rejected():
    def configure(b):
        b.step("A", inputs=["WF.x"], outputs=["o"])
        b.step("B", outputs=["o"])
        b.step("C", inputs=["B.o"])
        b.step("D", join="xor")
        b.branch("A", [("B", "WF.x > 1")], otherwise="C")
        b.arc("B", "D")
        b.arc("C", "D")

    expect_problem(configure, "exclusive")


def test_loop_needs_condition():
    def configure(b):
        from repro.model.schema import ControlArc

        b.step("A")
        b.step("B")
        b.arc("A", "B")
        b._arcs.append(ControlArc("B", "A", loop=True))

    expect_problem(configure, "continue-condition")


def test_loop_target_must_be_ancestor():
    def configure(b):
        b.step("A")
        b.step("B")
        b.step("C")
        b.parallel("A", ["B", "C"])
        b.loop("B", "C", while_condition="True")  # C not an ancestor of B

    expect_problem(configure, "ancestor")


def test_rollback_origin_must_be_ancestor():
    def configure(b):
        b.step("A")
        b.step("B")
        b.step("C")
        b.parallel("A", ["B", "C"])
        b.rollback_point("B", "C")

    expect_problem(configure, "not an ancestor")


def test_rollback_to_self_allowed():
    def configure(b):
        b.step("A")
        b.rollback_point("A", "A")

    validate_schema(build_raw(configure))


def test_overlapping_compensation_sets_rejected():
    def configure(b):
        b.step("A")
        b.step("B")
        b.step("C")
        b.sequence("A", "B", "C")
        b.compensation_set("A", "B")
        b.compensation_set("B", "C")

    expect_problem(configure, "two compensation dependent sets")


def test_noncompensable_member_rejected():
    def configure(b):
        b.step("A", compensable=False)
        b.step("B")
        b.arc("A", "B")
        b.compensation_set("A", "B")

    expect_problem(configure, "non-compensable")


def test_abort_compensation_unknown_step():
    def configure(b):
        b.step("A")
        b.abort_compensation("GHOST")

    expect_problem(configure, "unknown step 'GHOST'")


def test_bad_arc_condition_reported():
    def configure(b):
        b.step("A", inputs=["WF.x"])
        b.step("B")
        b.step("C")
        b.branch("A", [("B", "WF.x >")], otherwise="C")

    expect_problem(configure, "cannot parse")


def test_output_checks():
    def configure(b):
        b.step("A", outputs=["o"])
        b.output("r", "A.ghost")

    expect_problem(configure, "does not produce")

    def configure2(b):
        b.step("A")
        b.output("r", "WF.ghost")

    expect_problem(configure2, "unknown input")
