"""Unit tests for the fluent schema builder."""

import pytest

from repro.errors import SchemaError, ValidationError
from repro.model.builder import SchemaBuilder
from repro.model.policies import AlwaysReexecute
from repro.model.schema import JoinKind, StepType


def test_minimal_build():
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("S1", inputs=["WF.x"], outputs=["o"])
    schema = builder.build()
    assert schema.name == "W"
    assert schema.step("S1").outputs == ("o",)


def test_duplicate_step_rejected():
    builder = SchemaBuilder("W")
    builder.step("S1")
    with pytest.raises(SchemaError):
        builder.step("S1")


def test_sequence_chains_arcs():
    builder = SchemaBuilder("W")
    for name in ("A", "B", "C"):
        builder.step(name)
    builder.sequence("A", "B", "C")
    schema = builder.build()
    assert schema.successors("A") == ("B",)
    assert schema.successors("B") == ("C",)


def test_sequence_needs_two_steps():
    builder = SchemaBuilder("W")
    builder.step("A")
    with pytest.raises(SchemaError):
        builder.sequence("A")


def test_parallel_split():
    builder = SchemaBuilder("W")
    for name in ("A", "B", "C", "D"):
        builder.step(name)
    builder.parallel("A", ["B", "C"])
    builder.step("J", join="and") if False else None
    builder.join("D", ["B", "C"], kind="and")
    schema = builder.build()
    assert set(schema.successors("A")) == {"B", "C"}
    assert schema.step("D").join is JoinKind.AND


def test_branch_with_otherwise():
    builder = SchemaBuilder("W")
    for name in ("A", "B", "C"):
        builder.step(name)
    builder.branch("A", [("B", "WF.x > 1")], otherwise="C")
    builder = builder  # chaining returns self
    schema = SchemaBuilder("W2", inputs=["x"])
    # rebuild with declared input so validation passes
    for name in ("A", "B", "C"):
        schema.step(name, inputs=["WF.x"] if name == "A" else [])
    schema.branch("A", [("B", "WF.x > 1")], otherwise="C")
    built = schema.build()
    arcs = {(a.src, a.dst): a for a in built.arcs}
    assert arcs[("A", "B")].condition == "WF.x > 1"
    assert arcs[("A", "C")].is_else


def test_branch_requires_conditions():
    builder = SchemaBuilder("W")
    builder.step("A")
    builder.step("B")
    with pytest.raises(SchemaError):
        builder.branch("A", [("B", None)])  # type: ignore[list-item]


def test_join_requires_predeclared_target():
    builder = SchemaBuilder("W")
    builder.step("A")
    builder.step("B")
    with pytest.raises(SchemaError):
        builder.join("Z", ["A", "B"])


def test_loop_arc():
    builder = SchemaBuilder("W")
    builder.step("A", outputs=["n"])
    builder.step("B", inputs=["A.n"])
    builder.arc("A", "B")
    builder.loop("B", "A", while_condition="A.n < 3")
    schema = builder.build()
    assert len(schema.loop_arcs()) == 1


def test_cr_policy_attachment():
    builder = SchemaBuilder("W")
    builder.step("A", cr_policy=AlwaysReexecute())
    builder.step("B")
    builder.arc("A", "B")
    schema = builder.build()
    assert isinstance(schema.cr_policies["A"], AlwaysReexecute)
    # unannotated steps get the library default
    assert schema.cr_policies["B"] is not None


def test_compensation_set_needs_two_members():
    builder = SchemaBuilder("W")
    builder.step("A")
    with pytest.raises(SchemaError):
        builder.compensation_set("A")


def test_step_type_and_join_accept_strings():
    builder = SchemaBuilder("W")
    builder.step("A", step_type="query")
    schema_step = builder._steps["A"]
    assert schema_step.step_type is StepType.QUERY
    with pytest.raises(SchemaError):
        builder.step("B", step_type="bogus")
    with pytest.raises(SchemaError):
        builder.step("C", join="bogus")


def test_build_runs_validation():
    builder = SchemaBuilder("W")
    builder.step("A")
    builder.step("B")
    # two start steps -> validation error
    with pytest.raises(ValidationError):
        builder.build()
    assert builder.build(validate=False) is not None


def test_abort_compensation_and_output():
    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", inputs=["WF.x"], outputs=["o"])
    builder.abort_compensation("A")
    builder.output("res", "A.o")
    schema = builder.build()
    assert schema.abort_compensation_steps == ("A",)
    assert schema.outputs == {"res": "A.o"}
