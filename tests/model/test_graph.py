"""Unit tests for control-flow graph analysis."""

import pytest

from repro.errors import SchemaError
from repro.model.builder import SchemaBuilder
from repro.model.graph import SchemaGraph, SplitKind


def diamond():
    """A -> (B | C by condition) -> D (xor join)."""
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B", outputs=["o"])
    b.step("C", outputs=["o"])
    b.step("D", join="xor")
    b.branch("A", [("B", "A.o > 1")], otherwise="C")
    b.arc("B", "D")
    b.arc("C", "D")
    return b.build()


def fanout():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"])
    b.step("B")
    b.step("C")
    b.step("D", join="and")
    b.parallel("A", ["B", "C"])
    b.arc("B", "D")
    b.arc("C", "D")
    return b.build()


def test_start_and_terminal_steps():
    graph = SchemaGraph(diamond())
    assert graph.start_steps == ("A",)
    assert graph.terminal_steps == ("D",)


def test_topo_order_respects_arcs():
    graph = SchemaGraph(diamond())
    order = graph.topo_order
    assert order.index("A") < order.index("B") < order.index("D")
    assert order.index("A") < order.index("C") < order.index("D")


def test_descendants_and_ancestors():
    graph = SchemaGraph(diamond())
    assert graph.descendants("A") == frozenset({"B", "C", "D"})
    assert graph.ancestors("D") == frozenset({"A", "B", "C"})
    assert graph.descendants("D") == frozenset()


def test_invalidation_set_includes_origin():
    graph = SchemaGraph(diamond())
    assert graph.invalidation_set("B") == frozenset({"B", "D"})


def test_split_kind_classification():
    xor_graph = SchemaGraph(diamond())
    assert xor_graph.split_kind("A") is SplitKind.XOR
    and_graph = SchemaGraph(fanout())
    assert and_graph.split_kind("A") is SplitKind.PARALLEL
    assert and_graph.split_kind("B") is SplitKind.NONE


def test_xor_branch_exclusive_members():
    graph = SchemaGraph(diamond())
    branches = graph.xor_splits["A"]
    members = {info.arc.dst: info.exclusive_members for info in branches}
    assert members["B"] == frozenset({"B"})
    assert members["C"] == frozenset({"C"})  # D is shared, not exclusive


def test_are_exclusive():
    graph = SchemaGraph(diamond())
    assert graph.are_exclusive("B", "C")
    assert not graph.are_exclusive("B", "D")
    assert not graph.are_exclusive("B", "B")


def test_parallel_branches_not_exclusive():
    graph = SchemaGraph(fanout())
    assert not graph.are_exclusive("B", "C")


def test_cycle_detection():
    from repro.model.schema import ControlArc, StepDef, WorkflowSchema

    schema = WorkflowSchema(
        name="W",
        steps={"A": StepDef(name="A"), "B": StepDef(name="B")},
        arcs=(ControlArc("A", "B"), ControlArc("B", "A")),
    )
    graph = SchemaGraph(schema)
    with pytest.raises(SchemaError):
        graph.topo_order


def test_loop_body():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B", outputs=["o"])
    b.step("C", outputs=["o"])
    b.step("D")
    b.sequence("A", "B", "C", "D")
    b.loop("C", "B", while_condition="B.o < 3")
    schema = b.build()
    graph = SchemaGraph(schema)
    loop_arc = schema.loop_arcs()[0]
    assert graph.loop_body(loop_arc) == frozenset({"B", "C"})


def test_loop_body_rejects_forward_arc():
    schema = diamond()
    graph = SchemaGraph(schema)
    with pytest.raises(SchemaError):
        graph.loop_body(schema.forward_arcs()[0])


def test_nested_xor_exclusivity():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B", outputs=["o"])
    b.step("B1", outputs=["o"])
    b.step("B2", outputs=["o"])
    b.step("C", outputs=["o"])
    b.step("J2", join="xor")
    b.step("J", join="xor")
    b.branch("A", [("B", "A.o > 1")], otherwise="C")
    b.branch("B", [("B1", "B.o > 1")], otherwise="B2")
    b.arc("B1", "J2")
    b.arc("B2", "J2")
    b.arc("J2", "J")
    b.arc("C", "J")
    graph = SchemaGraph(b.build())
    assert graph.are_exclusive("B1", "B2")
    assert graph.are_exclusive("B1", "C")
    assert not graph.are_exclusive("B1", "J")


def test_topo_index():
    graph = SchemaGraph(diamond())
    assert graph.topo_index("A") < graph.topo_index("D")
