"""Unit tests for coordination spec declarations."""

import pytest

from repro.errors import CoordinationError
from repro.model.coordination_spec import (
    MutualExclusionSpec,
    RelativeOrderSpec,
    RollbackDependencySpec,
)


def test_relative_order_pairs():
    spec = RelativeOrderSpec(
        name="ro", schema_a="A", schema_b="B",
        steps_a=("S1", "S2"), steps_b=("T1", "T2"),
    )
    assert spec.pairs == (("S1", "T1"), ("S2", "T2"))
    assert spec.ordered_steps("A") == ("S1", "S2")
    assert spec.ordered_steps("B") == ("T1", "T2")


def test_relative_order_mismatched_lists():
    with pytest.raises(CoordinationError):
        RelativeOrderSpec(name="ro", schema_a="A", schema_b="B",
                          steps_a=("S1",), steps_b=("T1", "T2"))


def test_relative_order_empty_rejected():
    with pytest.raises(CoordinationError):
        RelativeOrderSpec(name="ro", schema_a="A", schema_b="B")


def test_relative_order_unknown_schema_lookup():
    spec = RelativeOrderSpec(name="ro", schema_a="A", schema_b="B",
                             steps_a=("S1",), steps_b=("T1",))
    with pytest.raises(CoordinationError):
        spec.ordered_steps("C")


def test_mutex_region_validation():
    with pytest.raises(CoordinationError):
        MutualExclusionSpec(name="mx", schema_a="A", schema_b="B",
                            region_a=("", "S2"), region_b=("T1", "T2"))


def test_mutex_region_lookup():
    spec = MutualExclusionSpec(name="mx", schema_a="A", schema_b="B",
                               region_a=("S1", "S2"), region_b=("T1", "T2"))
    assert spec.region_of("A") == ("S1", "S2")
    assert spec.region_of("B") == ("T1", "T2")


def test_rollback_dependency_requires_steps():
    with pytest.raises(CoordinationError):
        RollbackDependencySpec(name="rd", schema_a="A", schema_b="B")


def test_involves_and_name():
    spec = RollbackDependencySpec(name="rd", schema_a="A", schema_b="B",
                                  trigger_step_a="S1", rollback_to_b="T1")
    assert spec.involves("A") and spec.involves("B")
    assert not spec.involves("C")
    assert spec.schemas() == ("A", "B")


def test_spec_requires_name():
    with pytest.raises(CoordinationError):
        RelativeOrderSpec(name="", schema_a="A", schema_b="B",
                          steps_a=("S1",), steps_b=("T1",))
