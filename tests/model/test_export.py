"""Tests for DOT export and schema summaries."""

from repro.model.export import schema_summary, to_dot
from tests.conftest import branching_schema, linear_schema, parallel_schema


def test_dot_contains_steps_and_edges():
    dot = to_dot(linear_schema(steps=3))
    assert dot.startswith('digraph "Linear"')
    for step in ("S1", "S2", "S3"):
        assert f'"{step}"' in dot
    assert '"S1" -> "S2"' in dot


def test_dot_marks_start_and_terminal():
    dot = to_dot(linear_schema(steps=2))
    assert "peripheries=2" in dot  # start step
    assert "style=bold" in dot  # terminal step


def test_dot_branch_conditions_and_else():
    dot = to_dot(branching_schema())
    assert 'label="S2.route == \'top\'"' in dot or "S2.route" in dot
    assert 'label="otherwise"' in dot
    assert "XOR-join" in dot


def test_dot_rollback_edge():
    dot = to_dot(branching_schema())
    assert '"S4" -> "S2" [style=dotted, color=red, label="rollback"];' in dot


def test_dot_loop_edge_dashed():
    from repro.model import SchemaBuilder

    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", inputs=["WF.x"], outputs=["n"])
    builder.step("B", inputs=["A.n"], outputs=["n"])
    builder.sequence("A", "B")
    builder.loop("B", "A", while_condition="B.n < 3")
    dot = to_dot(builder.build())
    assert "style=dashed" in dot
    assert "while B.n < 3" in dot


def test_dot_compensation_set_note():
    from repro.model import SchemaBuilder

    builder = SchemaBuilder("W", inputs=["x"])
    builder.step("A", inputs=["WF.x"], outputs=["o"])
    builder.step("B", inputs=["A.o"])
    builder.arc("A", "B")
    builder.compensation_set("A", "B")
    dot = to_dot(builder.build())
    assert "compensation set: A, B" in dot


def test_summary_fields():
    summary = schema_summary(parallel_schema())
    assert summary["name"] == "Fanout"
    assert summary["steps"] == 4
    assert summary["start"] == "Start"
    assert summary["terminals"] == ["End"]
    assert summary["parallel_splits"] == ["Start"]
    assert summary["xor_splits"] == []
    assert summary["rules"] >= 4


def test_summary_of_branching_schema():
    summary = schema_summary(branching_schema())
    assert summary["xor_splits"] == ["S2"]
    assert summary["rollback_points"] == {"S4": "S2"}
