"""Tests for the canonical paper scenarios."""

import pytest

from repro.storage.tables import InstanceStatus
from repro.workloads import figure3_workflow, order_processing, travel_booking
from tests.conftest import ALL_ARCHITECTURES, make_system


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_order_processing_fifo_per_part(architecture):
    system = make_system(architecture, seed=21)
    order_processing().install(system)
    i1 = system.start_workflow("OrderProcessing", {"part": "gasket", "qty": 1})
    i2 = system.start_workflow("OrderProcessing", {"part": "gasket", "qty": 2},
                               delay=0.4)
    i3 = system.start_workflow("OrderProcessing", {"part": "blower", "qty": 1},
                               delay=0.1)
    system.run()
    for instance in (i1, i2, i3):
        assert system.outcome(instance).committed
    times = {
        (r.detail["instance"], r.detail["step"]): r.time
        for r in system.trace.filter(kind="step.done")
    }
    assert times[(i1, "Schedule")] < times[(i2, "Schedule")]


def test_order_processing_stock_accounting():
    system = make_system("centralized", seed=22)
    scenario = order_processing({"gasket": 3})
    scenario.install(system)
    i1 = system.start_workflow("OrderProcessing", {"part": "gasket", "qty": 2})
    system.run()
    assert system.outcome(i1).committed
    # A second order exceeding remaining stock fails (Saga abort by default).
    i2 = system.start_workflow("OrderProcessing", {"part": "gasket", "qty": 2})
    system.run()
    assert system.outcome(i2).status is InstanceStatus.ABORTED


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_figure3_branch_flip_with_compensation(architecture):
    system = make_system(architecture, seed=23)
    figure3_workflow().install(system)
    instance = system.start_workflow("Figure3", {"load": 5})
    system.run()
    assert system.outcome(instance).committed
    done = [r.detail["step"] for r in system.trace.filter(kind="step.done")]
    assert "S3" in done  # first pass took the top branch
    assert "S5" in done  # re-execution took the bottom branch
    comp_kind = ("step.compensate" if architecture in ("centralized", "parallel")
                 else "step.compensated")
    compensated = {r.detail["step"] for r in system.trace.filter(kind=comp_kind)}
    assert "S3" in compensated  # abandoned branch undone


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_travel_booking_reuses_bookings_on_invoice_failure(architecture):
    system = make_system(architecture, seed=24)
    travel_booking().install(system)
    instance = system.start_workflow(
        "TravelBooking", {"traveller": "mk", "dates": "jan"}
    )
    system.run()
    outcome = system.outcome(instance)
    assert outcome.committed
    assert outcome.outputs["invoice"] == 1240.0
    reused = {r.detail["step"] for r in system.trace.filter(kind="step.reuse")}
    assert {"BookFlight", "BookHotel"} <= reused
    comp_kind = ("step.compensate" if architecture in ("centralized", "parallel")
                 else "step.compensated")
    assert system.trace.count(comp_kind) == 0  # pure reuse — the OCR saving


def test_travel_booking_abort_compensates_bookings():
    system = make_system("distributed", seed=25)
    travel_booking(invoice_fails_on=frozenset()).install(system)
    instance = system.start_workflow(
        "TravelBooking", {"traveller": "mk", "dates": "jan"}
    )
    system.abort_workflow(instance, delay=1.4)
    system.run()
    assert system.outcome(instance).status is InstanceStatus.ABORTED
