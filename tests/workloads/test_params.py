"""Unit tests for Table 3 parameters."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.params import PAPER_DEFAULTS, TABLE3_RANGES, WorkloadParameters


def test_paper_defaults_reproduce_normalized_values():
    p = PAPER_DEFAULTS
    assert 2 * p.s * p.a == 60  # Table 4 normal messages
    assert p.s * p.a + p.f == 32  # Table 6 normal messages
    assert p.r * p.pf == pytest.approx(0.5)  # Table 4 failure load
    assert (p.r + p.v) * p.pf * p.a == pytest.approx(1.8)  # Table 6 failure msgs
    assert (p.r + p.v) * p.pi * p.a == pytest.approx(0.45)
    assert 2 * p.w * p.pa * p.a == pytest.approx(0.2)
    assert p.coordination_degree == 5
    assert p.coordination_degree * p.a * p.d * p.s == 150
    assert p.s / p.e == pytest.approx(3.75)
    assert p.s / p.z == pytest.approx(0.3)


def test_out_of_range_rejected():
    with pytest.raises(WorkloadError):
        WorkloadParameters(s=100)
    with pytest.raises(WorkloadError):
        WorkloadParameters(pf=0.9)
    with pytest.raises(WorkloadError):
        WorkloadParameters(z=0)


def test_shape_consistency_check():
    with pytest.raises(WorkloadError):
        WorkloadParameters(s=5, r=5, v=4, f=2)


def test_evolve_creates_modified_copy():
    p = PAPER_DEFAULTS.evolve(z=100)
    assert p.z == 100
    assert PAPER_DEFAULTS.z == 50


def test_all_defaults_within_table3_ranges():
    for name, (low, high) in TABLE3_RANGES.items():
        value = getattr(PAPER_DEFAULTS, name)
        assert low <= value <= high


def test_describe_mentions_every_parameter():
    text = PAPER_DEFAULTS.describe()
    for name in TABLE3_RANGES:
        assert f"{name}=" in text
