"""Unit tests for the Table-3-shaped workload generator."""

from repro.model import compile_schema
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.params import WorkloadParameters
from tests.conftest import make_system


def params(**kwargs):
    defaults = dict(c=2, i=2)
    defaults.update(kwargs)
    return WorkloadParameters(**defaults)


def test_schema_has_exactly_s_steps_and_f_terminals():
    p = params()
    workload = WorkloadGenerator(p, seed=1).build()
    for schema in workload.schemas:
        compiled = compile_schema(schema)
        assert len(schema.steps) == p.s
        assert len(compiled.terminal_steps) == p.f


def test_rollback_region_spans_r_steps():
    p = params()
    workload = WorkloadGenerator(p, seed=1).build()
    schema = workload.schemas[0]
    failing = workload.failure_steps[schema.name]
    origin = workload.origins[schema.name]
    assert schema.rollback_origin(failing) == origin
    compiled = compile_schema(schema)
    # Path origin..failing along branch A = r steps.
    on_path = (compiled.graph.descendants_map[origin] | {origin}) & (
        compiled.graph.ancestors_map[failing] | {failing}
    )
    assert len(on_path) == p.r


def test_halted_branch_has_v_steps():
    p = params()
    workload = WorkloadGenerator(p, seed=1).build()
    schema = workload.schemas[0]
    b_steps = [s for s in schema.steps if s.startswith("B")]
    assert len(b_steps) == p.v


def test_abort_compensation_lists_w_steps():
    p = params()
    workload = WorkloadGenerator(p, seed=1).build()
    for schema in workload.schemas:
        assert len(schema.abort_compensation_steps) == p.w


def test_coordination_specs_generated_when_enabled():
    workload = WorkloadGenerator(params(), seed=1, coordination=True).build()
    names = {type(s).__name__ for s in workload.specs}
    assert names == {
        "RelativeOrderSpec", "MutualExclusionSpec", "RollbackDependencySpec"
    }
    assert len(workload.specs) == 3 * len(workload.schemas)


def test_no_specs_without_coordination():
    workload = WorkloadGenerator(params(), seed=1, coordination=False).build()
    assert workload.specs == []


def test_generated_workload_runs_on_every_architecture():
    p = params(pf=0.2)
    for architecture in ("centralized", "parallel", "distributed"):
        generator = WorkloadGenerator(p, seed=3)
        workload = generator.build()
        system = make_system(architecture, seed=3, num_agents=8, agents_per_step=2)
        generator.install(system, workload)
        run = generator.drive(system, workload, instances_per_schema=2)
        system.run()
        finished = [i for i in run.instances if i in system.outcomes]
        assert len(finished) == len(run.instances), architecture


def test_deterministic_generation():
    w1 = WorkloadGenerator(params(), seed=9).build()
    w2 = WorkloadGenerator(params(), seed=9).build()
    assert [s.name for s in w1.schemas] == [s.name for s in w2.schemas]
    policies1 = [type(p).__name__ for p in w1.schemas[0].cr_policies.values()]
    policies2 = [type(p).__name__ for p in w2.schemas[0].cr_policies.values()]
    assert policies1 == policies2


def test_drive_schedules_admin_operations():
    p = params(pi=0.05, pa=0.05, i=4)
    generator = WorkloadGenerator(p, seed=1)
    workload = generator.build()
    system = make_system("centralized", seed=1)
    generator.install(system, workload)
    run = generator.drive(system, workload, instances_per_schema=20)
    # Some instances get input changes or aborts at these probabilities.
    assert run.instances
    assert len(run.input_changed) + len(run.aborted_requests) >= 1
    system.run()
