"""Architectural import-layering contract.

The package stack is layered bottom-up: no package may import from a
layer above it (``engines -> core -> rules/storage -> sim``, with
``errors`` at the bottom and the CLI at the top).  The test walks every
module's AST, so violations are caught even in rarely-executed code
paths.  Imports guarded by ``if TYPE_CHECKING:`` are exempt — they break
cycles for annotations only and vanish at runtime.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: package -> layer rank; a module may only import repro packages of a
#: strictly lower rank (or its own package).
LAYERS = {
    "errors": 0,
    "sim": 1,
    "rules": 1,
    "model": 2,
    "obs": 2,
    "storage": 3,
    "core": 4,
    "engines": 5,
    "workloads": 6,
    "laws": 6,
    "analysis": 7,
    "cli": 8,
    "__main__": 9,
}


def top_package(module_path: Path) -> str:
    """``repro/<pkg>/...`` or ``repro/<pkg>.py`` -> ``<pkg>``."""
    relative = module_path.relative_to(SRC / "repro")
    return relative.parts[0].removesuffix(".py")


def runtime_imports(tree: ast.Module) -> list[tuple[int, str]]:
    """(lineno, dotted-module) pairs for every import that exists at
    runtime — ``if TYPE_CHECKING:`` bodies are pruned before the walk."""

    def is_type_checking(test: ast.expr) -> bool:
        return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )

    found: list[tuple[int, str]] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If) and is_type_checking(child.test):
                for orelse in child.orelse:
                    walk(orelse)
                continue
            if isinstance(child, ast.Import):
                for alias in child.names:
                    found.append((child.lineno, alias.name))
            elif isinstance(child, ast.ImportFrom):
                if child.level == 0 and child.module:
                    found.append((child.lineno, child.module))
            else:
                walk(child)

    walk(tree)
    return found


def collect_violations() -> list[str]:
    violations = []
    for module_path in sorted((SRC / "repro").rglob("*.py")):
        package = top_package(module_path)
        if package == "__init__":  # repro/__init__.py re-exports the API
            continue
        rank = LAYERS[package]
        tree = ast.parse(module_path.read_text(), filename=str(module_path))
        for lineno, imported in runtime_imports(tree):
            parts = imported.split(".")
            if parts[0] != "repro" or len(parts) < 2:
                continue
            target = parts[1]
            if target == package:
                continue
            target_rank = LAYERS.get(target)
            if target_rank is None:
                violations.append(
                    f"{module_path.relative_to(SRC)}:{lineno} imports unknown "
                    f"package repro.{target} — add it to LAYERS"
                )
            elif target_rank >= rank:
                violations.append(
                    f"{module_path.relative_to(SRC)}:{lineno} "
                    f"({package}, layer {rank}) imports repro.{target} "
                    f"(layer {target_rank}): upward or sideways import"
                )
    return violations


def test_every_package_is_ranked():
    packages = {
        top_package(p)
        for p in (SRC / "repro").rglob("*.py")
        if top_package(p) != "__init__"
    }
    assert packages <= set(LAYERS), f"unranked packages: {packages - set(LAYERS)}"


def test_no_upward_imports():
    violations = collect_violations()
    assert not violations, "\n".join(violations)


def test_engines_subpackage_layering():
    """Within repro.engines: the shared runtime layer imports no engine
    module, and the architecture packages never import each other —
    except parallel, which is documented to extend centralized."""
    engines = SRC / "repro" / "engines"
    subpkgs = ("centralized", "parallel", "distributed", "runtime")
    allowed_peer = {("parallel", "centralized")}
    violations = []
    for module_path in sorted(engines.rglob("*.py")):
        relative = module_path.relative_to(engines)
        owner = relative.parts[0].removesuffix(".py")
        tree = ast.parse(module_path.read_text(), filename=str(module_path))
        for lineno, imported in runtime_imports(tree):
            parts = imported.split(".")
            if parts[:2] != ["repro", "engines"] or len(parts) < 3:
                continue
            target = parts[2]
            if target not in subpkgs or target == owner:
                continue
            if owner == "runtime":
                violations.append(
                    f"runtime/{relative.name}:{lineno} imports "
                    f"repro.engines.{target}: the shared layer must stay "
                    f"architecture-free"
                )
            elif owner in subpkgs and (owner, target) not in allowed_peer:
                if target == "runtime":
                    continue  # everyone may use the shared layer
                violations.append(
                    f"{relative}:{lineno} ({owner}) imports "
                    f"repro.engines.{target}: architectures must not couple"
                )
    assert not violations, "\n".join(violations)
