"""Architectural import-layering contract.

The package stack is layered bottom-up: no package may import from a
layer above it (``engines -> core -> rules/storage -> sim -> runtime``,
with ``errors`` at the bottom and the CLI at the top).  The test walks
every module's AST, so violations are caught even in rarely-executed
code paths.  Imports guarded by ``if TYPE_CHECKING:`` are exempt — they
break cycles for annotations only and vanish at runtime.

Two extra contracts guard the pluggable-runtime boundary: engines may
construct against :mod:`repro.runtime` protocols only (no
``repro.sim`` imports anywhere under ``repro/engines/``), and the
runtime layer itself may not statically import any backend (the
``"sim"`` backend is resolved lazily by name in the factory).
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: package -> layer rank; a module may only import repro packages of a
#: strictly lower rank (or its own package).
LAYERS = {
    "errors": 0,
    "runtime": 1,
    "sim": 2,
    "rules": 2,
    "model": 3,
    "obs": 3,
    "storage": 4,
    "core": 5,
    "engines": 6,
    "workloads": 7,
    "laws": 7,
    "analysis": 8,
    "service": 9,
    "cli": 10,
    "__main__": 11,
}


def top_package(module_path: Path) -> str:
    """``repro/<pkg>/...`` or ``repro/<pkg>.py`` -> ``<pkg>``."""
    relative = module_path.relative_to(SRC / "repro")
    return relative.parts[0].removesuffix(".py")


def runtime_imports(tree: ast.Module) -> list[tuple[int, str]]:
    """(lineno, dotted-module) pairs for every import that exists at
    runtime — ``if TYPE_CHECKING:`` bodies are pruned before the walk."""

    def is_type_checking(test: ast.expr) -> bool:
        return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )

    found: list[tuple[int, str]] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If) and is_type_checking(child.test):
                for orelse in child.orelse:
                    walk(orelse)
                continue
            if isinstance(child, ast.Import):
                for alias in child.names:
                    found.append((child.lineno, alias.name))
            elif isinstance(child, ast.ImportFrom):
                if child.level == 0 and child.module:
                    found.append((child.lineno, child.module))
            else:
                walk(child)

    walk(tree)
    return found


def collect_violations() -> list[str]:
    violations = []
    for module_path in sorted((SRC / "repro").rglob("*.py")):
        package = top_package(module_path)
        if package == "__init__":  # repro/__init__.py re-exports the API
            continue
        rank = LAYERS[package]
        tree = ast.parse(module_path.read_text(), filename=str(module_path))
        for lineno, imported in runtime_imports(tree):
            parts = imported.split(".")
            if parts[0] != "repro" or len(parts) < 2:
                continue
            target = parts[1]
            if target == package:
                continue
            target_rank = LAYERS.get(target)
            if target_rank is None:
                violations.append(
                    f"{module_path.relative_to(SRC)}:{lineno} imports unknown "
                    f"package repro.{target} — add it to LAYERS"
                )
            elif target_rank >= rank:
                violations.append(
                    f"{module_path.relative_to(SRC)}:{lineno} "
                    f"({package}, layer {rank}) imports repro.{target} "
                    f"(layer {target_rank}): upward or sideways import"
                )
    return violations


def test_every_package_is_ranked():
    packages = {
        top_package(p)
        for p in (SRC / "repro").rglob("*.py")
        if top_package(p) != "__init__"
    }
    assert packages <= set(LAYERS), f"unranked packages: {packages - set(LAYERS)}"


def test_no_upward_imports():
    violations = collect_violations()
    assert not violations, "\n".join(violations)


def test_engines_never_import_sim():
    """Engines construct against the repro.runtime protocols only: the
    simulated backend is one implementation among several, resolved by
    name through the runtime factory.  No module under repro/engines/
    may import repro.sim (TYPE_CHECKING-only imports included — the
    annotation surface must stay backend-neutral too)."""
    engines = SRC / "repro" / "engines"
    violations = []
    for module_path in sorted(engines.rglob("*.py")):
        tree = ast.parse(module_path.read_text(), filename=str(module_path))
        for node in ast.walk(tree):
            names = []
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [node.module or ""]
            for name in names:
                if name == "repro.sim" or name.startswith("repro.sim."):
                    violations.append(
                        f"{module_path.relative_to(SRC)}:{node.lineno} "
                        f"imports {name}: engines must depend on "
                        f"repro.runtime protocols only"
                    )
    assert not violations, "\n".join(violations)


def test_runtime_layer_has_no_static_backend_imports():
    """repro.runtime must not statically import repro.sim: backends
    register with the factory as lazy ``module:attr`` strings, so the
    protocol layer stays below every implementation."""
    runtime_pkg = SRC / "repro" / "runtime"
    violations = []
    for module_path in sorted(runtime_pkg.rglob("*.py")):
        tree = ast.parse(module_path.read_text(), filename=str(module_path))
        for lineno, imported in runtime_imports(tree):
            if imported == "repro.sim" or imported.startswith("repro.sim."):
                violations.append(
                    f"{module_path.relative_to(SRC)}:{lineno} imports "
                    f"{imported}: the runtime layer must not depend on a "
                    f"backend"
                )
    assert not violations, "\n".join(violations)


def test_engines_subpackage_layering():
    """Within repro.engines: the shared runtime layer imports no engine
    module, and the architecture packages never import each other —
    except parallel, which is documented to extend centralized."""
    engines = SRC / "repro" / "engines"
    subpkgs = ("centralized", "parallel", "distributed", "runtime")
    allowed_peer = {("parallel", "centralized")}
    violations = []
    for module_path in sorted(engines.rglob("*.py")):
        relative = module_path.relative_to(engines)
        owner = relative.parts[0].removesuffix(".py")
        tree = ast.parse(module_path.read_text(), filename=str(module_path))
        for lineno, imported in runtime_imports(tree):
            parts = imported.split(".")
            if parts[:2] != ["repro", "engines"] or len(parts) < 3:
                continue
            target = parts[2]
            if target not in subpkgs or target == owner:
                continue
            if owner == "runtime":
                violations.append(
                    f"runtime/{relative.name}:{lineno} imports "
                    f"repro.engines.{target}: the shared layer must stay "
                    f"architecture-free"
                )
            elif owner in subpkgs and (owner, target) not in allowed_peer:
                if target == "runtime":
                    continue  # everyone may use the shared layer
                violations.append(
                    f"{relative}:{lineno} ({owner}) imports "
                    f"repro.engines.{target}: architectures must not couple"
                )
    assert not violations, "\n".join(violations)
