"""Unit tests for event tokens and the event table."""

import pytest

from repro.errors import RuleError
from repro.rules.events import (
    WF_ABORT,
    WF_DONE,
    WF_START,
    EventTable,
    external_event,
    is_step_done,
    step_compensated,
    step_done,
    step_fail,
    step_of_token,
)


def test_token_helpers():
    assert step_done("S1") == "S1.D"
    assert step_fail("S1") == "S1.F"
    assert step_compensated("S1") == "S1.C"
    assert external_event("RO.spec.1.i1") == "EXT.RO.spec.1.i1"
    assert (WF_START, WF_DONE, WF_ABORT) == ("WF.S", "WF.D", "WF.A")


def test_is_step_done():
    assert is_step_done("S1.D")
    assert not is_step_done("WF.D")
    assert not is_step_done("S1.F")
    assert not is_step_done("EXT.RO.x.D")


def test_step_of_token():
    assert step_of_token("S1.D") == "S1"
    assert step_of_token("EXT.RO.spec.1.i1") == "EXT.RO.spec.1"
    with pytest.raises(RuleError):
        step_of_token("notatoken")


def test_post_and_validity():
    table = EventTable()
    table.post("S1.D", 1.0)
    assert table.is_valid("S1.D")
    assert "S1.D" in table
    assert not table.is_valid("S2.D")


def test_malformed_token_rejected():
    table = EventTable()
    with pytest.raises(RuleError):
        table.post("bogus", 1.0)


def test_invalidate_and_repost():
    table = EventTable()
    table.post("S1.D", 1.0)
    assert table.invalidate(["S1.D", "S2.D"]) == ["S1.D"]
    assert not table.is_valid("S1.D")
    table.post("S1.D", 2.0)
    assert table.is_valid("S1.D")
    assert table.occurrence("S1.D").time == 2.0


def test_invalidate_before_round_respects_rounds():
    table = EventTable()
    table.post("S1.D", 5.0, round=2)
    assert not table.invalidate_before_round("S1.D", 2)  # same round survives
    assert not table.invalidate_before_round("S1.D", 1)
    assert table.is_valid("S1.D")
    assert table.invalidate_before_round("S1.D", 3)
    assert not table.is_valid("S1.D")


def test_merge_keeps_existing_valid_events():
    table = EventTable()
    table.post("S1.D", 1.0)
    added = table.merge({"S1.D": 0.5, "S2.D": 0.7}, time=2.0)
    assert added == ["S2.D"]
    assert table.occurrence("S1.D").time == 1.0  # not overwritten
    assert table.occurrence("S2.D").time == 0.7  # original time preserved


def test_merge_accepts_versioned_pairs_and_rounds_win():
    table = EventTable()
    table.post("S1.D", 1.0, round=0)
    # A carried occurrence from a newer round replaces a valid older one.
    added = table.merge({"S1.D": [3.0, 2]}, time=4.0)
    assert added == []  # already valid, so not "newly valid"
    assert table.occurrence("S1.D").round == 2
    assert table.occurrence("S1.D").time == 3.0
    # ...and an older round never downgrades it back.
    table.merge({"S1.D": [9.0, 1]}, time=5.0)
    assert table.occurrence("S1.D").round == 2


def test_merge_same_round_does_not_revive_invalidated_newer():
    table = EventTable()
    table.post("S1.D", 1.0, round=0)
    table.invalidate(["S1.D"])
    # same-round carried copy revalidates (it is the same occurrence)
    added = table.merge({"S1.D": [1.0, 0]}, time=2.0)
    assert added == ["S1.D"]
    assert table.is_valid("S1.D")
    assert table.invalidate_before_round("S1.D", 1)


def test_merge_revalidates_invalidated_events():
    table = EventTable()
    table.post("S1.D", 1.0)
    table.invalidate(["S1.D"])
    added = table.merge({"S1.D": 3.0}, time=4.0)
    assert added == ["S1.D"]
    assert table.is_valid("S1.D")


def test_export_only_valid():
    table = EventTable()
    table.post("S1.D", 1.0)
    table.post("S2.D", 2.0)
    table.invalidate(["S1.D"])
    assert table.export() == {"S2.D": 2.0}


def test_len_and_iter_count_valid_only():
    table = EventTable()
    table.post("S1.D", 1.0)
    table.post("S2.D", 2.0)
    table.invalidate(["S1.D"])
    assert len(table) == 1
    assert set(table) == {"S2.D"}


def test_merge_is_deterministic_in_time_order():
    table = EventTable()
    table.merge({"B.D": 2.0, "A.D": 1.0}, time=3.0)
    occurrences = [table.occurrence(t) for t in ("A.D", "B.D")]
    assert occurrences[0].seq < occurrences[1].seq  # earlier time first
