"""Unit tests for the ECA rule engine and the three primitives."""

import pytest

from repro.errors import RuleError
from repro.model.builder import SchemaBuilder
from repro.model.compiler import compile_schema
from repro.rules.engine import RuleEngine, RuleInstance
from repro.rules.events import WF_START, step_done


def linear_compiled():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B", inputs=["A.o"], outputs=["o"])
    b.step("C", inputs=["B.o"])
    b.sequence("A", "B", "C")
    return compile_schema(b.build())


def make_engine(compiled=None, env=None, steps=None):
    fired = []
    compiled = compiled or linear_compiled()
    environment = env if env is not None else {}
    engine = RuleEngine(
        compiled,
        action=lambda rule: fired.append(rule),
        env_provider=lambda: environment,
        steps=steps,
    )
    return engine, fired, environment


def test_start_rule_fires_on_workflow_start():
    engine, fired, __ = make_engine()
    engine.post_event(WF_START, 0.0)
    assert [r.step for r in fired] == ["A"]


def test_rule_waits_for_all_required_events():
    compiled = linear_compiled()
    engine, fired, __ = make_engine(compiled)
    engine.post_event(step_done("B"), 1.0)  # C needs B.D only
    assert [r.step for r in fired] == ["C"]


def test_rule_fires_once():
    engine, fired, __ = make_engine()
    engine.post_event(WF_START, 0.0)
    engine.post_event(WF_START, 1.0)
    assert len(fired) == 1


def test_condition_blocks_firing():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B")
    b.step("C")
    b.branch("A", [("B", "A.o > 10")], otherwise="C")
    compiled = compile_schema(b.build())
    env = {"A.o": 5}
    engine, fired, __ = make_engine(compiled, env=env)
    engine.post_event(WF_START, 0.0)
    engine.post_event(step_done("A"), 1.0)
    assert [r.step for r in fired] == ["A", "C"]  # only else branch


def test_unbound_condition_data_keeps_rule_pending():
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"], outputs=["o"])
    b.step("B")
    b.step("C")
    b.branch("A", [("B", "A.o > 10")], otherwise="C")
    compiled = compile_schema(b.build())
    env = {}
    engine, fired, __ = make_engine(compiled, env=env)
    engine.post_event(step_done("A"), 1.0)
    assert fired == []  # A.o unbound: neither branch can be decided
    env["A.o"] = 50
    engine.reevaluate()
    assert [r.step for r in fired] == ["B"]


def test_add_event_primitive():
    engine, fired, __ = make_engine()
    engine.add_event(step_done("A"), 1.0)
    assert [r.step for r in fired] == ["B"]


def test_add_rule_primitive():
    engine, fired, __ = make_engine()
    rule = RuleInstance(
        rule_id="dyn:1", kind="notify", step="B",
        required=frozenset({step_done("B")}),
        payload={"target": "agent-1"},
    )
    engine.add_rule(rule)
    engine.post_event(step_done("B"), 1.0)
    kinds = [(r.kind, r.step) for r in fired]
    assert ("notify", "B") in kinds


def test_duplicate_rule_id_rejected():
    engine, __, __e = make_engine()
    rule = RuleInstance(rule_id="r:B:0", kind="execute", step="B",
                        required=frozenset())
    with pytest.raises(RuleError):
        engine.add_rule(rule)


def test_one_shot_rule_removed_after_firing():
    engine, fired, __ = make_engine()
    rule = RuleInstance(
        rule_id="dyn:1", kind="notify", step="B",
        required=frozenset({step_done("B")}), one_shot=True,
    )
    engine.add_rule(rule)
    engine.post_event(step_done("B"), 1.0)
    with pytest.raises(RuleError):
        engine.rule("dyn:1")


def test_add_precondition_primitive():
    engine, fired, __ = make_engine()
    engine.add_step_precondition("B", "EXT.CLEAR")
    engine.post_event(step_done("A"), 1.0)
    assert fired == []  # waiting for the clearance event
    engine.add_event("EXT.CLEAR", 2.0)
    assert [r.step for r in fired] == ["B"]


def test_add_precondition_to_fired_rule_rejected():
    engine, fired, __ = make_engine()
    engine.post_event(step_done("A"), 1.0)
    rule = engine.rules_for_step("B")[0]
    with pytest.raises(RuleError):
        engine.add_precondition(rule.rule_id, "EXT.X")


def test_add_step_precondition_returns_affected_count():
    engine, __, __e = make_engine()
    assert engine.add_step_precondition("B", "EXT.X") == 1
    engine.add_event("EXT.X", 0.0)
    engine.post_event(step_done("A"), 1.0)
    assert engine.add_step_precondition("B", "EXT.Y") == 0  # already fired


def test_invalidation_resets_dependent_rules():
    engine, fired, __ = make_engine()
    engine.post_event(step_done("A"), 1.0)
    assert [r.step for r in fired] == ["B"]
    engine.invalidate_events([step_done("A")])
    engine.post_event(step_done("A"), 2.0)
    assert [r.step for r in fired] == ["B", "B"]  # re-armed and re-fired


def test_reset_rules_for_steps():
    engine, fired, __ = make_engine()
    engine.post_event(step_done("A"), 1.0)
    engine.reset_rules_for_steps({"B"})
    engine.reevaluate()  # A.D still valid -> B re-fires
    assert [r.step for r in fired] == ["B", "B"]


def test_apply_invalidations_respects_rounds():
    engine, fired, __ = make_engine()
    engine.post_event(step_done("A"), 5.0, round=2)
    hit = engine.apply_invalidations({step_done("A"): 2})
    assert hit == []  # same round: the occurrence is the re-established one
    hit = engine.apply_invalidations({step_done("A"): 3})
    assert hit == [step_done("A")]


def test_merge_events_fires_rules():
    engine, fired, __ = make_engine()
    added = engine.merge_events({WF_START: 0.0, step_done("A"): 1.0}, time=2.0)
    assert set(added) == {WF_START, step_done("A")}
    assert {r.step for r in fired} == {"A", "B"}


def test_hosted_steps_restriction():
    compiled = linear_compiled()
    engine, fired, __ = make_engine(compiled, steps={"B"})
    engine.post_event(WF_START, 0.0)
    engine.post_event(step_done("A"), 1.0)
    engine.post_event(step_done("B"), 2.0)
    assert [r.step for r in fired] == ["B"]  # only the hosted step's rule


def test_pending_rules_listing():
    engine, __, __e = make_engine()
    assert engine.pending_rules() == ()
    engine.events.post(step_done("A"), 1.0)  # bypass pump to inspect
    pending = engine.pending_rules()
    assert any(r.step == "B" for r in pending)


def test_pending_count_matches_pending_rules():
    engine, __, __e = make_engine()
    assert engine.pending_count() == 0
    engine.events.post(step_done("A"), 1.0)  # bypass pump to inspect
    assert engine.pending_count() == len(engine.pending_rules()) > 0


# -- dynamic-rule edge cases against the index ---------------------------------


def test_add_precondition_when_other_events_already_arrived():
    """A precondition added to a rule whose other required events are all
    valid must keep it unfired until the new token arrives too."""
    engine, fired, __ = make_engine()
    rule = RuleInstance(
        rule_id="dyn:1", kind="notify", step="B",
        required=frozenset({step_done("A"), "EXT.GO"}),
    )
    engine.add_rule(rule)
    engine.post_event(step_done("A"), 1.0)  # fires B's execute rule only
    assert [r.rule_id for r in fired if r.rule_id == "dyn:1"] == []
    engine.add_precondition("dyn:1", "EXT.MORE")
    engine.add_event("EXT.GO", 2.0)  # old required now complete — not enough
    assert [r.rule_id for r in fired if r.rule_id == "dyn:1"] == []
    engine.add_event("EXT.MORE", 3.0)
    assert [r.rule_id for r in fired if r.rule_id == "dyn:1"] == ["dyn:1"]


def test_add_precondition_with_already_valid_token_keeps_rule_ready():
    engine, fired, __ = make_engine()
    engine.add_event("EXT.GO", 0.5)
    rule = RuleInstance(
        rule_id="dyn:1", kind="notify", step="B",
        required=frozenset({step_done("A")}),
    )
    engine.add_rule(rule)
    engine.add_precondition("dyn:1", "EXT.GO")  # valid already: still armed
    engine.post_event(step_done("A"), 1.0)
    assert "dyn:1" in [r.rule_id for r in fired]


def test_add_precondition_is_idempotent_for_duplicate_token():
    engine, fired, __ = make_engine()
    rule = RuleInstance(
        rule_id="dyn:1", kind="notify", step="B",
        required=frozenset({"EXT.GO"}),
    )
    engine.add_rule(rule)
    engine.add_precondition("dyn:1", "EXT.GO")  # no-op, not a double count
    engine.add_event("EXT.GO", 1.0)
    assert "dyn:1" in [r.rule_id for r in fired]


def test_remove_rule_of_indexed_rule_stops_it_firing():
    engine, fired, __ = make_engine()
    engine.remove_rule("r:B:0")  # B's execute rule, indexed under A.D
    engine.post_event(step_done("A"), 1.0)
    assert [r.step for r in fired] == []
    # The index slot is gone too: posting the trigger again stays silent.
    engine.post_event(step_done("A"), 2.0)
    assert fired == []


def test_removed_rule_id_can_be_reinstalled():
    engine, fired, __ = make_engine()
    engine.remove_rule("r:B:0")
    engine.add_rule(RuleInstance(
        rule_id="r:B:0", kind="execute", step="B",
        required=frozenset({step_done("A")}),
    ))
    engine.post_event(step_done("A"), 1.0)
    assert [r.step for r in fired] == ["B"]


def test_remove_rule_while_pending_clears_pending_table():
    engine, __, __e = make_engine()
    engine.events.post(step_done("A"), 1.0)  # bypass pump
    assert any(r.rule_id == "r:B:0" for r in engine.pending_rules())
    engine.remove_rule("r:B:0")
    assert all(r.rule_id != "r:B:0" for r in engine.pending_rules())
    engine.reevaluate()  # stale heap entry must be discarded silently


def test_apply_invalidations_rearms_fired_rule_in_index():
    """A fired rule whose trigger is invalidated by a message-carried
    cutoff must re-enter the ready path and fire again on re-post."""
    engine, fired, __ = make_engine()
    engine.post_event(step_done("A"), 1.0, round=0)
    assert [r.step for r in fired] == ["B"]
    hit = engine.apply_invalidations({step_done("A"): 1})
    assert hit == [step_done("A")]
    engine.reevaluate()
    assert [r.step for r in fired] == ["B"]  # nothing re-fires while invalid
    engine.post_event(step_done("A"), 2.0, round=1)
    assert [r.step for r in fired] == ["B", "B"]


def test_one_shot_rule_is_unindexed_after_firing():
    engine, fired, __ = make_engine()
    engine.add_rule(RuleInstance(
        rule_id="dyn:1", kind="notify", step="B",
        required=frozenset({"EXT.GO"}), one_shot=True,
    ))
    engine.add_event("EXT.GO", 1.0)
    assert "dyn:1" in [r.rule_id for r in fired]
    # Invalidate + re-post: the one-shot is gone from the index, no re-fire.
    engine.invalidate_events(["EXT.GO"])
    engine.add_event("EXT.GO", 2.0)
    assert [r.rule_id for r in fired].count("dyn:1") == 1


def test_rule_added_from_action_fires_next_pass():
    """A rule installed by a firing rule's action joins the next pump pass
    (the scan engine's snapshot semantics, preserved by the index)."""
    engine, fired, __ = make_engine()

    original_action = engine._action

    def action(rule):
        original_action(rule)
        if rule.step == "A":
            engine.add_rule(RuleInstance(
                rule_id="dyn:late", kind="notify", step="C",
                required=frozenset({WF_START}),
            ))

    engine._action = action
    engine.post_event(WF_START, 0.0)
    assert [r.rule_id for r in fired][-1] == "dyn:late"


def test_deterministic_fire_order():
    """Rules ready simultaneously fire in rule-id order."""
    b = SchemaBuilder("W", inputs=["x"])
    b.step("A", inputs=["WF.x"])
    b.step("B")
    b.step("C")
    b.parallel("A", ["B", "C"])
    compiled = compile_schema(b.build())
    engine, fired, __ = make_engine(compiled)
    engine.post_event(step_done("A"), 1.0)
    assert [r.step for r in fired] == ["B", "C"]
