"""Unit tests for the safe condition expression language."""

import pytest

from repro.errors import ConditionError
from repro.rules.conditions import TRUE, Condition


def test_simple_comparison():
    assert Condition("S2.O1 > 10").evaluate({"S2.O1": 20})
    assert not Condition("S2.O1 > 10").evaluate({"S2.O1": 5})


def test_dotted_names_resolve_as_single_keys():
    cond = Condition("WF.I2 == 'Blower'")
    assert cond.evaluate({"WF.I2": "Blower"})
    assert cond.refs == frozenset({"WF.I2"})


def test_boolean_combinators():
    cond = Condition("S1.a > 1 and (S1.b < 5 or not S1.c)")
    assert cond.evaluate({"S1.a": 2, "S1.b": 10, "S1.c": False})
    assert not cond.evaluate({"S1.a": 0, "S1.b": 1, "S1.c": False})


def test_arithmetic():
    assert Condition("S1.a * 2 + 1 == 7").evaluate({"S1.a": 3})
    assert Condition("S1.a % 2 == 0").evaluate({"S1.a": 4})
    assert Condition("-S1.a == -3").evaluate({"S1.a": 3})


def test_chained_comparison():
    cond = Condition("0 < S1.a < 10")
    assert cond.evaluate({"S1.a": 5})
    assert not cond.evaluate({"S1.a": 15})


def test_membership():
    cond = Condition("WF.part in ('gasket', 'blower')")
    assert cond.evaluate({"WF.part": "gasket"})
    assert not cond.evaluate({"WF.part": "pump"})


def test_defined_guard():
    cond = Condition("defined(S1.o) and S1.o > 1")
    assert not cond.evaluate({})
    assert cond.evaluate({"S1.o": 5})


def test_defined_not_counted_as_ref():
    cond = Condition("defined(S1.o)")
    assert cond.refs == frozenset()


def test_unbound_name_raises():
    with pytest.raises(ConditionError):
        Condition("S1.o > 1").evaluate({})


def test_allowed_builtin_calls():
    assert Condition("abs(S1.a) == 3").evaluate({"S1.a": -3})
    assert Condition("max(S1.a, 10) == 10").evaluate({"S1.a": 4})
    assert Condition("len(S1.name) == 3").evaluate({"S1.name": "abc"})
    assert Condition("round(S1.a) == 3").evaluate({"S1.a": 3.2})


def test_forbidden_calls_rejected_at_parse():
    for text in ("__import__('os')", "open('/etc/passwd')", "eval('1')",
                 "S1.method()", "(lambda: 1)()"):
        with pytest.raises(ConditionError):
            Condition(text)


def test_forbidden_syntax_rejected():
    for text in ("[x for x in y]", "x if y else z", "{1: 2}", "x := 1",
                 "f'{x}'"):
        with pytest.raises(ConditionError):
            Condition(text)


def test_syntax_error_rejected():
    with pytest.raises(ConditionError):
        Condition("S1.o >")


def test_empty_condition_rejected():
    with pytest.raises(ConditionError):
        Condition("   ")


def test_division_by_zero_reported_as_condition_error():
    with pytest.raises(ConditionError):
        Condition("1 / S1.a > 0").evaluate({"S1.a": 0})


def test_type_error_reported_as_condition_error():
    with pytest.raises(ConditionError):
        Condition("S1.a > 'x'").evaluate({"S1.a": 1})


def test_true_constant():
    assert TRUE.evaluate({})
    assert Condition("True").evaluate({})
    assert not Condition("False").evaluate({})


def test_equality_and_hash_by_text():
    assert Condition("S1.a > 1") == Condition("S1.a > 1")
    assert hash(Condition("S1.a > 1")) == hash(Condition("S1.a > 1"))
    assert Condition("S1.a > 1") != Condition("S1.a > 2")


def test_tuple_and_list_literals():
    assert Condition("S1.a in [1, 2, 3]").evaluate({"S1.a": 2})


def test_defined_requires_single_name_argument():
    with pytest.raises(ConditionError):
        Condition("defined('S1.o')")
    with pytest.raises(ConditionError):
        Condition("defined(S1.o, S2.o)")
