"""Property test: the indexed engine fires exactly like the naive one.

The indexed :class:`RuleEngine` replaced the scan-based firing loop with a
token→rule index, unmet-event counters and a ready-heap.  Its contract is
that *no observable differs*: for any schema and any order of event posts,
merges, invalidations, resets and dynamic rule edits, the sequence of
fired rules is identical to :class:`NaiveRuleEngine` (the retained
original implementation), and so are the pending-rule table and the event
table afterwards.

Random rule actions post the fired step's ``done`` event, so cascaded
firing inside one pump (the hard part of order preservation) is exercised
constantly.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import RuleError
from repro.rules.engine import RuleEngine, RuleInstance
from repro.rules.events import step_done
from repro.rules.reference import NaiveRuleEngine

STEPS = [f"S{i}" for i in range(1, 7)]
TOKENS = ["WF.S", "EXT.GO", "EXT.E1"] + [step_done(s) for s in STEPS]


class FakeCompiled:
    """Minimal CompiledSchema stand-in: no templates, no conditions."""

    rule_templates = ()

    @staticmethod
    def condition_for(rule_id):
        return None


def make_pair():
    """Indexed and naive engines wired to identical cascading actions."""
    logs = ([], [])
    engines = []
    for log in logs:
        holder = {}

        def action(rule, log=log, holder=holder):
            log.append(rule.rule_id)
            # Enactment-style cascade: firing a step completes it.
            holder["engine"].post_event(step_done(rule.step), 1.0)

        engine_cls = RuleEngine if log is logs[0] else NaiveRuleEngine
        engine = engine_cls(FakeCompiled(), action, lambda: {})
        holder["engine"] = engine
        engines.append(engine)
    return engines[0], engines[1], logs[0], logs[1]


# One rule definition: (step index, required-token index set, one_shot)
rule_defs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(STEPS) - 1),
        st.sets(st.integers(min_value=0, max_value=len(TOKENS) - 1), max_size=3),
        st.booleans(),
    ),
    min_size=1,
    max_size=8,
)

# One operation against both engines.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("post"),
                  st.integers(min_value=0, max_value=len(TOKENS) - 1)),
        st.tuples(st.just("invalidate"),
                  st.integers(min_value=0, max_value=len(TOKENS) - 1)),
        st.tuples(st.just("merge"),
                  st.sets(st.integers(min_value=0, max_value=len(TOKENS) - 1),
                          max_size=4)),
        st.tuples(st.just("apply_inval"),
                  st.integers(min_value=0, max_value=len(TOKENS) - 1),
                  st.integers(min_value=1, max_value=3)),
        st.tuples(st.just("reset_steps"),
                  st.sets(st.integers(min_value=0, max_value=len(STEPS) - 1),
                          max_size=2)),
        st.tuples(st.just("precondition"),
                  st.integers(min_value=0, max_value=7),
                  st.integers(min_value=0, max_value=len(TOKENS) - 1)),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=7)),
        st.tuples(st.just("reevaluate")),
    ),
    max_size=20,
)


def apply_op(engine, op, clock):
    if op[0] == "post":
        engine.post_event(TOKENS[op[1]], clock)
    elif op[0] == "invalidate":
        engine.invalidate_events([TOKENS[op[1]]])
        engine.reevaluate()
    elif op[0] == "merge":
        engine.merge_events({TOKENS[i]: clock for i in sorted(op[1])}, clock)
    elif op[0] == "apply_inval":
        engine.apply_invalidations({TOKENS[op[1]]: op[2]})
        engine.reevaluate()
    elif op[0] == "reset_steps":
        engine.reset_rules_for_steps({STEPS[i] for i in op[1]})
        engine.reevaluate()
    elif op[0] == "precondition":
        try:
            engine.add_precondition(f"r{op[1]:02d}", TOKENS[op[2]])
        except RuleError as exc:
            return f"RuleError:{exc}"
        engine.reevaluate()
    elif op[0] == "remove":
        engine.remove_rule(f"r{op[1]:02d}")
    elif op[0] == "reevaluate":
        engine.reevaluate()
    return None


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(defs=rule_defs, ops=operations)
def test_indexed_engine_equals_naive_reference(defs, ops):
    indexed, naive, log_indexed, log_naive = make_pair()
    for number, (step_index, token_indexes, one_shot) in enumerate(defs):
        for engine in (indexed, naive):
            engine.add_rule(RuleInstance(
                rule_id=f"r{number:02d}",
                kind="execute",
                step=STEPS[step_index],
                required=frozenset(TOKENS[i] for i in sorted(token_indexes)),
                one_shot=one_shot,
            ))
    assert log_indexed == log_naive  # add_rule pumps immediately

    clock = 1.0
    for op in ops:
        clock += 1.0
        outcome_indexed = apply_op(indexed, op, clock)
        outcome_naive = apply_op(naive, op, clock)
        assert outcome_indexed == outcome_naive
        assert log_indexed == log_naive, (op, log_indexed, log_naive)

    # Same fired sequence, same pending table, same event table.
    assert log_indexed == log_naive
    assert ({r.rule_id for r in indexed.pending_rules()}
            == {r.rule_id for r in naive.pending_rules()})
    assert indexed.pending_count() == len(naive.pending_rules())
    assert indexed.events.valid_tokens() == naive.events.valid_tokens()
    assert ({r.rule_id: r.fired for r in indexed.all_rules()}
            == {r.rule_id: r.fired for r in naive.all_rules()})
