"""The HTTP front door, exercised over real sockets."""

import asyncio
import json

from repro.service import WorkflowService, start_server

MINI_SCHEMA = {
    "name": "Mini",
    "inputs": ["x"],
    "steps": [
        {"name": "A", "outputs": ["y"], "cost": 1},
        {"name": "B", "inputs": ["A.y"], "outputs": ["z"]},
    ],
    "arcs": [{"src": "A", "dst": "B"}],
    "outputs": {"z": "B.z"},
}


async def request(port, method, path, body=None):
    """One minimal HTTP exchange; returns (status, parsed JSON body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode()
    writer.write(head + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header_blob, __, body_blob = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    if b"application/x-ndjson" in header_blob:
        parsed = [json.loads(line) for line in body_blob.splitlines()]
    else:
        parsed = json.loads(body_blob)
    return status, parsed


async def booted(port):
    service = WorkflowService()
    server = await start_server(service, "127.0.0.1", port)
    return service, server


async def shutdown(service, server):
    server.close()
    await server.wait_closed()
    await service.close()


def test_healthz_and_version():
    async def main():
        service, server = await booted(8460)
        try:
            status, body = await request(8460, "GET", "/healthz")
            assert status == 200 and body["ok"] is True
            status, body = await request(8460, "GET", "/version")
            from repro import __version__

            assert status == 200 and body["version"] == __version__
        finally:
            await shutdown(service, server)

    asyncio.run(main())


def test_submit_poll_and_stream():
    async def main():
        service, server = await booted(8461)
        try:
            status, body = await request(
                8461, "POST", "/workflows",
                {"schema": MINI_SCHEMA, "inputs": {"x": 1}},
            )
            assert status == 200
            [iid] = body["instances"]
            # the NDJSON stream blocks until the instance finishes
            status, events = await asyncio.wait_for(
                request(8461, "GET", f"/instances/{iid}/events"), timeout=10.0
            )
            assert status == 200
            assert events[-1]["kind"] == "instance.finished"
            assert events[-1]["status"] == "committed"
            status, record = await request(8461, "GET", f"/instances/{iid}")
            assert status == 200 and record["status"] == "committed"
        finally:
            await shutdown(service, server)

    asyncio.run(main())


def test_error_responses():
    async def main():
        service, server = await booted(8462)
        try:
            status, body = await request(8462, "GET", "/nope")
            assert status == 404
            status, body = await request(8462, "POST", "/healthz")
            assert status == 405
            status, body = await request(8462, "POST", "/workflows")
            assert status == 400
            status, body = await request(
                8462, "POST", "/workflows", {"workflow": "Ghost"}
            )
            assert status == 400 and "Ghost" in body["error"]["message"]
            assert body["error"]["code"] == "bad-request"
            status, body = await request(8462, "GET", "/instances/nope-1")
            assert status == 404
        finally:
            await shutdown(service, server)

    asyncio.run(main())
