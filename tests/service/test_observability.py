"""The daemon's observability plane: scrape, streams, readiness, logs."""

import asyncio
import io
import json

import pytest

from repro.errors import WorkloadError
from repro.obs.logging import StructuredLogger
from repro.service import WorkflowService, start_server

MINI_SCHEMA = {
    "name": "Mini",
    "inputs": ["x"],
    "steps": [
        {"name": "A", "outputs": ["y"], "cost": 1},
        {"name": "B", "inputs": ["A.y"], "outputs": ["z"]},
    ],
    "arcs": [{"src": "A", "dst": "B"}],
    "outputs": {"z": "B.z"},
}

#: One expensive step: ~2s of wall-clock service time at the default
#: work_time_scale, long enough to disconnect from mid-run.
SLOW_SCHEMA = {
    "name": "Slow",
    "inputs": ["x"],
    "steps": [{"name": "Grind", "outputs": ["y"], "cost": 200}],
    "outputs": {"y": "Grind.y"},
}


async def raw_request(port, method, path, body=None):
    """One HTTP exchange; returns (status, content_type, body_bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode()
    writer.write(head + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header_blob, __, body_blob = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    content_type = ""
    for line in header_blob.decode("latin-1").split("\r\n")[1:]:
        name, sep, value = line.partition(":")
        if sep and name.strip().lower() == "content-type":
            content_type = value.strip()
    return status, content_type, body_blob


async def booted(port, **service_kwargs):
    service = WorkflowService(**service_kwargs)
    server = await start_server(service, "127.0.0.1", port)
    return service, server


async def shutdown(service, server):
    server.close()
    await server.wait_closed()
    await service.close()


async def wait_outcome(service, instance_id, timeout=10.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if instance_id in service.system.outcomes:
            return service.system.outcomes[instance_id]
        await asyncio.sleep(0.02)
    raise AssertionError(f"{instance_id} did not finish within {timeout}s")


# -- scrape surfaces -------------------------------------------------------


def test_metrics_scrape_after_commit():
    async def main():
        service, server = await booted(8470)
        try:
            result = service.submit(schema=MINI_SCHEMA, inputs={"x": 1})
            [iid] = result["instances"]
            await wait_outcome(service, iid)
            # the watcher records latency on its next sweep
            for __ in range(100):
                if iid not in service._latency_pending:
                    break
                await asyncio.sleep(0.05)
            status, ctype, body = await raw_request(8470, "GET", "/metrics")
            text = body.decode()
            assert status == 200
            assert ctype.startswith("text/plain")
            assert ('crew_instances_finished_total{architecture='
                    '"centralized",status="COMMITTED"} 1') in text
            assert "crew_service_instance_latency_seconds_bucket" in text
            assert ('crew_service_instance_latency_seconds_count'
                    '{architecture="centralized",status="committed"} 1') in text
            assert "crew_realtime_pending_timers" in text
            assert "crew_executor_submitted_total" in text
            assert "crew_service_uptime_seconds" in text
        finally:
            await shutdown(service, server)

    asyncio.run(main())


def test_metrics_scrape_is_idempotent():
    """Two scrapes with no traffic in between expose identical counters
    (scrape-time syncing must assign, not increment)."""

    async def main():
        service, server = await booted(8471)
        try:
            [iid] = service.submit(
                schema=MINI_SCHEMA, inputs={"x": 1})["instances"]
            await wait_outcome(service, iid)
            await service.runtime.join(timeout=5.0)
            __, __, first = await raw_request(8471, "GET", "/metrics")
            __, __, second = await raw_request(8471, "GET", "/metrics")

            def counters(blob):
                return sorted(
                    line for line in blob.decode().splitlines()
                    if line.startswith(("crew_executor_", "crew_profile_",
                                        "crew_trace_dropped_"))
                )

            assert counters(first) == counters(second)
        finally:
            await shutdown(service, server)

    asyncio.run(main())


def test_debug_trace_is_analyzable_jsonl():
    from repro.analysis.causal import CausalTrace

    async def main():
        service, server = await booted(8472)
        try:
            [iid] = service.submit(
                schema=MINI_SCHEMA, inputs={"x": 1})["instances"]
            await wait_outcome(service, iid)
            status, ctype, body = await raw_request(8472, "GET", "/debug/trace")
            assert status == 200
            assert ctype == "application/x-ndjson"
            rows = [json.loads(line) for line in body.decode().splitlines()]
            assert any(r.get("type") == "span" for r in rows)
            return body.decode()
        finally:
            await shutdown(service, server)

    text = asyncio.run(main())
    causal = CausalTrace.from_jsonl(text)
    assert "Mini-1" in causal.instances()


def test_debug_profile_returns_collapsed_stacks():
    async def main():
        service, server = await booted(8473)
        try:
            [iid] = service.submit(
                schema=MINI_SCHEMA, inputs={"x": 1})["instances"]
            await wait_outcome(service, iid)
            status, ctype, body = await raw_request(
                8473, "GET", "/debug/profile")
            assert status == 200
            assert ctype.startswith("text/plain")
            lines = body.decode().strip().splitlines()
            assert lines
            for line in lines:
                frames, count = line.rsplit(" ", 1)
                assert frames and int(count) >= 1
        finally:
            await shutdown(service, server)

    asyncio.run(main())


def test_observability_off_returns_503_with_hint():
    async def main():
        service, server = await booted(8474, observability=False)
        try:
            assert service.profiler is None
            for path in ("/metrics", "/debug/trace", "/debug/profile"):
                status, __, body = await raw_request(8474, "GET", path)
                assert status == 503, path
                assert "--no-observability" in json.loads(body)["error"]["message"]
            # liveness and submissions still work without observability
            status, __, body = await raw_request(8474, "GET", "/healthz")
            assert status == 200
            assert json.loads(body)["observability"] is False
            [iid] = service.submit(
                schema=MINI_SCHEMA, inputs={"x": 1})["instances"]
            outcome = await wait_outcome(service, iid)
            assert outcome.committed
        finally:
            await shutdown(service, server)

    asyncio.run(main())


def test_metrics_text_raises_without_observability():
    service = WorkflowService(observability=False)
    for method in (service.metrics_text, service.trace_jsonl,
                   service.profile_collapsed):
        with pytest.raises(WorkloadError):
            method()


# -- liveness / readiness --------------------------------------------------


def test_readiness_lifecycle():
    service = WorkflowService()
    assert service.readiness() == (False, "starting")

    async def main():
        server = await start_server(service, "127.0.0.1", 8475)
        try:
            assert service.readiness() == (True, "ok")
            status, __, body = await raw_request(8475, "GET", "/readyz")
            assert status == 200
            assert json.loads(body) == {"ready": True, "reason": "ok"}
            service.begin_drain()
            status, __, body = await raw_request(8475, "GET", "/readyz")
            assert status == 503
            assert json.loads(body) == {"ready": False, "reason": "draining"}
            # liveness is unaffected by drain
            status, __, __body = await raw_request(8475, "GET", "/healthz")
            assert status == 200
        finally:
            server.close()
            await server.wait_closed()
            await service.close()

    asyncio.run(main())
    assert service.readiness() == (False, "draining")


# -- event streams ---------------------------------------------------------


def test_stream_disconnect_cleans_up_subscriber_queue():
    """A client hanging up mid-stream must not leak its queue."""

    async def main():
        service, server = await booted(8476)
        try:
            [iid] = service.submit(
                schema=SLOW_SCHEMA, inputs={"x": 1})["instances"]
            reader, writer = await asyncio.open_connection("127.0.0.1", 8476)
            writer.write(
                f"GET /instances/{iid}/events HTTP/1.1\r\n"
                f"Host: localhost\r\nContent-Length: 0\r\n\r\n".encode()
            )
            await writer.drain()
            await reader.readuntil(b"\r\n\r\n")  # response head: streaming
            for __ in range(100):
                if service._subscribers.get(iid):
                    break
                await asyncio.sleep(0.02)
            assert len(service._subscribers[iid]) == 1
            writer.close()  # client disconnects while the instance runs
            await writer.wait_closed()
            for __ in range(100):
                if iid not in service._subscribers:
                    break
                await asyncio.sleep(0.02)
            assert iid not in service._subscribers
            assert iid not in service.system.outcomes  # still running
        finally:
            await shutdown(service, server)

    asyncio.run(main())


def test_firehose_stream_sees_all_instances_and_cleans_up():
    async def main():
        service, server = await booted(8477)
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", 8477)
            writer.write(b"GET /events HTTP/1.1\r\n"
                         b"Host: localhost\r\nContent-Length: 0\r\n\r\n")
            await writer.drain()
            await reader.readuntil(b"\r\n\r\n")
            for __ in range(100):
                if service._event_taps:
                    break
                await asyncio.sleep(0.02)
            result = service.submit(schema=MINI_SCHEMA, inputs={"x": 1},
                                    instances=2)
            seen = set()
            while len(seen) < 2:
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                seen.add(json.loads(line)["instance"])
            assert seen == set(result["instances"])
            writer.close()
            await writer.wait_closed()
            for __ in range(100):
                if not service._event_taps:
                    break
                await asyncio.sleep(0.02)
            assert service._event_taps == []
        finally:
            await shutdown(service, server)

    asyncio.run(main())


def test_unsubscribe_removes_queue_and_empty_entry():
    service = WorkflowService()
    service._submit_times["I-1"] = 0.0
    first = service.subscribe("I-1")
    second = service.subscribe("I-1")
    service.unsubscribe("I-1", first)
    assert service._subscribers["I-1"] == [second]
    service.unsubscribe("I-1", first)  # unknown queue: ignored
    service.unsubscribe("I-1", second)
    assert "I-1" not in service._subscribers
    service.unsubscribe("I-1", second)  # unknown instance: ignored


# -- structured logging & flight recorder ----------------------------------


def test_lifecycle_events_are_logged_with_correlation():
    stream = io.StringIO()
    logger = StructuredLogger(stream=stream, clock=lambda: 1.0)

    async def main():
        service, server = await booted(8478, logger=logger)
        try:
            [iid] = service.submit(
                schema=MINI_SCHEMA, inputs={"x": 1})["instances"]
            await wait_outcome(service, iid)
            for __ in range(100):
                if iid not in service._latency_pending:
                    break
                await asyncio.sleep(0.05)
        finally:
            await shutdown(service, server)

    asyncio.run(main())
    records = [json.loads(line) for line in stream.getvalue().splitlines()]
    events = [r["event"] for r in records]
    assert "service.ready" in events
    assert "instance.submitted" in events
    assert "instance.finished" in events
    assert "service.draining" in events
    assert "service.closed" in events
    finished = next(r for r in records if r["event"] == "instance.finished")
    assert finished["instance"] == "Mini-1"
    assert finished["status"] == "committed"
    assert finished["latency"] > 0
    assert all(r["architecture"] == "centralized" for r in records)


def test_trace_drops_are_reported_at_close():
    stream = io.StringIO()
    logger = StructuredLogger(stream=stream, clock=lambda: 1.0)

    async def main():
        # A 4-record ring overflows on any real run (~10 flat records).
        service, server = await booted(8479, trace_capacity=4, logger=logger)
        try:
            [iid] = service.submit(
                schema=MINI_SCHEMA, inputs={"x": 1})["instances"]
            await wait_outcome(service, iid)
            assert service.system.trace.dropped > 0
        finally:
            await shutdown(service, server)
        return service.system.trace.dropped

    dropped = asyncio.run(main())
    records = [json.loads(line) for line in stream.getvalue().splitlines()]
    warning = next(r for r in records if r["event"] == "trace.dropped")
    assert warning["level"] == "warning"
    assert warning["dropped"] == dropped
    assert warning["policy"] == "oldest"


def test_executor_give_up_snapshots_flight_recorder():
    service = WorkflowService()
    network = service.system.network
    node = network.node(sorted(network.node_names())[0])
    before = len(service.system.trace.records)
    service._on_executor_give_up(
        node.receive, "Node.receive", ValueError("boom"), attempts=3
    )
    snapshots = [
        rec for rec in list(service.system.trace.records)[before:]
        if rec.kind == "flight.snapshot"
    ]
    [snap] = snapshots
    assert snap.node == node.name
    assert snap.detail["reason"] == "task.failure"
    assert snap.detail["error"] == "ValueError('boom')"
    assert snap.detail["attempts"] == 3


def test_executor_retry_hook_logs_warning():
    stream = io.StringIO()
    logger = StructuredLogger(stream=stream, clock=lambda: 1.0)
    service = WorkflowService(logger=logger)
    network = service.system.network
    node = network.node(sorted(network.node_names())[0])
    service._on_executor_retry(
        node.receive, "Node.receive", ValueError("flaky"), 1, 0.125
    )
    [rec] = [json.loads(line) for line in stream.getvalue().splitlines()]
    assert rec["event"] == "executor.retry"
    assert rec["level"] == "warning"
    assert rec["node"] == node.name
    assert rec["attempt"] == 1
    assert rec["backoff"] == 0.125


# -- instance listing ------------------------------------------------------


def test_instances_listing_over_http():
    async def main():
        service, server = await booted(8480)
        try:
            result = service.submit(schema=MINI_SCHEMA, inputs={"x": 1},
                                    instances=2)
            for iid in result["instances"]:
                await wait_outcome(service, iid)
            status, __, body = await raw_request(8480, "GET", "/instances")
            assert status == 200
            rows = json.loads(body)["instances"]
            assert [r["instance"] for r in rows] == result["instances"]
            assert all(r["status"] == "committed" for r in rows)
            assert all(r["age"] >= 0 for r in rows)
        finally:
            await shutdown(service, server)

    asyncio.run(main())
