"""WorkflowService: submission, status, event streaming (no HTTP)."""

import asyncio

import pytest

from repro.errors import FrontEndError, SchemaError
from repro.service import WorkflowService, schema_from_dict

MINI_SCHEMA = {
    "name": "Mini",
    "inputs": ["x"],
    "steps": [
        {"name": "A", "outputs": ["y"], "cost": 1},
        {"name": "B", "inputs": ["A.y"], "outputs": ["z"]},
    ],
    "arcs": [{"src": "A", "dst": "B"}],
    "outputs": {"z": "B.z"},
}

LAWS_TEXT = """
workflow Pair {
  step First  program p.first  writes a cost 1;
  step Second program p.second reads First.a writes b cost 1;
  arc First -> Second;
  output result = Second.b;
}
"""


async def wait_outcome(service, instance_id, timeout=5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        record = service.instance(instance_id)
        if record["status"] != "running":
            return record
        await asyncio.sleep(0.02)
    raise AssertionError(f"instance {instance_id} did not finish")


def test_schema_from_dict_builds_valid_schema():
    schema = schema_from_dict(MINI_SCHEMA)
    assert schema.name == "Mini"
    assert set(schema.steps) == {"A", "B"}


def test_schema_from_dict_rejects_malformed_documents():
    with pytest.raises(SchemaError):
        schema_from_dict({"steps": [{"name": "A"}]})  # no name
    with pytest.raises(SchemaError):
        schema_from_dict({"name": "X"})  # no steps
    with pytest.raises(SchemaError):
        schema_from_dict({"name": "X", "steps": []})
    with pytest.raises(SchemaError):
        schema_from_dict({"name": "X", "steps": [{"program": "p"}]})


def test_submit_schema_json_and_finish():
    async def main():
        service = WorkflowService()
        service.start()
        try:
            result = service.submit(schema=MINI_SCHEMA, inputs={"x": 1})
            [iid] = result["instances"]
            record = await wait_outcome(service, iid)
            assert record["status"] == "committed"
            assert record["outputs"] == {"z": "B.z@1"}
        finally:
            await service.close()

    asyncio.run(main())


def test_submit_laws_and_finish():
    async def main():
        service = WorkflowService()
        service.start()
        try:
            result = service.submit(laws=LAWS_TEXT)
            assert result["workflow"] == "Pair"
            record = await wait_outcome(service, result["instances"][0])
            assert record["status"] == "committed"
        finally:
            await service.close()

    asyncio.run(main())


def test_resubmission_reuses_installed_document():
    async def main():
        service = WorkflowService()
        service.start()
        try:
            first = service.submit(schema=MINI_SCHEMA, inputs={"x": 1})
            second = service.submit(schema=MINI_SCHEMA, inputs={"x": 2})
            assert first["instances"] != second["instances"]
            # and by-name submission works once installed
            third = service.submit(workflow="Mini", inputs={"x": 3})
            for result in (first, second, third):
                record = await wait_outcome(service, result["instances"][0])
                assert record["status"] == "committed"
        finally:
            await service.close()

    asyncio.run(main())


def test_submission_errors():
    async def main():
        service = WorkflowService()
        service.start()
        try:
            with pytest.raises(FrontEndError):
                service.submit()  # nothing named
            with pytest.raises(FrontEndError):
                service.submit(workflow="Ghost")
            with pytest.raises(FrontEndError):
                service.submit(laws=LAWS_TEXT, schema=MINI_SCHEMA)
            with pytest.raises(FrontEndError):
                service.submit(schema=MINI_SCHEMA, instances=0)
            with pytest.raises(FrontEndError):
                service.instance("nope-1")
            with pytest.raises(FrontEndError):
                service.subscribe("nope-1")
        finally:
            await service.close()

    asyncio.run(main())


def test_event_stream_ends_with_final_status():
    async def main():
        service = WorkflowService()
        service.start()
        try:
            [iid] = service.submit(
                schema=MINI_SCHEMA, inputs={"x": 1}
            )["instances"]
            queue = service.subscribe(iid)
            events = []
            while True:
                event = await asyncio.wait_for(queue.get(), timeout=5.0)
                if event is None:
                    break
                events.append(event)
            assert events, "expected at least the final event"
            assert events[-1]["kind"] == "instance.finished"
            assert events[-1]["status"] == "committed"
            # late subscription sees the final status immediately
            late = service.subscribe(iid)
            assert (await late.get())["kind"] == "instance.finished"
            assert await late.get() is None
        finally:
            await service.close()

    asyncio.run(main())


def test_status_counters():
    async def main():
        service = WorkflowService(architecture="distributed", num_agents=4)
        service.start()
        try:
            before = service.status()
            assert before["ok"] and before["architecture"] == "distributed"
            [iid] = service.submit(
                schema=MINI_SCHEMA, inputs={"x": 1}
            )["instances"]
            await wait_outcome(service, iid)
            after = service.status()
            assert after["instances_submitted"] == 1
            assert after["instances_finished"] == 1
            assert after["workflows"] == ["Mini"]
            assert after["messages_sent"] > 0
        finally:
            await service.close()

    asyncio.run(main())
