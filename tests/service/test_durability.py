"""Crash durability: the service WAL and the recovery boot path.

The kill -9 acceptance itself lives in ``scripts/serve_chaos.py`` (real
subprocesses, real SIGKILL); these tests cover the same machinery
in-process — log round-trips, torn tails, mid-log corruption, document
re-install, in-flight re-drive with alias resolution, and the
at-most-once outcome guarantee.
"""

import asyncio
import json

import pytest

from repro.errors import StorageError
from repro.service import WorkflowService
from repro.service.durability import ServiceLog, ServiceState

MINI_SCHEMA = {
    "name": "Mini",
    "inputs": ["x"],
    "steps": [
        {"name": "A", "outputs": ["y"], "cost": 1},
        {"name": "B", "inputs": ["A.y"], "outputs": ["z"]},
    ],
    "arcs": [{"src": "A", "dst": "B"}],
    "outputs": {"z": "B.z"},
}


async def wait_for(predicate, timeout=10.0, what="condition"):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        result = predicate()
        if result:
            return result
        await asyncio.sleep(0.02)
    raise AssertionError(f"{what} did not happen within {timeout}s")


# ---------------------------------------------------------------- ServiceLog


def test_service_log_roundtrip(tmp_path):
    log = ServiceLog(tmp_path)
    log.append("document", {"schema": {"name": "Mini"}})
    log.append("submit", {"instance": "Mini-1", "workflow": "Mini",
                          "inputs": {"x": 1}, "deadline": None})
    assert log.flush() == 2
    log.append("outcome", {"instance": "Mini-1", "status": "committed"})
    log.close()  # close flushes the tail

    reopened = ServiceLog(tmp_path)
    assert not reopened.torn_tail
    assert [r.kind for r in reopened.records()] == [
        "document", "submit", "outcome"
    ]
    assert reopened.last_lsn() == 3
    for record in reopened.records():
        assert record.verify()
    reopened.close()


def test_service_log_truncates_torn_tail(tmp_path):
    log = ServiceLog(tmp_path)
    log.append("submit", {"instance": "Mini-1"})
    log.append("submit", {"instance": "Mini-2"})
    log.close()
    # kill -9 mid-write: the final record is half a line of bytes.
    with open(log.path, "ab") as fh:
        fh.write(b'{"lsn": 3, "kind": "outcome", "payl')

    reopened = ServiceLog(tmp_path)
    assert reopened.torn_tail
    assert [r.payload["instance"] for r in reopened.records()] == [
        "Mini-1", "Mini-2"
    ]
    # The torn bytes are gone from disk; appending continues cleanly.
    reopened.append("outcome", {"instance": "Mini-1"})
    reopened.close()
    third = ServiceLog(tmp_path)
    assert not third.torn_tail
    assert third.last_lsn() == 3
    third.close()


def test_service_log_rejects_mid_log_corruption(tmp_path):
    log = ServiceLog(tmp_path)
    for index in range(3):
        log.append("submit", {"instance": f"Mini-{index + 1}"})
    log.close()
    lines = log.path.read_bytes().splitlines(keepends=True)
    lines[1] = b'{"corrupted": true}\n'
    log.path.write_bytes(b"".join(lines))

    with pytest.raises(StorageError) as excinfo:
        ServiceLog(tmp_path)
    assert "corruption" in str(excinfo.value)


def test_service_log_checksum_mismatch_is_corruption(tmp_path):
    log = ServiceLog(tmp_path)
    log.append("submit", {"instance": "Mini-1"})
    log.append("submit", {"instance": "Mini-2"})
    log.append("submit", {"instance": "Mini-3"})
    log.close()
    lines = log.path.read_bytes().splitlines(keepends=True)
    doc = json.loads(lines[1])
    doc["payload"]["instance"] = "Mini-999"  # payload no longer matches crc
    lines[1] = (json.dumps(doc, sort_keys=True) + "\n").encode()
    log.path.write_bytes(b"".join(lines))

    with pytest.raises(StorageError):
        ServiceLog(tmp_path)


# -------------------------------------------------------------- ServiceState


def test_service_state_replay_and_resolution():
    state_log_records = []

    class FakeRecord:
        def __init__(self, kind, payload):
            self.kind = kind
            self.payload = payload

    def rec(kind, **payload):
        state_log_records.append(FakeRecord(kind, payload))

    rec("document", schema={"name": "Mini"})
    rec("submit", instance="Mini-1", workflow="Mini", inputs={})
    rec("submit", instance="Mini-2", workflow="Mini", inputs={})
    rec("submit", instance="Mini-3", workflow="Mini", inputs={})
    rec("outcome", instance="Mini-1", status="committed")
    # Mini-2 was re-driven by a previous recovery, twice (two crashes).
    rec("redrive", original="Mini-2", replacement="Mini-4")
    rec("submit", instance="Mini-4", workflow="Mini", inputs={})
    rec("redrive", original="Mini-4", replacement="Mini-5")
    rec("submit", instance="Mini-5", workflow="Mini", inputs={})

    state = ServiceState.from_records(state_log_records)
    assert len(state.documents) == 1
    assert state.resolve("Mini-2") == "Mini-5"  # chain spans two crashes
    assert state.resolve("Mini-1") == "Mini-1"
    # In-flight = acknowledged, no outcome, not superseded: 3 and 5.
    assert [p["instance"] for p in state.inflight()] == ["Mini-3", "Mini-5"]
    assert state.max_instance_index() == 5


def test_service_state_rejects_unknown_kind():
    class FakeRecord:
        kind = "mystery"
        payload = {}

    with pytest.raises(StorageError):
        ServiceState.from_records([FakeRecord()])


# ---------------------------------------------------------- service recovery


def test_recovery_redrives_inflight_instances(tmp_path):
    # Phase 1: acknowledge submissions slow enough that nothing finishes,
    # then abandon the service without any shutdown hook (the loop dies
    # with asyncio.run) — the crash the WAL exists for.
    async def crash_phase():
        service = WorkflowService(work_time_scale=5.0, state_dir=tmp_path)
        service.start()
        result = service.submit(schema=MINI_SCHEMA, inputs={"x": 1},
                                instances=3)
        return result["instances"]

    originals = asyncio.run(crash_phase())
    assert len(originals) == 3

    async def recover_phase():
        service = WorkflowService(work_time_scale=0.001, state_dir=tmp_path)
        service.start()
        try:
            status = service.status()
            assert status["durable"] is True
            assert status["instances_redriven"] == 3
            # Every original id resolves through its redrive alias to a
            # *fresh* id (acknowledged ids are never reused)...
            for original in originals:
                replacement = service.resolve_instance(original)
                assert replacement != original
                assert replacement not in originals
            # ...and the re-driven instances run to an engine outcome.
            await wait_for(
                lambda: all(
                    service.instance(o)["status"] == "committed"
                    for o in originals
                ),
                what="re-driven instances committing",
            )
            record = service.instance(originals[0])
            assert record["instance"] == originals[0]
            assert record["resolved"] == service.resolve_instance(originals[0])
            # New submissions continue past the reserved id range.
            fresh = service.submit(workflow="Mini", inputs={"x": 9})
            assert fresh["instances"][0] not in originals
        finally:
            await service.close()

    asyncio.run(recover_phase())


def test_recovery_restores_finished_outcomes_at_most_once(tmp_path):
    async def commit_phase():
        service = WorkflowService(work_time_scale=0.001, state_dir=tmp_path)
        service.start()
        [iid] = service.submit(schema=MINI_SCHEMA,
                               inputs={"x": 1})["instances"]
        # Wait until the outcome watcher journals the terminal outcome
        # (its sweep also captures the engine-store fragments), then
        # abandon the service without closing it.
        await wait_for(
            lambda: any(r.kind == "outcome" for r in service._log.records()),
            what="outcome journaling",
        )
        return iid

    iid = asyncio.run(commit_phase())

    async def recover_phase():
        service = WorkflowService(work_time_scale=0.001, state_dir=tmp_path)
        service.start()
        try:
            status = service.status()
            assert status["instances_recovered"] == 1
            assert status["instances_redriven"] == 0
            record = service.instance(iid)
            # Served from the durable log: the engine never re-ran it.
            assert record["status"] == "committed"
            assert record["recovered"] is True
            assert iid not in service.system.outcomes
            # At-most-once: the log still holds exactly one outcome.
            outcomes = [r for r in service._log.records()
                        if r.kind == "outcome"]
            assert len(outcomes) == 1
        finally:
            await service.close()

    asyncio.run(recover_phase())


def test_outcome_journals_engine_fragments(tmp_path):
    async def main():
        service = WorkflowService(work_time_scale=0.001, state_dir=tmp_path)
        service.start()
        try:
            service.submit(schema=MINI_SCHEMA, inputs={"x": 1})
            await wait_for(
                lambda: any(r.kind == "fragment"
                            for r in service._log.records()),
                what="fragment journaling",
            )
            fragment = next(r for r in service._log.records()
                            if r.kind == "fragment")
            assert fragment.payload["node"]
            assert fragment.payload["state"]
        finally:
            await service.close()

    asyncio.run(main())


def test_memory_only_service_has_no_log():
    async def main():
        service = WorkflowService(work_time_scale=0.001)
        service.start()
        try:
            assert service.status()["durable"] is False
            [iid] = service.submit(schema=MINI_SCHEMA,
                                   inputs={"x": 1})["instances"]
            await wait_for(lambda: iid in service.system.outcomes,
                           what="commit")
        finally:
            await service.close()

    asyncio.run(main())
