"""Admission control, deadlines and graceful drain at the front door."""

import asyncio
import json

import pytest

from repro.errors import AdmissionError, ParameterError
from repro.service import WorkflowService, start_server
from repro.service.admission import AdmissionController, TokenBucket

MINI_SCHEMA = {
    "name": "Mini",
    "inputs": ["x"],
    "steps": [
        {"name": "A", "outputs": ["y"], "cost": 1},
        {"name": "B", "inputs": ["A.y"], "outputs": ["z"]},
    ],
    "arcs": [{"src": "A", "dst": "B"}],
    "outputs": {"z": "B.z"},
}

SLOW_SCHEMA = {
    "name": "Slow",
    "inputs": ["x"],
    "steps": [{"name": "Grind", "outputs": ["y"], "cost": 500}],
    "outputs": {"y": "Grind.y"},
}


async def http(port, method, path, body=None):
    """One HTTP exchange; returns (status, headers dict, parsed body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode()
    writer.write(head + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header_blob, __, body_blob = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    headers = {}
    for line in header_blob.decode("latin-1").split("\r\n")[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    if headers.get("content-type", "").startswith("application/x-ndjson"):
        parsed = [json.loads(line) for line in body_blob.splitlines()]
    else:
        parsed = json.loads(body_blob) if body_blob else None
    return status, headers, parsed


async def booted(port, **service_kwargs):
    service = WorkflowService(**service_kwargs)
    server = await start_server(service, "127.0.0.1", port)
    return service, server


async def shutdown(service, server):
    server.close()
    await server.wait_closed()
    await service.close()


# ------------------------------------------------------------- token bucket


def test_token_bucket_takes_and_refills():
    bucket = TokenBucket(rate=10.0, burst=2)
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) == 0.0
    wait = bucket.try_take(0.0)
    assert wait == pytest.approx(0.1)
    # Nothing was taken on refusal; after the wait, one token is back.
    assert bucket.try_take(0.1) == 0.0
    # Refill is capped at burst even after a long idle stretch.
    bucket.try_take(100.0)
    assert bucket.tokens <= 2.0


def test_token_bucket_validates_parameters():
    with pytest.raises(ParameterError):
        TokenBucket(rate=0.0, burst=1)
    with pytest.raises(ParameterError):
        TokenBucket(rate=1.0, burst=0)


def test_admission_controller_gates_in_order():
    controller = AdmissionController(max_inflight=2, rate=100.0, burst=10)
    controller.admit(0.0, running=0, count=2, draining=False)
    # Drain shedding wins over every other verdict.
    with pytest.raises(AdmissionError) as excinfo:
        controller.admit(0.0, running=0, count=1, draining=True)
    assert excinfo.value.code == "draining"
    assert excinfo.value.status == 503
    with pytest.raises(AdmissionError) as excinfo:
        controller.admit(0.0, running=2, count=1, draining=False)
    assert excinfo.value.code == "queue-full"
    assert excinfo.value.status == 429
    assert excinfo.value.retry_after is not None
    stats = controller.stats.as_dict()
    assert stats["accepted"] == 2
    assert stats["rejected_draining"] == 1
    assert stats["rejected_queue_full"] == 1


def test_admission_retry_after_tracks_latency_ewma():
    controller = AdmissionController(max_inflight=1)
    assert controller._retry_after_queue() == controller.DEFAULT_RETRY_AFTER
    controller.note_latency(4.0)
    assert controller._retry_after_queue() == pytest.approx(2.0)
    controller.note_latency(4.0)
    controller.note_latency(0.0)  # EWMA decays, never snaps
    assert 0.05 <= controller._retry_after_queue() < 2.0


# ----------------------------------------------------------- over the wire


def test_queue_full_is_429_with_retry_after():
    async def main():
        service, server = await booted(8480, work_time_scale=0.01,
                                       max_inflight=2)
        try:
            status, __, body = await http(
                8480, "POST", "/workflows",
                {"schema": SLOW_SCHEMA, "inputs": {"x": 1}, "instances": 2},
            )
            assert status == 200
            status, headers, body = await http(
                8480, "POST", "/workflows",
                {"workflow": "Slow", "inputs": {"x": 2}},
            )
            assert status == 429
            assert body["error"]["code"] == "queue-full"
            assert float(headers["retry-after"]) > 0
            assert service.admission.stats.rejected_queue_full == 1
        finally:
            await shutdown(service, server)

    asyncio.run(main())


def test_rate_limit_is_429_with_exact_wait():
    async def main():
        service, server = await booted(8481, work_time_scale=0.001,
                                       rate_limit=0.5, rate_burst=1)
        try:
            status, __, __ = await http(
                8481, "POST", "/workflows",
                {"schema": MINI_SCHEMA, "inputs": {"x": 1}},
            )
            assert status == 200
            status, headers, body = await http(
                8481, "POST", "/workflows",
                {"workflow": "Mini", "inputs": {"x": 2}},
            )
            assert status == 429
            assert body["error"]["code"] == "rate-limited"
            assert 0 < float(headers["retry-after"]) <= 2.0
        finally:
            await shutdown(service, server)

    asyncio.run(main())


def test_deadline_exceeded_instance_is_aborted_and_reported():
    async def main():
        service, server = await booted(8482, work_time_scale=0.01)
        try:
            status, __, body = await http(
                8482, "POST", "/workflows",
                {"schema": SLOW_SCHEMA, "inputs": {"x": 1},
                 "deadline_s": 0.1},
            )
            assert status == 200
            [iid] = body["instances"]

            async def poll(want):
                for __ in range(200):
                    s, __h, record = await http(
                        8482, "GET", f"/instances/{iid}")
                    if record.get("deadline_exceeded"):
                        return record
                    await asyncio.sleep(0.05)
                raise AssertionError(f"never saw {want}")

            record = await poll("deadline_exceeded")
            assert record["deadline_exceeded"] is True
            assert service.admission.stats.deadline_exceeded == 1
        finally:
            await shutdown(service, server)

    asyncio.run(main())


def test_bad_deadline_is_rejected():
    async def main():
        service, server = await booted(8483, work_time_scale=0.001)
        try:
            status, __, body = await http(
                8483, "POST", "/workflows",
                {"schema": MINI_SCHEMA, "inputs": {"x": 1},
                 "deadline_s": -1},
            )
            assert status == 400
            assert "deadline_s" in body["error"]["message"]
        finally:
            await shutdown(service, server)

    asyncio.run(main())


# -------------------------------------------------------------------- drain


def test_drain_sheds_submissions_and_closes_streams():
    """``begin_drain`` with live NDJSON streams: the firehose flushes and
    closes cleanly, per-instance streams survive until their instance
    finishes, and new submissions get a 503 with a drain hint."""

    async def main():
        service, server = await booted(8484, work_time_scale=0.01)
        try:
            status, __, body = await http(
                8484, "POST", "/workflows",
                {"schema": MINI_SCHEMA, "inputs": {"x": 1}},
            )
            assert status == 200
            [iid] = body["instances"]

            # Open both stream kinds *before* draining.
            firehose = asyncio.ensure_future(http(8484, "GET", "/events"))
            instance_stream = asyncio.ensure_future(
                http(8484, "GET", f"/instances/{iid}/events"))
            await asyncio.sleep(0.05)  # let both streams attach

            status, __, body = await http(8484, "POST", "/admin/drain")
            assert status == 200 and body == {"draining": True}
            assert service.status()["draining"] is True

            # The firehose closes promptly: its tap got the terminator.
            status, __, events = await asyncio.wait_for(firehose, timeout=5.0)
            assert status == 200
            assert all(isinstance(e, dict) for e in events)

            # New submissions are shed with the drain hint.
            status, __, body = await http(
                8484, "POST", "/workflows",
                {"workflow": "Mini", "inputs": {"x": 2}},
            )
            assert status == 503
            assert body["error"]["code"] == "draining"
            assert "draining" in body["error"]["message"]

            # The per-instance stream still runs to the terminal event:
            # in-flight work finishes during drain.
            status, __, events = await asyncio.wait_for(instance_stream,
                                                        timeout=10.0)
            assert status == 200
            assert events[-1]["kind"] == "instance.finished"
            assert events[-1]["status"] == "committed"

            # Readiness flipped off for load balancers.
            status, __, body = await http(8484, "GET", "/readyz")
            assert status == 503 and body["reason"] == "draining"
        finally:
            await shutdown(service, server)

    asyncio.run(main())


def test_admission_metrics_are_scraped():
    async def main():
        service, server = await booted(8485, work_time_scale=0.001,
                                       max_inflight=1, rate_limit=100.0,
                                       rate_burst=100)
        try:
            status, __, __ = await http(
                8485, "POST", "/workflows",
                {"schema": SLOW_SCHEMA, "inputs": {"x": 1}},
            )
            assert status == 200
            status, __, __ = await http(
                8485, "POST", "/workflows",
                {"workflow": "Slow", "inputs": {"x": 2}},
            )
            assert status == 429
            reader, writer = await asyncio.open_connection("127.0.0.1", 8485)
            writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: 0\r\n\r\n")
            await writer.drain()
            text = (await reader.read()).decode()
            writer.close()
            assert "crew_admission_accepted_total" in text
            assert 'crew_admission_rejected_total{reason="queue-full"}' in text
            assert "crew_admission_rate_tokens" in text
            assert "crew_service_wal_records_total" not in text  # no log
        finally:
            await shutdown(service, server)

    asyncio.run(main())
