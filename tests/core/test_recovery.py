"""Unit tests for rollback/invalidation helpers."""

from repro.core.recovery import (
    RecoveryTokens,
    abandoned_branch_compensation,
    invalidation_tokens,
    steps_to_invalidate,
)
from repro.model.compiler import compile_schema
from repro.storage.tables import InstanceState, StepStatus
from tests.conftest import branching_schema, linear_schema


def test_steps_to_invalidate_descendants_plus_origin():
    compiled = compile_schema(linear_schema(steps=4))
    assert steps_to_invalidate(compiled, "S2") == frozenset({"S2", "S3", "S4"})


def test_invalidation_tokens_cover_done_and_fail():
    tokens = invalidation_tokens({"S1", "S2"})
    assert tokens == frozenset({"S1.D", "S1.F", "S2.D", "S2.F"})


def test_recovery_tokens_bundle():
    compiled = compile_schema(linear_schema(steps=3))
    recovery = RecoveryTokens(compiled, "S2")
    assert recovery.origin == "S2"
    assert recovery.steps == frozenset({"S2", "S3"})
    assert "S3.D" in recovery.tokens and "S2.F" in recovery.tokens


def test_abandoned_branch_compensation_orders_latest_first():
    compiled = compile_schema(branching_schema())
    state = InstanceState(schema_name="Branchy", instance_id="i1")
    for name, seq in (("S3", 1), ("S4", 2)):
        record = state.record(name)
        record.status = StepStatus.DONE
        record.exec_seq = seq
    # Re-execution took the S5 (else) branch: S3 and S4 must be undone.
    steps = abandoned_branch_compensation(compiled, state, "S2", "S5")
    assert steps == ["S4", "S3"]


def test_abandoned_branch_skips_unexecuted_and_failed():
    compiled = compile_schema(branching_schema())
    state = InstanceState(schema_name="Branchy", instance_id="i1")
    record = state.record("S3")
    record.status = StepStatus.DONE
    record.exec_seq = 1
    failed = state.record("S4")
    failed.status = StepStatus.FAILED
    steps = abandoned_branch_compensation(compiled, state, "S2", "S5")
    assert steps == ["S3"]


def test_abandoned_branch_same_branch_is_empty():
    compiled = compile_schema(branching_schema())
    state = InstanceState(schema_name="Branchy", instance_id="i1")
    record = state.record("S5")
    record.status = StepStatus.DONE
    record.exec_seq = 1
    assert abandoned_branch_compensation(compiled, state, "S2", "S5") == []
