"""Unit tests for the workflow interface catalogue (paper Tables 1-2)."""

from repro.core.interfaces import INVOKED_BY, SUPPORTED_BY, WI, default_mechanism
from repro.sim.metrics import Mechanism


def test_all_sixteen_table1_interfaces_present():
    table1 = {
        "WorkflowStart", "WorkflowChangeInputs", "WorkflowAbort",
        "WorkflowStatus", "InputsChanged", "StepExecute", "StepCompensate",
        "StepCompleted", "StepStatus", "WorkflowRollback", "HaltThread",
        "CompensateSet", "StateInformation", "AddRule", "AddEvent",
        "AddPrecondition",
    }
    names = {wi.value for wi in WI}
    assert table1 <= names
    # Plus CompensateThread from the Section 5.2 prose.
    assert "CompensateThread" in names


def test_table2_mechanism_attribution():
    """Spot-check Table 2's Used For column."""
    assert default_mechanism(WI.WORKFLOW_START) is Mechanism.NORMAL
    assert default_mechanism(WI.STEP_EXECUTE) is Mechanism.NORMAL
    assert default_mechanism(WI.STEP_COMPLETED) is Mechanism.NORMAL
    assert default_mechanism(WI.STATE_INFORMATION) is Mechanism.NORMAL
    assert default_mechanism(WI.WORKFLOW_CHANGE_INPUTS) is Mechanism.INPUT_CHANGE
    assert default_mechanism(WI.INPUTS_CHANGED) is Mechanism.INPUT_CHANGE
    assert default_mechanism(WI.WORKFLOW_ABORT) is Mechanism.ABORT
    assert default_mechanism(WI.STEP_COMPENSATE) is Mechanism.FAILURE
    assert default_mechanism(WI.WORKFLOW_ROLLBACK) is Mechanism.FAILURE
    assert default_mechanism(WI.HALT_THREAD) is Mechanism.FAILURE
    assert default_mechanism(WI.COMPENSATE_SET) is Mechanism.FAILURE
    assert default_mechanism(WI.STEP_STATUS) is Mechanism.FAILURE
    for wi in (WI.ADD_RULE, WI.ADD_EVENT, WI.ADD_PRECONDITION):
        assert default_mechanism(wi) is Mechanism.COORDINATION


def test_every_interface_has_metadata():
    for wi in WI:
        assert default_mechanism(wi) in Mechanism
        assert SUPPORTED_BY[wi] in ("coordination", "execution")
        assert INVOKED_BY[wi]


def test_front_end_interfaces_supported_by_coordination_agent():
    for wi in (WI.WORKFLOW_START, WI.WORKFLOW_ABORT, WI.WORKFLOW_STATUS,
               WI.WORKFLOW_CHANGE_INPUTS, WI.STEP_COMPLETED):
        assert SUPPORTED_BY[wi] == "coordination"
