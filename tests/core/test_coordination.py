"""Unit tests for the coordination authority state machines."""

from repro.core.coordination import (
    MutualExclusionAuthority,
    RelativeOrderAuthority,
    RollbackDependencyAuthority,
    mx_clearance_token,
    ro_clearance_token,
)
from repro.model.coordination_spec import (
    MutualExclusionSpec,
    RelativeOrderSpec,
    RollbackDependencySpec,
)


def ro_spec(same_schema=False):
    other = "A" if same_schema else "B"
    return RelativeOrderSpec(
        name="ro", schema_a="A", schema_b=other,
        steps_a=("S1", "S2", "S3"),
        steps_b=("S1", "S2", "S3") if same_schema else ("T1", "T2", "T3"),
        conflict_key="WF.k",
    )


def test_pair_index_lookup():
    authority = RelativeOrderAuthority(ro_spec())
    assert authority.pair_index("A", "S2") == 1
    assert authority.pair_index("B", "T3") == 2
    assert authority.pair_index("A", "T1") is None


def test_first_pair_clears_immediately():
    authority = RelativeOrderAuthority(ro_spec())
    grant = authority.request_clearance("A", "i1", 0, "k")
    assert grant is not None
    assert grant.token == ro_clearance_token("ro", 0, "i1")


def test_leading_lagging_established_by_registration_order():
    authority = RelativeOrderAuthority(ro_spec())
    authority.report_completion("A", "i1", 0, "k")
    authority.report_completion("B", "j1", 0, "k")
    assert authority.is_leading("i1", "j1") is True
    assert authority.is_leading("j1", "i1") is False
    assert authority.established_pairs() == [("i1", "j1")]


def test_lagging_instance_waits_for_leader_pair():
    authority = RelativeOrderAuthority(ro_spec())
    authority.report_completion("A", "i1", 0, "k")  # i1 leads
    authority.report_completion("B", "j1", 0, "k")  # j1 lags
    # j1 asks for pair 1 before i1 finished its pair-1 step
    assert authority.request_clearance("B", "j1", 1, "k") is None
    grants = authority.report_completion("A", "i1", 1, "k")
    assert [(g.instance, g.pair_index) for g in grants] == [("j1", 1)]


def test_leader_completion_before_request_grants_immediately():
    authority = RelativeOrderAuthority(ro_spec())
    authority.report_completion("A", "i1", 0, "k")
    authority.report_completion("A", "i1", 1, "k")
    authority.report_completion("B", "j1", 0, "k")
    assert authority.request_clearance("B", "j1", 1, "k") is not None


def test_non_conflicting_keys_do_not_order():
    authority = RelativeOrderAuthority(ro_spec())
    authority.report_completion("A", "i1", 0, "k1")
    authority.report_completion("B", "j1", 0, "k2")
    assert authority.request_clearance("B", "j1", 1, "k2") is not None


def test_none_key_conflicts_with_everything():
    authority = RelativeOrderAuthority(RelativeOrderSpec(
        name="ro", schema_a="A", schema_b="B",
        steps_a=("S1", "S2"), steps_b=("T1", "T2"), conflict_key=None,
    ))
    authority.report_completion("A", "i1", 0, None)
    authority.report_completion("B", "j1", 0, None)
    assert authority.request_clearance("B", "j1", 1, None) is None


def test_same_schema_fifo_ordering():
    authority = RelativeOrderAuthority(ro_spec(same_schema=True))
    authority.report_completion("A", "i1", 0, "k")
    authority.report_completion("A", "i2", 0, "k")
    assert authority.request_clearance("A", "i2", 1, "k") is None
    grants = authority.report_completion("A", "i1", 1, "k")
    assert [(g.instance, g.pair_index) for g in grants] == [("i2", 1)]


def test_cross_schema_instances_of_same_schema_do_not_block():
    """When schemas differ, ordering binds only across the two schemas."""
    authority = RelativeOrderAuthority(ro_spec())
    authority.report_completion("A", "i1", 0, "k")
    authority.report_completion("A", "i2", 0, "k")  # same schema as i1
    assert authority.request_clearance("A", "i2", 1, "k") is not None


def test_withdraw_unblocks_laggards():
    authority = RelativeOrderAuthority(ro_spec())
    authority.report_completion("A", "i1", 0, "k")
    authority.report_completion("B", "j1", 0, "k")
    assert authority.request_clearance("B", "j1", 1, "k") is None
    grants = authority.withdraw("i1")  # leader aborted
    assert [(g.instance, g.pair_index) for g in grants] == [("j1", 1)]


def test_external_order_keys_decide_leadership():
    authority = RelativeOrderAuthority(ro_spec())
    authority.report_completion("A", "i1", 0, "k", order_key=(5.0, "i1"))
    authority.report_completion("B", "j1", 0, "k", order_key=(3.0, "j1"))
    assert authority.is_leading("j1", "i1") is True


def mx_auth():
    return MutualExclusionAuthority(MutualExclusionSpec(
        name="mx", schema_a="A", schema_b="B",
        region_a=("S1", "S2"), region_b=("T1", "T2"), conflict_key="WF.k",
    ))


def test_mx_acquire_grant_and_queue():
    authority = mx_auth()
    assert authority.acquire("A", "i1", "k")
    assert not authority.acquire("B", "j1", "k")
    assert authority.holder("k") == ("A", "i1")
    assert authority.queue_length("k") == 1


def test_mx_release_grants_next_fifo():
    authority = mx_auth()
    authority.acquire("A", "i1", "k")
    authority.acquire("B", "j1", "k")
    authority.acquire("A", "i2", "k")
    assert authority.release("A", "i1", "k") == ("B", "j1")
    assert authority.release("B", "j1", "k") == ("A", "i2")
    assert authority.release("A", "i2", "k") is None
    assert authority.holder("k") is None


def test_mx_reacquire_by_holder_is_idempotent():
    authority = mx_auth()
    assert authority.acquire("A", "i1", "k")
    assert authority.acquire("A", "i1", "k")
    assert authority.queue_length("k") == 0


def test_mx_release_by_non_holder_dequeues():
    authority = mx_auth()
    authority.acquire("A", "i1", "k")
    authority.acquire("B", "j1", "k")
    assert authority.release("B", "j1", "k") is None  # j1 gives up its wait
    assert authority.release("A", "i1", "k") is None  # queue now empty


def test_mx_distinct_keys_independent():
    authority = mx_auth()
    assert authority.acquire("A", "i1", "k1")
    assert authority.acquire("B", "j1", "k2")


def test_mx_none_key_single_lock():
    authority = mx_auth()
    assert authority.acquire("A", "i1", None)
    assert not authority.acquire("B", "j1", None)


def test_mx_clearance_token_shape():
    assert mx_clearance_token("mx", "i1") == "EXT.MX.mx.i1"


def rd_auth():
    return RollbackDependencyAuthority(RollbackDependencySpec(
        name="rd", schema_a="A", schema_b="B",
        trigger_step_a="S2", rollback_to_b="T1", conflict_key="WF.k",
    ))


def test_rd_dependents_by_key():
    authority = rd_auth()
    authority.report_target_executed("j1", "k")
    authority.report_target_executed("j2", "other")
    assert authority.dependents_of("i1", "k") == ["j1"]


def test_rd_trigger_excludes_self():
    authority = rd_auth()
    authority.report_target_executed("i1", "k")
    assert authority.dependents_of("i1", "k") == []


def test_rd_withdraw():
    authority = rd_auth()
    authority.report_target_executed("j1", "k")
    authority.withdraw("j1")
    assert authority.dependents_of("i1", "k") == []
