"""Unit tests for workflow packets."""

from repro.core.packets import WorkflowPacket
from repro.sim.metrics import Mechanism


def make_packet():
    return WorkflowPacket(
        schema_name="W",
        instance_id="i1",
        action="execute",
        target_step="S2",
        data={"WF.x": 1, "S1.o": 2},
        events={"WF.S": 0.0, "S1.D": 1.0},
        invalidations={"S3.D": 5.0},
        recovery_epoch=2,
        mechanism=Mechanism.FAILURE,
        ro_info=(("spec", "lead", "lag"),),
        executors={"S1": "agent-1"},
        assigned_agent="agent-2",
        parent_link=("parent-1", "P3"),
    )


def test_payload_roundtrip():
    packet = make_packet()
    restored = WorkflowPacket.from_payload(packet.to_payload())
    assert restored == packet


def test_defaults_roundtrip():
    packet = WorkflowPacket(schema_name="W", instance_id="i1",
                            action="execute", target_step="S1")
    restored = WorkflowPacket.from_payload(packet.to_payload())
    assert restored == packet
    assert restored.mechanism is Mechanism.NORMAL
    assert restored.parent_link is None


def test_evolve_creates_modified_copy():
    packet = make_packet()
    other = packet.evolve(target_step="S3", assigned_agent="agent-9")
    assert other.target_step == "S3"
    assert other.assigned_agent == "agent-9"
    assert packet.target_step == "S2"  # original untouched


def test_payload_copies_are_independent():
    packet = make_packet()
    payload = packet.to_payload()
    payload["data"]["WF.x"] = 999
    assert packet.data["WF.x"] == 1
