"""Unit tests for the OCR planning logic (paper Figure 5)."""

import pytest

from repro.core.ocr import (
    compensation_set_order,
    compensation_set_order_from_events,
    plan_step_action,
)
from repro.errors import RecoveryError
from repro.model.policies import (
    AlwaysReexecute,
    CRDecision,
    IncrementalIfInputsChanged,
    ReuseIfInputsUnchanged,
)
from repro.model.schema import StepDef
from repro.storage.tables import InstanceState, StepStatus


STEP = StepDef(name="S1", cost=10.0, compensation_cost=6.0)


def record(status, inputs=None, outputs=None, executions=1):
    from repro.storage.tables import StepRecord

    return StepRecord(
        step="S1",
        status=status,
        executions=executions,
        last_inputs=dict(inputs or {}),
        last_outputs=dict(outputs or {}),
    )


def test_first_execution_plan():
    plan = plan_step_action(STEP, record(StepStatus.NOT_STARTED, executions=0),
                            {"a": 1}, ReuseIfInputsUnchanged())
    assert plan.first_execution
    assert plan.decision is None
    assert not plan.compensate
    assert plan.reexecute and plan.execution_cost == 10.0


def test_failed_step_reexecutes_without_compensation():
    plan = plan_step_action(STEP, record(StepStatus.FAILED), {"a": 1},
                            ReuseIfInputsUnchanged())
    assert not plan.compensate
    assert plan.reexecute
    assert plan.execution_cost == 10.0


def test_compensated_step_runs_fresh():
    plan = plan_step_action(STEP, record(StepStatus.COMPENSATED), {"a": 1},
                            ReuseIfInputsUnchanged())
    assert not plan.compensate
    assert plan.reexecute


def test_reuse_when_inputs_unchanged():
    plan = plan_step_action(STEP, record(StepStatus.DONE, inputs={"a": 1}),
                            {"a": 1}, ReuseIfInputsUnchanged())
    assert plan.decision is CRDecision.REUSE
    assert plan.reuse_outputs
    assert not plan.reexecute
    assert plan.total_cost == 0.0


def test_complete_when_inputs_changed():
    plan = plan_step_action(STEP, record(StepStatus.DONE, inputs={"a": 1}),
                            {"a": 2}, ReuseIfInputsUnchanged())
    assert plan.decision is CRDecision.COMPLETE
    assert plan.compensate and plan.compensation_kind == "complete"
    assert plan.compensation_cost == 6.0
    assert plan.execution_cost == 10.0


def test_incremental_plan_scales_costs():
    policy = IncrementalIfInputsChanged(0.25)
    plan = plan_step_action(STEP, record(StepStatus.DONE, inputs={"a": 1}),
                            {"a": 2}, policy)
    assert plan.decision is CRDecision.INCREMENTAL
    assert plan.compensation_kind == "partial"
    assert plan.compensation_cost == pytest.approx(1.5)  # 6.0 * 0.25
    assert plan.execution_cost == pytest.approx(2.5)  # 10.0 * 0.25


def test_always_reexecute_baseline():
    plan = plan_step_action(STEP, record(StepStatus.DONE, inputs={"a": 1}),
                            {"a": 1}, AlwaysReexecute())
    assert plan.decision is CRDecision.COMPLETE
    assert plan.total_cost == 16.0


def test_noncompensable_step_skips_compensation():
    step = StepDef(name="S1", cost=10.0, compensable=False)
    plan = plan_step_action(step, record(StepStatus.DONE, inputs={"a": 1}),
                            {"a": 2}, AlwaysReexecute())
    assert not plan.compensate
    assert plan.compensation_cost == 0.0
    assert plan.reexecute


def test_running_step_retrigger_is_an_error():
    with pytest.raises(RecoveryError):
        plan_step_action(STEP, record(StepStatus.RUNNING), {}, AlwaysReexecute())


def test_compensation_set_order_reverse_execution():
    state = InstanceState(schema_name="W", instance_id="i1")
    for name, seq in (("A", 1), ("B", 2), ("C", 3)):
        rec = state.record(name)
        rec.status = StepStatus.DONE
        rec.exec_seq = seq
    members = frozenset({"A", "B", "C"})
    assert compensation_set_order(members, state) == ["C", "B", "A"]


def test_compensation_set_order_up_to_stops_at_member():
    state = InstanceState(schema_name="W", instance_id="i1")
    for name, seq in (("A", 1), ("B", 2), ("C", 3)):
        rec = state.record(name)
        rec.status = StepStatus.DONE
        rec.exec_seq = seq
    members = frozenset({"A", "B", "C"})
    # Re-executing B: only C (executed after B) and B itself compensate.
    assert compensation_set_order(members, state, up_to="B") == ["C", "B"]


def test_compensation_set_order_skips_unexecuted():
    state = InstanceState(schema_name="W", instance_id="i1")
    rec = state.record("A")
    rec.status = StepStatus.DONE
    rec.exec_seq = 1
    state.record("B")  # NOT_STARTED
    assert compensation_set_order(frozenset({"A", "B"}), state) == ["A"]


def test_compensation_set_order_unknown_up_to_raises():
    state = InstanceState(schema_name="W", instance_id="i1")
    with pytest.raises(RecoveryError):
        compensation_set_order(frozenset({"A"}), state, up_to="A")


def test_compensation_set_order_from_events():
    done_times = {"A": 1.0, "B": 3.0, "C": 2.0}
    members = frozenset({"A", "B", "C"})
    assert compensation_set_order_from_events(members, done_times) == ["B", "C", "A"]
    assert compensation_set_order_from_events(members, done_times, up_to="C") == ["B", "C"]


def test_compensation_set_order_from_events_tie_breaks_by_name():
    done_times = {"A": 1.0, "B": 1.0}
    assert compensation_set_order_from_events(frozenset({"A", "B"}), done_times) == ["A", "B"]
