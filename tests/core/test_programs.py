"""Unit tests for step programs and the registry."""

import pytest

from repro.core.programs import (
    ConstantProgram,
    ExecutionContext,
    FailEveryNth,
    FailWithProbability,
    FunctionProgram,
    NoopProgram,
    ProgramRegistry,
)
from repro.errors import WorkloadError
from repro.sim.rng import SimRandom


def ctx(attempt=1, instance="i1", step="S1", rng=None):
    return ExecutionContext(
        schema_name="W", instance_id=instance, step=step, attempt=attempt,
        now=0.0, node="agent-1", rng=rng,
    )


def test_noop_produces_attempt_tagged_outputs():
    result = NoopProgram(("a", "b")).execute({}, ctx(attempt=2))
    assert result.success
    assert result.outputs == {"a": "S1.a@2", "b": "S1.b@2"}


def test_constant_program():
    result = ConstantProgram({"x": 1}).execute({}, ctx())
    assert result.success and result.outputs == {"x": 1}


def test_function_program_success_and_failure():
    ok = FunctionProgram(lambda i, c: {"y": i["WF.x"] + 1})
    result = ok.execute({"WF.x": 1}, ctx())
    assert result.success and result.outputs == {"y": 2}

    def boom(i, c):
        raise RuntimeError("nope")

    failed = FunctionProgram(boom).execute({}, ctx())
    assert not failed.success and "nope" in failed.error


def test_function_program_compensation_hook():
    undone = []
    program = FunctionProgram(lambda i, c: {}, compensate_fn=lambda r, c: undone.append(r.step))
    from repro.storage.tables import StepRecord

    program.compensate(StepRecord(step="S1"), ctx())
    assert undone == ["S1"]


def test_fail_every_nth():
    program = FailEveryNth(NoopProgram(()), {1, 3})
    assert not program.execute({}, ctx(attempt=1)).success
    assert program.execute({}, ctx(attempt=2)).success
    assert not program.execute({}, ctx(attempt=3)).success


def test_fail_with_probability_bounds():
    with pytest.raises(WorkloadError):
        FailWithProbability(NoopProgram(()), 1.5)


def test_fail_with_probability_max_failures():
    rng = SimRandom(0).stream("always-fail")
    program = FailWithProbability(NoopProgram(()), pf=1.0, max_failures=1)
    first = program.execute({}, ctx(attempt=1, rng=rng))
    second = program.execute({}, ctx(attempt=2, rng=rng))
    assert not first.success
    assert second.success  # budget exhausted -> succeeds


def test_fail_with_probability_zero_never_fails():
    rng = SimRandom(0).stream("s")
    program = FailWithProbability(NoopProgram(()), pf=0.0)
    assert all(
        program.execute({}, ctx(attempt=n, rng=rng)).success for n in range(1, 10)
    )


def test_registry_lookup_and_fallback():
    registry = ProgramRegistry()
    program = ConstantProgram({"x": 1})
    registry.register("p", program)
    assert registry.get("p") is program
    assert registry.has("p")
    fallback = registry.get("missing", outputs=("o",))
    assert isinstance(fallback, NoopProgram)
    assert not registry.has("missing")


def test_registry_fallback_not_shared_between_steps():
    registry = ProgramRegistry()
    a = registry.get("missing", outputs=("a",))
    b = registry.get("missing", outputs=("b",))
    assert a.execute({}, ctx()).outputs != b.execute({}, ctx()).outputs
