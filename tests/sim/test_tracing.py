"""Unit tests for the structured trace log."""

from repro.sim.tracing import Trace


def make_trace():
    trace = Trace()
    trace.record(1.0, "engine", "step.done", instance="i1", step="S1")
    trace.record(2.0, "agent-1", "step.fail", instance="i1", step="S2")
    trace.record(3.0, "engine", "step.done", instance="i2", step="S1")
    return trace


def test_records_in_order():
    trace = make_trace()
    assert [r.time for r in trace] == [1.0, 2.0, 3.0]
    assert len(trace) == 3


def test_filter_by_kind():
    trace = make_trace()
    assert len(trace.filter(kind="step.done")) == 2


def test_filter_by_node():
    trace = make_trace()
    assert len(trace.filter(node="engine")) == 2


def test_filter_by_predicate():
    trace = make_trace()
    hits = trace.filter(predicate=lambda r: r.detail.get("instance") == "i1")
    assert len(hits) == 2


def test_first_last_count():
    trace = make_trace()
    assert trace.first("step.done").time == 1.0
    assert trace.last("step.done").time == 3.0
    assert trace.count("step.done") == 2
    assert trace.first("missing") is None
    assert trace.last("missing") is None


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    trace.record(1.0, "n", "k")
    assert len(trace) == 0


def test_capacity_drops_excess():
    trace = Trace(capacity=2)
    for i in range(5):
        trace.record(float(i), "n", "k")
    assert len(trace) == 2
    assert trace.dropped == 3


def test_kinds_sorted_unique():
    trace = make_trace()
    assert trace.kinds() == ["step.done", "step.fail"]


def test_render_with_limit():
    trace = make_trace()
    text = trace.render(limit=1)
    assert "step.done" in text
    assert "2 more records" in text
