"""Unit tests for the structured trace log."""

from repro.sim.tracing import Trace


def make_trace():
    trace = Trace()
    trace.record(1.0, "engine", "step.done", instance="i1", step="S1")
    trace.record(2.0, "agent-1", "step.fail", instance="i1", step="S2")
    trace.record(3.0, "engine", "step.done", instance="i2", step="S1")
    return trace


def test_records_in_order():
    trace = make_trace()
    assert [r.time for r in trace] == [1.0, 2.0, 3.0]
    assert len(trace) == 3


def test_filter_by_kind():
    trace = make_trace()
    assert len(trace.filter(kind="step.done")) == 2


def test_filter_by_node():
    trace = make_trace()
    assert len(trace.filter(node="engine")) == 2


def test_filter_by_predicate():
    trace = make_trace()
    hits = trace.filter(predicate=lambda r: r.detail.get("instance") == "i1")
    assert len(hits) == 2


def test_first_last_count():
    trace = make_trace()
    assert trace.first("step.done").time == 1.0
    assert trace.last("step.done").time == 3.0
    assert trace.count("step.done") == 2
    assert trace.first("missing") is None
    assert trace.last("missing") is None


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    trace.record(1.0, "n", "k")
    assert len(trace) == 0


def test_capacity_drops_excess():
    trace = Trace(capacity=2)
    for i in range(5):
        trace.record(float(i), "n", "k")
    assert len(trace) == 2
    assert trace.dropped == 3


def test_kinds_sorted_unique():
    trace = make_trace()
    assert trace.kinds() == ["step.done", "step.fail"]


def test_render_with_limit():
    trace = make_trace()
    text = trace.render(limit=1)
    assert "step.done" in text
    assert "2 more records" in text


def test_ring_capacity_keeps_newest():
    trace = Trace(capacity=2, ring=True)
    for i in range(5):
        trace.record(float(i), "n", "k", seq=i)
    assert len(trace) == 2
    assert [r.time for r in trace] == [3.0, 4.0]
    assert trace.dropped == 3


def test_default_capacity_keeps_oldest():
    trace = Trace(capacity=2)
    for i in range(5):
        trace.record(float(i), "n", "k")
    assert [r.time for r in trace] == [0.0, 1.0]


def test_ring_without_capacity_is_unbounded():
    trace = Trace(ring=True)
    for i in range(10):
        trace.record(float(i), "n", "k")
    assert len(trace) == 10
    assert trace.dropped == 0


def test_ring_queries_work_over_deque():
    trace = Trace(capacity=3, ring=True)
    for i in range(6):
        trace.record(float(i), "n", "even" if i % 2 == 0 else "odd")
    assert trace.count("odd") == 2
    assert trace.first("even").time == 4.0
    assert trace.kinds() == ["even", "odd"]


def test_render_reports_dropped_newest():
    trace = Trace(capacity=1)
    trace.record(1.0, "n", "k")
    trace.record(2.0, "n", "k")
    assert "1 newest records dropped at capacity 1" in trace.render()


def test_render_reports_dropped_oldest():
    trace = Trace(capacity=1, ring=True)
    trace.record(1.0, "n", "k")
    trace.record(2.0, "n", "k")
    assert "1 oldest records dropped at capacity 1" in trace.render()


def test_render_without_drops_has_no_drop_line():
    trace = make_trace()
    assert "dropped" not in trace.render()


def test_drop_summary_none_until_records_are_lost():
    trace = Trace(capacity=2, ring=True)
    trace.record(1.0, "n", "k")
    assert trace.drop_summary() is None
    trace.record(2.0, "n", "k")
    trace.record(3.0, "n", "k")
    assert trace.drop_summary() == (
        "trace ring buffer dropped 1 record(s) (oldest first; capacity 2)"
    )


def test_drop_summary_reports_newest_policy():
    trace = Trace(capacity=1)
    trace.record(1.0, "n", "k")
    trace.record(2.0, "n", "k")
    trace.record(3.0, "n", "k")
    assert trace.drop_policy == "newest"
    assert trace.drop_summary() == (
        "trace ring buffer dropped 2 record(s) (newest first; capacity 1)"
    )


def test_filter_combined_criteria():
    trace = make_trace()
    hits = trace.filter(kind="step.done", node="engine",
                        predicate=lambda r: r.detail["instance"] == "i2")
    assert [r.time for r in hits] == [3.0]
    assert trace.filter(kind="step.fail", node="engine") == []


def test_snapshot_in_ring_mode_counts_evictions():
    trace = Trace(capacity=2, ring=True)
    trace.record(1.0, "n", "k")
    trace.record(2.0, "n", "k")
    assert trace.dropped == 0
    trace.snapshot(3.0, "n", "crash")
    assert trace.dropped == 1
    assert [r.time for r in trace.records] == [2.0, 3.0]


def test_snapshot_newest_policy_exceeds_capacity_without_drops():
    # Non-ring capacity mode: snapshots bypass the cap entirely, so
    # nothing is evicted and nothing is counted.
    trace = Trace(capacity=1)
    trace.record(1.0, "n", "k")
    trace.snapshot(2.0, "n", "crash")
    assert trace.dropped == 0
    assert len(trace.records) == 2
