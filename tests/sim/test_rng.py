"""Unit tests for named deterministic random streams."""

from repro.sim.rng import SimRandom


def test_same_seed_same_stream_sequence():
    a = SimRandom(42).stream("failures")
    b = SimRandom(42).stream("failures")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_give_independent_streams():
    rng = SimRandom(42)
    a = [rng.stream("a").random() for _ in range(3)]
    b = [rng.stream("b").random() for _ in range(3)]
    assert a != b


def test_stream_is_cached():
    rng = SimRandom(1)
    assert rng.stream("x") is rng.stream("x")


def test_different_seeds_differ():
    a = SimRandom(1).stream("s").random()
    b = SimRandom(2).stream("s").random()
    assert a != b


def test_draw_order_between_streams_does_not_interfere():
    rng1 = SimRandom(7)
    first = rng1.stream("a").random()
    rng1.stream("b").random()  # interleaved draw on another stream
    second = rng1.stream("a").random()

    rng2 = SimRandom(7)
    expected_first = rng2.stream("a").random()
    expected_second = rng2.stream("a").random()
    assert (first, second) == (expected_first, expected_second)


def test_spawn_derives_independent_space():
    parent = SimRandom(5)
    child = parent.spawn("child")
    assert child.seed != parent.seed
    assert child.stream("s").random() == SimRandom(5).spawn("child").stream("s").random()
