"""Unit tests for simulated nodes (crash/recovery, load accounting)."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.metrics import Mechanism, MetricsCollector
from repro.sim.network import FixedLatency, Network
from repro.sim.node import Node


class Stub(Node):
    def __init__(self, name, sim, net):
        super().__init__(name, sim, net)
        self.crashed_hook = 0
        self.recovered_hook = 0

    def handle_message(self, message):
        pass

    def on_crash(self):
        self.crashed_hook += 1

    def on_recover(self):
        self.recovered_hook += 1


def make():
    sim = Simulator()
    metrics = MetricsCollector()
    net = Network(sim, metrics, FixedLatency(1.0))
    return sim, metrics, net


def test_charge_records_load_per_mechanism():
    sim, metrics, net = make()
    node = Stub("n", sim, net)
    node.charge(2.0, Mechanism.NORMAL)
    node.charge(1.5, Mechanism.FAILURE)
    node.charge(0.5, Mechanism.NORMAL)
    assert metrics.node_load("n", Mechanism.NORMAL) == 2.5
    assert metrics.node_load("n", Mechanism.FAILURE) == 1.5
    assert metrics.node_load("n") == 4.0


def test_crash_and_recover_hooks_fire():
    sim, __, net = make()
    node = Stub("n", sim, net)
    node.crash()
    assert not node.is_up
    assert node.crashed_hook == 1
    node.recover()
    assert node.is_up
    assert node.recovered_hook == 1


def test_double_crash_rejected():
    sim, __, net = make()
    node = Stub("n", sim, net)
    node.crash()
    with pytest.raises(SimulationError):
        node.crash()


def test_recover_when_up_rejected():
    sim, __, net = make()
    node = Stub("n", sim, net)
    with pytest.raises(SimulationError):
        node.recover()


def test_crash_count_accumulates():
    sim, __, net = make()
    node = Stub("n", sim, net)
    for __i in range(3):
        node.crash()
        node.recover()
    assert node.crash_count == 3


def test_messages_received_counter():
    sim, __, net = make()
    a = Stub("a", sim, net)
    b = Stub("b", sim, net)
    a.send("b", "Ping", {}, Mechanism.NORMAL)
    a.send("b", "Ping", {}, Mechanism.NORMAL)
    sim.run()
    assert b.messages_received == 2


def test_recover_drains_parked_messages_through_handler():
    sim, __, net = make()
    received = []

    class Catcher(Node):
        def handle_message(self, message):
            received.append(message.payload["n"])

    a = Stub("a", sim, net)
    b = Catcher("b", sim, net)
    b.crash()
    a.send("b", "Ping", {"n": 7}, Mechanism.NORMAL)
    sim.run()
    assert received == []
    b.recover()
    assert received == [7]
