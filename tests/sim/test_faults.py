"""Unit tests for the deterministic fault-injection layer."""

import pytest

from repro.errors import SimulationError
from repro.sim.faults import (
    Crash,
    FaultInjector,
    FaultPlan,
    Outage,
    Stall,
    random_plan,
)
from repro.sim.kernel import Simulator
from repro.sim.metrics import Mechanism, MetricsCollector
from repro.sim.network import FixedLatency, Network
from repro.sim.node import Node
from repro.sim.rng import SimRandom


class Recorder(Node):
    def __init__(self, name, sim, net):
        super().__init__(name, sim, net)
        self.received = []

    def handle_message(self, message):
        self.received.append((self.simulator.now, message))


class FixedBackoff:
    """Duck-typed retry policy: constant backoff, optional attempt budget."""

    def __init__(self, delay=0.5, max_attempts=None):
        self.delay = delay
        self.max_attempts = max_attempts

    def backoff(self, attempt, rng):
        if self.max_attempts is not None and attempt >= self.max_attempts:
            return None
        return self.delay


def make_faulty(plan, seed=1, latency=1.0, retry=None):
    sim = Simulator()
    net = Network(sim, MetricsCollector(), FixedLatency(latency))
    injector = FaultInjector(plan, SimRandom(seed), retry=retry)
    injector.install(net)
    a = Recorder("a", sim, net)
    b = Recorder("b", sim, net)
    return sim, net, injector, a, b


# -- FaultPlan serialization -------------------------------------------------


def test_plan_spec_round_trips():
    plans = [
        FaultPlan(),
        FaultPlan(drop_p=0.05, dup_p=0.03, delay_p=0.1, reorder_p=0.07),
        FaultPlan(drop_p=1.0, drop_limit=2, interfaces=("Ping", "Probe")),
        FaultPlan(delay_p=0.5, delay_factor=8.0, reorder_p=0.2,
                  reorder_window=5.0),
        FaultPlan(crashes=(Crash("agent-003", 40.0, 25.0),),
                  stalls=(Stall("engine", 10.5, 3.25),),
                  outages=(Outage("a", "*", 10.0, 30.0),)),
    ]
    for plan in plans:
        assert FaultPlan.parse(plan.to_spec()) == plan


def test_empty_plan_spec_is_none():
    assert FaultPlan().to_spec() == "none"
    assert FaultPlan.parse("none") == FaultPlan()
    assert FaultPlan.parse("") == FaultPlan()
    assert FaultPlan().is_noop


def test_plan_parse_rejects_bad_specs():
    for spec in ("bogus", "drop", "frob=1", "crash=engine",
                 "outage=a@3+4"):
        with pytest.raises(SimulationError):
            FaultPlan.parse(spec)


def test_plan_validation():
    with pytest.raises(SimulationError):
        FaultPlan(drop_p=1.5)
    with pytest.raises(SimulationError):
        FaultPlan(delay_factor=0.5)
    with pytest.raises(SimulationError):
        FaultPlan(crashes=(Crash("a", 1.0, 0.0),))
    with pytest.raises(SimulationError):
        FaultPlan(outages=(Outage("a", "b", 5.0, 5.0),))


def test_plan_targets_interface_filter():
    plan = FaultPlan(drop_p=1.0, interfaces=("Probe",))
    assert plan.targets("Probe")
    assert not plan.targets("Ping")
    assert FaultPlan(drop_p=1.0).targets("anything")


def test_plan_without_and_dimensions():
    plan = FaultPlan(drop_p=0.1, dup_p=0.05,
                     crashes=(Crash("a", 5.0, 2.0), Crash("b", 9.0, 1.0)),
                     stalls=(Stall("b", 3.0, 1.0),))
    # Events come before probabilities (most impactful first).
    assert plan.dimensions() == [
        "crashes[0]", "crashes[1]", "stalls[0]", "drop_p", "dup_p",
    ]
    assert plan.without("crashes[0]").crashes == (Crash("b", 9.0, 1.0),)
    assert plan.without("crashes").crashes == ()
    assert plan.without("drop_p").drop_p == 0.0
    with pytest.raises(SimulationError):
        plan.without("frobnicate")


def test_outage_wildcard_matching():
    outage = Outage("agent-001", "*", 10.0, 30.0)
    assert outage.matches("agent-001", "engine")
    assert outage.matches("engine", "agent-001")  # bidirectional
    assert not outage.matches("engine", "agent-002")


# -- the fault pipeline ------------------------------------------------------


def test_drop_then_retransmit_delivers():
    plan = FaultPlan(drop_p=1.0, drop_limit=1)
    sim, __, injector, a, b = make_faulty(plan, retry=FixedBackoff(0.5))
    a.send("b", "Ping", {"n": 1}, Mechanism.NORMAL)
    sim.run()
    # First attempt dropped, retransmitted after 0.5, then delivered.
    assert injector.stats.dropped == 1
    assert injector.stats.retransmits == 1
    assert injector.stats.lost == 0
    assert [(t, m.payload["n"]) for t, m in b.received] == [(1.5, 1)]


def test_drop_without_retry_is_lost():
    plan = FaultPlan(drop_p=1.0)
    sim, __, injector, a, b = make_faulty(plan, retry=None)
    a.send("b", "Ping", {}, Mechanism.NORMAL)
    sim.run()
    assert b.received == []
    assert injector.stats.lost == 1
    assert [m.interface for m in injector.lost] == ["Ping"]


def test_retry_budget_exhaustion_loses_message():
    plan = FaultPlan(drop_p=1.0)
    sim, __, injector, a, b = make_faulty(
        plan, retry=FixedBackoff(0.5, max_attempts=3))
    a.send("b", "Ping", {}, Mechanism.NORMAL)
    sim.run()
    # Attempts 1 and 2 retransmit; attempt 3 exhausts the budget.
    assert injector.stats.dropped == 3
    assert injector.stats.retransmits == 2
    assert injector.stats.lost == 1
    assert b.received == []


def test_drop_limit_caps_total_drops():
    plan = FaultPlan(drop_p=1.0, drop_limit=1)
    sim, __, injector, a, b = make_faulty(plan, retry=None)
    a.send("b", "Ping", {"n": 1}, Mechanism.NORMAL)
    a.send("b", "Ping", {"n": 2}, Mechanism.NORMAL)
    sim.run()
    assert injector.stats.dropped == 1
    assert [m.payload["n"] for __, m in b.received] == [2]


def test_duplicate_suppressed_on_delivery():
    plan = FaultPlan(dup_p=1.0)
    sim, __, injector, a, b = make_faulty(plan)
    a.send("b", "Ping", {}, Mechanism.NORMAL)
    sim.run()
    # Two copies scheduled, exactly one delivered.
    assert injector.stats.duplicated == 1
    assert injector.stats.suppressed == 1
    assert len(b.received) == 1


def test_delay_spike_multiplies_latency():
    plan = FaultPlan(delay_p=1.0, delay_factor=4.0)
    sim, __, injector, a, b = make_faulty(plan, latency=1.0)
    a.send("b", "Ping", {}, Mechanism.NORMAL)
    sim.run()
    assert injector.stats.delayed == 1
    assert [t for t, __ in b.received] == [4.0]


def test_reorder_jitter_breaks_fifo():
    plan = FaultPlan(reorder_p=1.0, reorder_window=10.0)
    sim, __, injector, a, b = make_faulty(plan, seed=3)
    for n in range(6):
        a.send("b", "Ping", {"n": n}, Mechanism.NORMAL)
    sim.run()
    assert injector.stats.reordered == 6
    assert len(b.received) == 6
    order = [m.payload["n"] for __, m in b.received]
    assert order != sorted(order)  # seed 3 actually reorders


def test_interface_filter_scopes_probabilistic_faults():
    plan = FaultPlan(drop_p=1.0, interfaces=("Lossy",))
    sim, __, injector, a, b = make_faulty(plan, retry=None)
    a.send("b", "Lossy", {}, Mechanism.NORMAL)
    a.send("b", "Clean", {}, Mechanism.NORMAL)
    sim.run()
    assert injector.stats.lost == 1
    assert [m.interface for __, m in b.received] == ["Clean"]


def test_outage_holds_messages_until_heal():
    plan = FaultPlan(outages=(Outage("a", "b", 0.0, 10.0),))
    sim, __, injector, a, b = make_faulty(plan, latency=1.0)
    a.send("b", "Ping", {}, Mechanism.NORMAL)
    sim.run()
    assert injector.stats.held == 1
    assert [t for t, __ in b.received] == [11.0]  # heal at 10 + latency


def test_stall_defers_deliveries_to_window_end():
    plan = FaultPlan(stalls=(Stall("b", 0.5, 2.0),))
    sim, __, injector, a, b = make_faulty(plan, latency=1.0)
    a.send("b", "Ping", {}, Mechanism.NORMAL)  # would arrive at 1.0
    sim.run()
    assert injector.stats.stalled == 1
    assert [t for t, __ in b.received] == [2.5]


def test_armed_crash_parks_and_recovery_flushes():
    plan = FaultPlan(crashes=(Crash("b", 2.0, 3.0),))
    sim, net, injector, a, b = make_faulty(plan, latency=1.0)
    injector.arm(sim)
    a.send("b", "Ping", {"n": 1}, Mechanism.NORMAL)  # arrives at 1, before crash
    sim.schedule_at(2.5, a.send, "b", "Ping", {"n": 2}, Mechanism.NORMAL)
    sim.run()
    assert injector.stats.crashes == 1
    assert injector.stats.recoveries == 1
    # Second message parked while down, flushed at recovery time 5.0.
    assert [(t, m.payload["n"]) for t, m in b.received] == [(1.0, 1), (5.0, 2)]


def test_armed_crash_skips_already_down_node():
    plan = FaultPlan(crashes=(Crash("b", 2.0, 3.0), Crash("b", 3.0, 1.0)))
    sim, __, injector, a, b = make_faulty(plan)
    injector.arm(sim)
    sim.run()
    # The overlapping second crash is a no-op; so is its early recovery.
    assert injector.stats.crashes == 1
    assert injector.stats.recoveries == 1
    assert b.is_up


def test_crash_discards_deferred_continuations():
    plan = FaultPlan(crashes=(Crash("b", 1.0, 1.0),))
    sim, __, injector, a, b = make_faulty(plan)
    injector.arm(sim)
    fired = []
    b.schedule_causal(2.5, fired.append, "volatile")  # fires after recovery
    b.schedule_causal(0.5, fired.append, "early")     # fires before the crash
    sim.run()
    # The post-recovery callback belongs to the old crash epoch: discarded.
    assert fired == ["early"]
    assert injector.stats.dead_continuations == 1


def test_install_twice_rejected():
    sim, net, injector, __, ___ = make_faulty(FaultPlan())
    with pytest.raises(SimulationError):
        FaultInjector(FaultPlan(), SimRandom(2)).install(net)


def test_on_fault_hook_sees_decisions():
    plan = FaultPlan(drop_p=1.0)
    sim, __, injector, a, b = make_faulty(plan, retry=None)
    events = []
    injector.on_fault = lambda time, kind, **detail: events.append(kind)
    a.send("b", "Ping", {}, Mechanism.NORMAL)
    sim.run()
    assert events == ["lost"]


def test_fault_runs_are_bit_reproducible():
    def run_once():
        plan = FaultPlan(drop_p=0.3, dup_p=0.2, delay_p=0.3, reorder_p=0.3)
        sim, __, injector, a, b = make_faulty(
            plan, seed=11, retry=FixedBackoff(0.25, max_attempts=4))
        for n in range(20):
            a.send("b", "Ping", {"n": n}, Mechanism.NORMAL)
        sim.run()
        return ([(t, m.payload["n"]) for t, m in b.received],
                injector.stats.as_dict())

    assert run_once() == run_once()


# -- random_plan -------------------------------------------------------------


def test_random_plan_is_reproducible():
    nodes = ["engine", "agent-001", "agent-002"]
    plan = random_plan(42, crash_nodes=nodes, stall_nodes=nodes)
    assert plan == random_plan(42, crash_nodes=nodes, stall_nodes=nodes)
    assert plan != random_plan(43, crash_nodes=nodes, stall_nodes=nodes)
    assert len(plan.crashes) == 1 and plan.crashes[0].node in nodes
    assert len(plan.stalls) == 1 and plan.stalls[0].node in nodes
    # The plan replays through its own spec string.
    assert FaultPlan.parse(plan.to_spec()) == plan


def test_random_plan_profile_overrides():
    plan = random_plan(7, crash_nodes=["engine"], stall_nodes=["engine"],
                       profile={"drop_p": 0.5, "crashes": 2, "stalls": 0,
                                "outages": 1})
    assert plan.drop_p == 0.5
    assert len(plan.crashes) == 2
    assert plan.stalls == ()
    assert len(plan.outages) == 1 and plan.outages[0].b == "*"
