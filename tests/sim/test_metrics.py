"""Unit tests for the metrics collector."""

from repro.sim.metrics import Mechanism, MetricsCollector


def test_record_and_total_messages():
    m = MetricsCollector()
    m.record_message(Mechanism.NORMAL, "StepExecute")
    m.record_message(Mechanism.NORMAL, "StepExecute")
    m.record_message(Mechanism.ABORT, "WorkflowAbort")
    assert m.total_messages() == 3
    assert m.total_messages(Mechanism.NORMAL) == 2
    assert m.total_messages(Mechanism.ABORT) == 1


def test_interface_messages_sums_across_mechanisms():
    m = MetricsCollector()
    m.record_message(Mechanism.NORMAL, "StepExecute")
    m.record_message(Mechanism.FAILURE, "StepExecute")
    assert m.interface_messages("StepExecute") == 2


def test_node_load_queries():
    m = MetricsCollector()
    m.record_load("engine", Mechanism.NORMAL, 3.0)
    m.record_load("engine", Mechanism.FAILURE, 1.0)
    m.record_load("agent-1", Mechanism.NORMAL, 0.5)
    assert m.node_load("engine") == 4.0
    assert m.node_load("engine", Mechanism.NORMAL) == 3.0
    assert m.nodes() == ["agent-1", "engine"]


def test_max_and_mean_node_load():
    m = MetricsCollector()
    m.record_load("a", Mechanism.NORMAL, 4.0)
    m.record_load("b", Mechanism.NORMAL, 2.0)
    assert m.max_node_load(Mechanism.NORMAL) == 4.0
    assert m.mean_node_load(Mechanism.NORMAL, ["a", "b"]) == 3.0


def test_mean_node_load_includes_idle_nodes():
    m = MetricsCollector()
    m.record_load("a", Mechanism.NORMAL, 4.0)
    assert m.mean_node_load(Mechanism.NORMAL, ["a", "idle-1", "idle-2", "idle-3"]) == 1.0


def test_per_instance_normalization():
    m = MetricsCollector()
    m.instances_started = 4
    for __ in range(8):
        m.record_message(Mechanism.NORMAL, "StepExecute")
    assert m.per_instance_messages(Mechanism.NORMAL) == 2.0


def test_per_instance_with_zero_instances_is_zero():
    m = MetricsCollector()
    m.record_message(Mechanism.NORMAL, "X")
    assert m.per_instance_messages(Mechanism.NORMAL) == 0.0


def test_work_units_by_kind():
    m = MetricsCollector()
    m.record_work("agent-1", "execute", 5.0)
    m.record_work("agent-2", "execute", 3.0)
    m.record_work("agent-1", "compensate", 2.0)
    assert m.total_work("execute") == 8.0
    assert m.total_work("compensate") == 2.0
    assert m.total_work() == 10.0


def test_snapshot_is_immutable_copy():
    m = MetricsCollector()
    m.record_message(Mechanism.NORMAL, "X")
    snap = m.snapshot()
    m.record_message(Mechanism.NORMAL, "X")
    assert snap.messages_for(Mechanism.NORMAL) == 1
    assert m.total_messages(Mechanism.NORMAL) == 2


def test_reset_clears_everything():
    m = MetricsCollector()
    m.record_message(Mechanism.NORMAL, "X")
    m.record_load("n", Mechanism.NORMAL, 1.0)
    m.record_work("n", "execute", 1.0)
    m.instances_started = 5
    m.reset()
    assert m.total_messages() == 0
    assert m.node_load("n") == 0.0
    assert m.total_work() == 0.0
    assert m.instances_started == 0


def test_max_node_load_empty_pool():
    m = MetricsCollector()
    assert m.max_node_load(Mechanism.NORMAL) == 0.0


def test_merge_folds_counts_and_instances():
    a, b = MetricsCollector(), MetricsCollector()
    a.record_message(Mechanism.NORMAL, "StepExecute")
    b.record_message(Mechanism.NORMAL, "StepExecute")
    b.record_message(Mechanism.ABORT, "WorkflowAbort")
    b.record_load("agent-1", Mechanism.NORMAL, 2.0)
    b.record_work("agent-1", "execute", 3.0)
    b.instances_started = 4
    b.instances_committed = 3
    b.instances_aborted = 1
    result = a.merge(b)
    assert result is a  # chains
    assert a.total_messages(Mechanism.NORMAL) == 2
    assert a.total_messages(Mechanism.ABORT) == 1
    assert a.node_load("agent-1") == 2.0
    assert a.total_work("execute") == 3.0
    assert a.instances_started == 4
    assert a.instances_committed == 3
    assert a.instances_aborted == 1


def test_merge_does_not_mutate_other():
    a, b = MetricsCollector(), MetricsCollector()
    b.record_message(Mechanism.NORMAL, "X")
    a.merge(b)
    a.record_message(Mechanism.NORMAL, "X")
    assert b.total_messages() == 1


def test_merge_chain_combines_fleet():
    fleet = MetricsCollector()
    parts = []
    for node in ("a", "b", "c"):
        m = MetricsCollector()
        m.record_load(node, Mechanism.NORMAL, 1.0)
        parts.append(m)
    fleet.merge(parts[0]).merge(parts[1]).merge(parts[2])
    assert fleet.nodes() == ["a", "b", "c"]
