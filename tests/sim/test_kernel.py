"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for label in ("a", "b", "c"):
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_schedule_from_within_event():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.run() == 0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(i + 1.0, fired.append, i)
    assert sim.run(max_events=2) == 2
    assert fired == [0, 1]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_pending_counts_only_live_events():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    handle.cancel()
    assert sim.pending == 1


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for i in range(3):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_processed == 3


def test_run_until_between_cancelled_events():
    """``until`` landing in a gap of cancelled entries must stop the clock
    at ``until`` without firing anything later — the lazy-deletion path
    (shared by ``step`` and ``_peek_time``) keeps the queue accounting
    consistent while ``run`` is iterating."""
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "cancelled-1").cancel()
    sim.schedule(4.0, fired.append, "cancelled-2").cancel()
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    assert sim.pending == 1
    sim.run()
    assert fired == ["a", "b"]


def test_until_with_only_cancelled_events_left():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "x").cancel()
    sim.schedule(3.0, fired.append, "y").cancel()
    assert sim.run(until=5.0) == 0
    assert fired == []
    assert sim.now == 5.0
    assert sim.pending == 0


def test_pending_is_consistent_after_compaction():
    sim = Simulator()
    live = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    garbage = [sim.schedule(float(i + 1) + 0.5, lambda: None)
               for i in range(3 * Simulator.COMPACT_MIN)]
    for handle in garbage:
        handle.cancel()  # crosses the compaction threshold
    assert sim.pending == len(live)
    # The heap actually shed the garbage: whatever cancelled entries remain
    # are below the compaction threshold, not the 192 we scheduled.
    assert len(sim._queue) - len(live) < 2 * Simulator.COMPACT_MIN
    assert sim.run() == len(live)


def test_compaction_preserves_fifo_order():
    sim = Simulator()
    fired = []
    for i in range(Simulator.COMPACT_MIN):
        sim.schedule(1.0, fired.append, i)
    doomed = [sim.schedule(0.5, fired.append, "dead")
              for __ in range(3 * Simulator.COMPACT_MIN)]
    for handle in doomed:
        handle.cancel()
    sim.run()
    assert fired == list(range(Simulator.COMPACT_MIN))


def test_cancel_after_firing_does_not_corrupt_pending():
    sim = Simulator()
    handles = []
    handles.append(sim.schedule(1.0, lambda: None))
    sim.schedule(2.0, lambda: None)
    sim.run()
    handles[0].cancel()  # late cancel of an already-fired event: no-op
    assert sim.pending == 0


def test_double_cancel_counts_once():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.pending == 1


def test_zero_delay_event_fires_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [1.0]
