"""Unit tests for the reliable message network."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.metrics import Mechanism, MetricsCollector
from repro.sim.network import FixedLatency, Network, UniformLatency
from repro.sim.node import Node
from repro.sim.rng import SimRandom


class Recorder(Node):
    def __init__(self, name, sim, net):
        super().__init__(name, sim, net)
        self.received = []

    def handle_message(self, message):
        self.received.append(message)


def make_net(latency=1.0):
    sim = Simulator()
    metrics = MetricsCollector()
    net = Network(sim, metrics, FixedLatency(latency))
    return sim, metrics, net


def test_message_delivered_after_latency():
    sim, __, net = make_net(latency=2.0)
    a = Recorder("a", sim, net)
    b = Recorder("b", sim, net)
    a.send("b", "Ping", {"k": 1}, Mechanism.NORMAL)
    sim.run()
    assert len(b.received) == 1
    assert sim.now == 2.0
    assert b.received[0].payload == {"k": 1}


def test_messages_counted_by_mechanism_and_interface():
    sim, metrics, net = make_net()
    a = Recorder("a", sim, net)
    Recorder("b", sim, net)
    a.send("b", "StepExecute", {}, Mechanism.NORMAL)
    a.send("b", "HaltThread", {}, Mechanism.FAILURE)
    a.send("b", "HaltThread", {}, Mechanism.FAILURE)
    sim.run()
    assert metrics.total_messages(Mechanism.NORMAL) == 1
    assert metrics.total_messages(Mechanism.FAILURE) == 2
    assert metrics.interface_messages("HaltThread") == 2


def test_self_send_rejected():
    sim, __, net = make_net()
    a = Recorder("a", sim, net)
    with pytest.raises(SimulationError):
        a.send("a", "Ping", {}, Mechanism.NORMAL)


def test_send_to_unknown_node_rejected():
    sim, __, net = make_net()
    a = Recorder("a", sim, net)
    with pytest.raises(SimulationError):
        a.send("ghost", "Ping", {}, Mechanism.NORMAL)


def test_duplicate_node_name_rejected():
    sim, __, net = make_net()
    Recorder("a", sim, net)
    with pytest.raises(SimulationError):
        Recorder("a", sim, net)


def test_messages_park_while_node_down_and_flush_on_recover():
    sim, __, net = make_net()
    a = Recorder("a", sim, net)
    b = Recorder("b", sim, net)
    b.crash()
    a.send("b", "Ping", {"n": 1}, Mechanism.NORMAL)
    a.send("b", "Ping", {"n": 2}, Mechanism.NORMAL)
    sim.run()
    assert b.received == []
    assert net.parked_count("b") == 2
    b.recover()
    assert [m.payload["n"] for m in b.received] == [1, 2]
    assert net.parked_count("b") == 0


def test_parked_messages_survive_in_counters():
    sim, metrics, net = make_net()
    a = Recorder("a", sim, net)
    b = Recorder("b", sim, net)
    b.crash()
    a.send("b", "Ping", {}, Mechanism.NORMAL)
    sim.run()
    # The message was sent (and counted) even though not yet delivered.
    assert metrics.total_messages(Mechanism.NORMAL) == 1


def test_is_up_reflects_node_state():
    sim, __, net = make_net()
    a = Recorder("a", sim, net)
    assert net.is_up("a")
    a.crash()
    assert not net.is_up("a")


def test_uniform_latency_within_bounds():
    sim = Simulator()
    net = Network(sim, MetricsCollector(),
                  UniformLatency(SimRandom(3).stream("lat"), 0.5, 1.5))
    a = Recorder("a", sim, net)
    b = Recorder("b", sim, net)
    for __ in range(10):
        a.send("b", "Ping", {}, Mechanism.NORMAL)
    sim.run()
    assert len(b.received) == 10
    assert 0.5 <= sim.now <= 1.5


def test_payload_is_copied_not_aliased():
    sim, __, net = make_net()
    a = Recorder("a", sim, net)
    b = Recorder("b", sim, net)
    payload = {"k": 1}
    a.send("b", "Ping", payload, Mechanism.NORMAL)
    payload["k"] = 999  # mutate after send
    sim.run()
    assert b.received[0].payload["k"] == 1


def test_message_ids_are_unique_and_increasing():
    sim, __, net = make_net()
    Recorder("a", sim, net)
    Recorder("b", sim, net)
    m1 = net.send("a", "b", "Ping", {}, Mechanism.NORMAL)
    m2 = net.send("a", "b", "Ping", {}, Mechanism.NORMAL)
    assert m2.msg_id > m1.msg_id


def test_negative_latency_rejected():
    with pytest.raises(SimulationError):
        FixedLatency(-1.0)


class ScriptedLatency:
    """Per-send latencies popped from a script; exposes out-of-order arrival."""

    def __init__(self, delays):
        self.delays = list(delays)

    def delay(self, src, dst):
        return self.delays.pop(0)


def test_flush_parked_restores_send_order_despite_arrival_order():
    """Park -> restart -> flush, interleaved with an in-flight delivery.

    Varying latency makes parked messages *arrive* out of send order; the
    flush must still hand them to the node in msg_id (send) order, and a
    message still in flight at recovery time is delivered on its own
    schedule afterwards.
    """
    sim = Simulator()
    net = Network(sim, MetricsCollector(), ScriptedLatency([5.0, 1.0, 10.0]))
    a = Recorder("a", sim, net)
    b = Recorder("b", sim, net)
    b.crash()
    a.send("b", "Ping", {"n": 1}, Mechanism.NORMAL)  # arrives (parks) at 5
    a.send("b", "Ping", {"n": 2}, Mechanism.NORMAL)  # arrives (parks) at 1
    a.send("b", "Ping", {"n": 3}, Mechanism.NORMAL)  # in flight until 10
    sim.schedule_at(6.0, b.recover)
    sim.run()
    # Parked order was [2, 1] by arrival; flush re-sorts to send order,
    # then the in-flight message lands after recovery untouched.
    assert [m.payload["n"] for m in b.received] == [1, 2, 3]


def test_flush_parked_rejects_down_node():
    sim, __, net = make_net()
    b = Recorder("b", sim, net)
    b.is_up = False
    with pytest.raises(SimulationError):
        net.flush_parked("b")
