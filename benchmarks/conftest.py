"""Benchmark provenance: stamp run metadata into benchmark results.

Each benchmark that drives :func:`harness.run_architecture` gets the
metadata of its runs (seed, parameter point, wall time, commit counts,
message totals, trace summary) attached to ``benchmark.extra_info``, and
the complete run log is added to the ``--benchmark-json`` output under
the ``crew_runs`` key.
"""

from __future__ import annotations

import pytest

import harness


@pytest.fixture(autouse=True)
def _stamp_run_metadata(request):
    """Attach the runs performed by this test to its benchmark record."""
    start = len(harness.RUN_LOG)
    yield
    benchmark = getattr(request.node, "funcargs", {}).get("benchmark")
    if benchmark is None:
        return
    runs = harness.RUN_LOG[start:]
    if runs:
        benchmark.extra_info["crew_runs"] = runs


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Make ``--benchmark-json`` files self-describing."""
    output_json["crew_runs"] = list(harness.RUN_LOG)
    output_json["crew_environment"] = harness.environment_metadata()
