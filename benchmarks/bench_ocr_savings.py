"""OCR ablation: opportunistic compensation/re-execution vs the Saga baseline.

Section 6's opening analysis: "it is not expensive to use this strategy
... in general the benefits from the OCR scheme is considerable while
paying a small overhead."  This benchmark quantifies the claim on a
failure-laden workload in which *every* instance fails once and rolls back
``r`` steps.  The same workload runs at increasing values of ``pr`` (the
paper's "probability of step re-execution": the fraction of rolled back
steps whose CR condition forces a real re-execution) and once with every
step forced to ``AlwaysReexecute`` — the Sagas-style compensate-everything
baseline the paper calls "an overkill in several practical scenarios".
"""

import pytest

from repro.analysis.report import format_table
from repro.core.programs import ConstantProgram, FailEveryNth
from repro.model.policies import AlwaysReexecute
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.params import PAPER_DEFAULTS

from harness import build_system

INSTANCES = 8
SCHEMAS = 2


def run_variant(pr: float, saga: bool = False, seed: int = 11):
    """Run the forced-failure workload; returns (exec work, comp work, commits)."""
    params = PAPER_DEFAULTS.evolve(c=SCHEMAS, i=INSTANCES, pf=0.2, pr=pr,
                                   pi=0.0, pa=0.0)
    generator = WorkloadGenerator(params, seed=seed, coordination=False)
    workload = generator.build()
    if saga:
        # Saga baseline: every rolled-back step fully compensates and
        # re-executes, no reuse ever.
        for schema in workload.schemas:
            for step in schema.cr_policies:
                schema.cr_policies[step] = AlwaysReexecute()  # type: ignore[index]
    system = build_system("distributed", params, seed=seed)
    generator.install(system, workload)
    # Deterministic failure: the designated step fails on its first attempt
    # in every instance (instead of with probability pf).
    for schema in workload.schemas:
        failing = workload.failure_steps[schema.name]
        program_name = schema.steps[failing].program
        outputs = {
            out: f"{schema.name}.{failing}.{out}"
            for out in schema.steps[failing].outputs
        }
        system.register_program(
            program_name, FailEveryNth(ConstantProgram(outputs), {1})
        )
    generator.drive(system, workload, instances_per_schema=INSTANCES)
    system.run()
    metrics = system.metrics
    return (
        metrics.total_work("execute"),
        metrics.total_work("compensate"),
        metrics.instances_committed,
    )


@pytest.mark.benchmark(group="ocr")
def test_ocr_savings_vs_saga_baseline(benchmark):
    def sweep():
        rows = [("OCR pr=0.00", *run_variant(0.0))]
        rows.append(("OCR pr=0.25", *run_variant(0.25)))
        rows.append(("OCR pr=0.50", *run_variant(0.5)))
        rows.append(("Saga baseline", *run_variant(0.0, saga=True)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    saga_total = rows[-1][1] + rows[-1][2]
    print()
    print("OCR vs Saga — total program work, every instance fails once and "
          f"rolls back r={PAPER_DEFAULTS.r} steps "
          f"({SCHEMAS * INSTANCES} instances)")
    print(format_table(
        ["variant", "execute work", "compensate work", "total",
         "saving vs Saga"],
        [[label, f"{execute:.0f}", f"{compensate:.0f}",
          f"{execute + compensate:.0f}",
          f"{100 * (1 - (execute + compensate) / saga_total):.1f}%"]
         for label, execute, compensate, __ in rows],
    ))

    # Every variant commits every instance — OCR changes cost, not outcomes.
    for __, __e, __c, commits in rows:
        assert commits == SCHEMAS * INSTANCES

    totals = [execute + compensate for __, execute, compensate, __c in rows]
    # Work grows with pr and the Saga baseline is the most expensive.
    assert totals[0] < totals[1] <= totals[2] < totals[3]
    # Pure OCR (all reusable) saves substantially — the paper's
    # "considerable benefit" — here well over 20% of total work.
    assert totals[0] < 0.8 * saga_total
    # The Saga baseline never reuses: compensation work is maximal there.
    assert rows[-1][2] > rows[0][2]
