"""Observability overhead guard: the tracing-disabled path must stay cheap.

The causal-tracing layer is designed so that with tracing off the
per-message cost is "one integer increment and two ``is None`` checks"
(see :mod:`repro.sim.node`).  This benchmark pins that promise down: a
two-node ping-pong message loop runs once on the current transport stack
with *no* observability hooks injected (the tracing-disabled no-op path)
and once on a seed-equivalent stack whose ``send``/``receive`` bodies
predate the instrumentation entirely.  The no-op path must add **less
than 5%** wall-clock overhead to the message loop.

Timing uses the min-of-N estimator with interleaved variants, which is
robust against one-sided scheduler noise; the pytest-benchmark fixture
times the instrumented loop so the result lands in the ``--benchmark-json``
output stamped with the same provenance as the other bench files.
"""

import time

import pytest

from repro.sim.kernel import Simulator
from repro.sim.metrics import Mechanism
from repro.sim.network import FixedLatency, Message, Network
from repro.sim.node import Node

MESSAGES = 4000          # physical messages per loop run
REPEATS = 7              # min-of-N samples per variant
PAYLOAD = {"instance_id": "Bench-1", "seq": 0}


class PingPong(Node):
    """Minimal message-loop node: echoes until its reply budget runs out."""

    def __init__(self, name, simulator, network, peer, budget):
        super().__init__(name, simulator, network)
        self.peer = peer
        self.budget = budget

    def handle_message(self, message):
        if self.budget > 0:
            self.budget -= 1
            self.send(self.peer, "Ping", PAYLOAD, Mechanism.NORMAL)


class SeedNetwork(Network):
    """``Network.send`` as it was before causal instrumentation landed:
    no Lamport tick, no sender lookup, no causal hook."""

    def send(self, src, dst, interface, payload, mechanism):
        if dst not in self._nodes:
            raise KeyError(dst)
        message = Message(
            msg_id=next(self._msg_ids),
            src=src,
            dst=dst,
            interface=interface,
            mechanism=mechanism,
            payload=dict(payload),
            sent_at=self.simulator.now,
        )
        self.metrics.record_message(mechanism, interface)
        self.simulator.schedule(self.latency.delay(src, dst),
                                self._arrive, message)
        return message


class SeedPingPong(PingPong):
    """``Node.send``/``receive`` seed-equivalent bodies: no Lamport merge,
    no flight-recorder or causal-tracer checks."""

    def send(self, dst, interface, payload, mechanism):
        self.network.send(self.name, dst, interface, payload, mechanism)

    def receive(self, message):
        if not self.is_up:
            raise RuntimeError(f"message delivered to down node {self.name!r}")
        self.messages_received += 1
        if self._msg_counter is not None:
            self._msg_counter.inc()
        self.handle_message(message)


def run_loop(network_cls, node_cls):
    """Drive one ping-pong exchange of ``MESSAGES`` physical messages."""
    simulator = Simulator()
    network = network_cls(simulator, latency=FixedLatency(1.0))
    a = node_cls("a", simulator, network, peer="b", budget=MESSAGES // 2 - 1)
    node_cls("b", simulator, network, peer="a", budget=MESSAGES // 2)
    simulator.schedule(0.0, a.send, "b", "Ping", PAYLOAD, Mechanism.NORMAL)
    simulator.run()
    return network.delivered


def sample(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.mark.benchmark(group="obs-overhead")
def test_tracing_disabled_path_overhead_under_five_percent(benchmark):
    instrumented = lambda: run_loop(Network, PingPong)          # noqa: E731
    baseline = lambda: run_loop(SeedNetwork, SeedPingPong)      # noqa: E731

    # Both stacks must move the same number of physical messages.
    assert instrumented() == baseline() == MESSAGES

    inst_times, base_times = [], []
    for __ in range(REPEATS):                       # interleave the variants
        base_times.append(sample(baseline))
        inst_times.append(sample(instrumented))
    overhead = min(inst_times) / min(base_times) - 1.0

    benchmark.pedantic(instrumented, rounds=3, iterations=1)
    benchmark.extra_info["obs_overhead"] = {
        "messages": MESSAGES,
        "repeats": REPEATS,
        "baseline_best_s": min(base_times),
        "instrumented_best_s": min(inst_times),
        "overhead_fraction": overhead,
    }
    print(f"\ntracing-disabled message-loop overhead: {overhead * 100:+.2f}% "
          f"({MESSAGES} messages, best of {REPEATS})")
    assert overhead < 0.05, (
        f"tracing-disabled no-op path adds {overhead * 100:.2f}% "
        f">= 5% message-loop overhead vs the seed transport path"
    )
