"""Rule-engine microbenchmark: indexed firing vs the naive scan loop.

The hottest loop in the system is ``RuleEngine._pump``: every workflow
instance pumps once per posted event.  The naive engine (retained as
:class:`repro.rules.reference.NaiveRuleEngine`) re-sorts and rescans the
whole rule table on every pump — O(R log R) per event, O(R²) to drive an
R-rule instance — while the indexed engine touches only the rules whose
required-event sets just changed.

This benchmark posts one event per rule into a 200-rule schema (the
worst-case "one pump per event" pattern of real enactment) and measures
event-posting throughput for both engines.  The indexed engine must be
**≥3× faster**.  Run it two ways:

* ``pytest benchmarks/bench_rule_engine.py --benchmark-only`` — the usual
  pytest-benchmark flow with provenance in ``--benchmark-json``;
* ``python benchmarks/bench_rule_engine.py --json BENCH_rules.json`` — CI
  mode: writes the measured numbers for the committed-baseline regression
  check (``check_rules_baseline.py``).

Firing-order equivalence is asserted on every run before anything is
timed — a fast benchmark that fires different rules would be worthless.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.rules.engine import RuleEngine, RuleInstance
from repro.rules.events import step_done
from repro.rules.reference import NaiveRuleEngine

RULES = 200              # schema size named by the acceptance bar
REPEATS = 5              # min-of-N samples per engine
MIN_SPEEDUP = 3.0


class SyntheticCompiled:
    """Minimal CompiledSchema stand-in: rules are installed dynamically."""

    rule_templates = ()

    @staticmethod
    def condition_for(rule_id):
        return None


def build_engine(engine_cls, fired):
    engine = engine_cls(SyntheticCompiled(), fired.append, lambda: {})
    for k in range(RULES):
        engine.add_rule(RuleInstance(
            rule_id=f"r{k:04d}",
            kind="execute",
            step=f"S{k}",
            # Two-event requirement: the shared start token plus the step's
            # own trigger — the shape compiled step rules actually have.
            required=frozenset({"WF.S", step_done(f"T{k}")}),
        ))
    return engine


def drive(engine_cls):
    """Post one trigger per rule; returns (fired rule ids, elapsed seconds)."""
    fired = []
    engine = build_engine(engine_cls, fired)
    triggers = [step_done(f"T{k}") for k in range(RULES)]
    start = time.perf_counter()
    engine.post_event("WF.S", 0.0)
    for tick, token in enumerate(triggers):
        engine.post_event(token, float(tick + 1))
    elapsed = time.perf_counter() - start
    return [rule.rule_id for rule in fired], elapsed


def measure():
    """Interleaved min-of-N timing of both engines plus equivalence check."""
    indexed_fired, __ = drive(RuleEngine)
    naive_fired, __ = drive(NaiveRuleEngine)
    assert indexed_fired == naive_fired, "engines fired different sequences"
    assert len(indexed_fired) == RULES

    posts = RULES + 1
    naive_times, indexed_times = [], []
    for __ in range(REPEATS):
        naive_times.append(drive(NaiveRuleEngine)[1])
        indexed_times.append(drive(RuleEngine)[1])
    naive_eps = posts / min(naive_times)
    indexed_eps = posts / min(indexed_times)
    return {
        "schema_rules": RULES,
        "events_posted": posts,
        "repeats": REPEATS,
        "naive_events_per_sec": naive_eps,
        "indexed_events_per_sec": indexed_eps,
        "speedup": indexed_eps / naive_eps,
    }


def test_indexed_engine_at_least_3x_event_throughput(benchmark=None):
    numbers = measure()
    print(f"\nrule-engine event-posting throughput ({RULES} rules): "
          f"indexed {numbers['indexed_events_per_sec']:,.0f}/s vs "
          f"naive {numbers['naive_events_per_sec']:,.0f}/s "
          f"({numbers['speedup']:.1f}x)")
    if benchmark is not None and not isinstance(benchmark, dict):
        benchmark.extra_info["rule_engine"] = numbers
        benchmark.pedantic(lambda: drive(RuleEngine), rounds=3, iterations=1)
    assert numbers["speedup"] >= MIN_SPEEDUP, (
        f"indexed engine only {numbers['speedup']:.2f}x faster than the "
        f"naive scan loop (need >= {MIN_SPEEDUP}x)"
    )
    return numbers


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the measured numbers to FILE")
    args = parser.parse_args()
    numbers = test_indexed_engine_at_least_3x_event_throughput()
    if args.json:
        import harness

        numbers["environment"] = harness.environment_metadata()
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(numbers, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
