"""Derived figure: per-node scheduling load vs fleet size.

The paper has no result plots (Tables 4-6 are single-point evaluations),
but Section 6's scalability argument is a curve: per-node load under
distributed control falls as ``s/z`` while the central engine's stays at
``s`` regardless.  This benchmark sweeps ``z`` (agents) and ``e``
(engines) and prints the series the paper's argument implies.
"""

import pytest

from repro.analysis.report import format_table
from repro.sim.metrics import Mechanism

from harness import BENCH_PARAMS, run_architecture


@pytest.mark.benchmark(group="sweeps")
def test_sweep_load_vs_agents(benchmark):
    def sweep():
        series = []
        for z in (10, 25, 50, 100):
            params = BENCH_PARAMS.evolve(z=z, i=10)
            result = run_architecture("distributed", params=params)
            series.append((z, result.measured.load[Mechanism.NORMAL]))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Distributed control: per-agent load per instance vs z")
    print(format_table(
        ["z (agents)", "measured load (units of l)", "model s/z"],
        [[z, f"{load:.4f}", f"{BENCH_PARAMS.s / z:.4f}"] for z, load in series],
    ))
    loads = [load for __, load in series]
    # Monotone decreasing in fleet size: the scalability claim.
    assert all(a > b for a, b in zip(loads, loads[1:]))
    # Roughly inverse-linear: quadrupling z cuts load by >2x.
    assert loads[0] / loads[-1] > 2.0


@pytest.mark.benchmark(group="sweeps")
def test_sweep_load_vs_engines(benchmark):
    def sweep():
        series = []
        for e in (1, 2, 4, 8):
            params = BENCH_PARAMS.evolve(e=e, i=10)
            result = run_architecture("parallel", params=params)
            series.append((e, result.measured.load[Mechanism.NORMAL]))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Parallel control: per-engine load per instance vs e")
    print(format_table(
        ["e (engines)", "measured load (units of l)", "model s/e"],
        [[e, f"{load:.4f}", f"{BENCH_PARAMS.s / e:.4f}"] for e, load in series],
    ))
    loads = [load for __, load in series]
    assert all(a > b for a, b in zip(loads, loads[1:]))
    # e=1 degenerates to the centralized engine load (~s per instance).
    assert loads[0] == pytest.approx(BENCH_PARAMS.s, rel=0.3)
