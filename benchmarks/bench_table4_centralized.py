"""Table 4 reproduction: Load and Physical Messages in Centralized Control.

Regenerates the paper's Table 4 from simulation and checks the shape:
the measured normal-execution message count matches ``2·s·a`` exactly
(the protocol is message-for-message the paper's accounting), engine load
dominates all other mechanisms, and coordination costs zero messages.
"""

import pytest

from repro.analysis.model import centralized_model
from repro.analysis.report import render_architecture_table
from repro.sim.metrics import Mechanism

from harness import BENCH_PARAMS, run_architecture


@pytest.mark.benchmark(group="table4")
def test_table4_centralized(benchmark):
    result = benchmark.pedantic(
        lambda: run_architecture("centralized", coordination=False),
        rounds=1, iterations=1,
    )
    params = result.params
    measured = result.measured

    print()
    print(render_architecture_table(centralized_model(params)))
    print()
    print(result.report())

    # Exact: per-instance normal-execution messages = 2·s·a.
    assert measured.messages[Mechanism.NORMAL] == pytest.approx(
        2 * params.s * params.a, rel=0.02
    )
    # Failure handling traffic exists but is two orders below normal.
    assert 0 < measured.messages[Mechanism.FAILURE] < measured.messages[Mechanism.NORMAL] / 10
    # No coordination requirements installed -> zero coordination messages.
    assert measured.messages[Mechanism.COORDINATION] == 0
    # Engine navigation load per instance is on the order of s (units of l).
    assert measured.load[Mechanism.NORMAL] == pytest.approx(params.s, rel=0.25)
    assert result.committed + result.aborted == measured.instances


@pytest.mark.benchmark(group="table4")
def test_table4_centralized_with_coordination(benchmark):
    result = benchmark.pedantic(
        lambda: run_architecture("centralized", coordination=True),
        rounds=1, iterations=1,
    )
    measured = result.measured
    print()
    print(result.report())
    # The paper's headline: coordinated execution is FREE in messages under
    # centralized control, but costs engine load.
    assert measured.messages[Mechanism.COORDINATION] == 0
    assert measured.load[Mechanism.COORDINATION] > 0
