"""Table 6 reproduction: Load and Physical Messages in Distributed Control.

Checks the paper's Table 6 shape:

* normal execution exchanges at most ``s·a + f`` messages per instance
  (strictly fewer when a navigation hop stays on one agent — self-sends
  are local calls, not physical messages) and *fewer* than centralized
  control's ``2·s·a``;
* per-agent load is roughly ``s/z`` — two orders of magnitude below the
  central engine's;
* failure handling costs ``~(r+v)·pf·a`` messages: the rollback request,
  the HaltThread probes across the invalidated branch and the
  re-execution packets.
"""

import pytest

from repro.analysis.model import distributed_model
from repro.analysis.report import render_architecture_table
from repro.sim.metrics import Mechanism

from harness import BENCH_PARAMS, run_architecture


@pytest.mark.benchmark(group="table6")
def test_table6_distributed(benchmark):
    result = benchmark.pedantic(
        lambda: run_architecture("distributed", coordination=False),
        rounds=1, iterations=1,
    )
    params = result.params
    measured = result.measured

    print()
    print(render_architecture_table(distributed_model(params)))
    print()
    print(result.report())

    formula = params.s * params.a + params.f
    assert measured.messages[Mechanism.NORMAL] <= formula
    assert measured.messages[Mechanism.NORMAL] > formula * 0.6
    # Distributed wins normal-execution messages over centralized (32 < 60).
    assert measured.messages[Mechanism.NORMAL] < 2 * params.s * params.a
    # Per-agent load ~ s/z: at least an order of magnitude under central.
    assert measured.load[Mechanism.NORMAL] < params.s / 4
    # Failure handling messages in the (r+v)·pf·a ballpark.
    assert 0 < measured.messages[Mechanism.FAILURE] < 4 * (
        (params.r + params.v) * params.pf * params.a
    )
    assert result.committed + result.aborted == measured.instances


@pytest.mark.benchmark(group="table6")
def test_table6_distributed_with_coordination(benchmark):
    result = benchmark.pedantic(
        lambda: run_architecture("distributed", coordination=True),
        rounds=1, iterations=1,
    )
    measured = result.measured
    print()
    print(result.report())
    # Coordination requires real messages here (unlike centralized) ...
    assert measured.messages[Mechanism.COORDINATION] > 0
    # ... but fewer than the parallel broadcast scheme (the Table 7 middle
    # ranking for the coordinated column).
    par = run_architecture("parallel", coordination=True)
    assert measured.messages[Mechanism.COORDINATION] < \
        par.measured.messages[Mechanism.COORDINATION]
