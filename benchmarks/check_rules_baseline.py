"""CI gate: fail when rule-engine throughput regresses >10% vs baseline.

Usage::

    python benchmarks/bench_rule_engine.py --json BENCH_rules.json
    python benchmarks/check_rules_baseline.py BENCH_rules.json

Compares the measured indexed/naive speedup against the committed
``rules_baseline.json``.  The speedup ratio is used rather than absolute
events/sec because it is machine-portable: both engines run on the same
runner, so hardware differences cancel while a real regression in the
indexed hot path (index maintenance, ready-heap discipline, pump loop)
shows up directly.
"""

from __future__ import annotations

import json
import pathlib
import sys

BASELINE = pathlib.Path(__file__).with_name("rules_baseline.json")


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_rules_baseline.py BENCH_rules.json",
              file=sys.stderr)
        return 2
    measured = json.loads(pathlib.Path(argv[0]).read_text(encoding="utf-8"))
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    if measured["schema_rules"] != baseline["schema_rules"]:
        print(f"error: schema size changed "
              f"({measured['schema_rules']} vs baseline "
              f"{baseline['schema_rules']}); recommit the baseline",
              file=sys.stderr)
        return 2
    floor = baseline["speedup"] * (1.0 - baseline["tolerance"])
    print(f"rule-engine speedup: measured {measured['speedup']:.1f}x, "
          f"baseline {baseline['speedup']:.1f}x, floor {floor:.1f}x")
    if measured["speedup"] < floor:
        print(f"FAIL: rule-engine throughput regressed "
              f">{baseline['tolerance']:.0%} below the committed baseline",
              file=sys.stderr)
        return 1
    print("OK: within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
