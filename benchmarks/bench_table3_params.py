"""Table 3 reproduction: Parameters used in Analysis.

Renders the parameter table (ranges + the calibrated defaults) and
verifies the calibration algebra: the defaults chosen here are the unique
readings that reproduce the paper's normalized values in Tables 4-6.
"""

import pytest

from repro.analysis.report import format_table
from repro.workloads.params import PAPER_DEFAULTS, TABLE3_RANGES

LABELS = {
    "s": "Number of Steps per Workflow",
    "c": "Number of Workflow Schemas",
    "i": "Number of Concurrent Instances per Schema",
    "e": "Number of Engines",
    "z": "Number of Agents",
    "a": "Number of Eligible Agents per Step",
    "d": "Number of Conflicting Definitions per Step",
    "r": "Number of Steps Rolled Back on a Failure",
    "v": "Number of Steps to be Invalidated on a Step Failure",
    "f": "Number of Final Steps in a Workflow",
    "w": "Number of Steps Compensated on a Workflow Abort",
    "me": "Number of Steps/WF needing Mutual Exclusion",
    "ro": "Number of Steps/WF needing Relative Ordering",
    "rd": "Number of Steps/WF having Rollback Dependency",
    "pf": "Probability of Logical Step Failure",
    "pi": "Probability of Workflow Input Change",
    "pa": "Probability of Workflow Abort",
    "pr": "Probability of Step Re-execution",
}


@pytest.mark.benchmark(group="table3")
def test_table3_parameters(benchmark):
    def render():
        rows = []
        for symbol, (low, high) in TABLE3_RANGES.items():
            rows.append([
                LABELS[symbol], symbol, f"{low:g} - {high:g}",
                f"{getattr(PAPER_DEFAULTS, symbol):g}",
            ])
        return format_table(
            ["Parameter", "Symbol", "Value Range", "Calibrated Default"], rows
        )

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    print()
    print("Parameters used in Analysis (Table 3)")
    print(table)

    p = PAPER_DEFAULTS
    # Calibration identities (see repro/workloads/params.py).
    assert 2 * p.s * p.a == 60
    assert p.s * p.a + p.f == 32
    assert (p.r + p.v) * p.pf * p.a == pytest.approx(1.8)
    assert p.coordination_degree * p.a * p.d * p.s == 150
