"""Derived figure: coordination messages vs coordination degree.

Section 6's architecture recommendation hinges on how message counts grow
with the number of governed steps (``me + ro + rd``).  This sweep varies
the coordination degree and prints, per architecture, the measured
per-instance coordination messages — making the Table 7 crossover
("in the unlikely case that several steps have coordinated execution
requirements then central ... control is preferable") visible as a curve.
"""

import pytest

from repro.analysis.report import format_table
from repro.sim.metrics import Mechanism

from harness import BENCH_PARAMS, run_architecture

#: (ro, me, rd) mixes of increasing degree.
DEGREES = [(1, 0, 0), (2, 2, 1), (4, 4, 2)]


@pytest.mark.benchmark(group="sweeps")
def test_sweep_coordination_messages(benchmark):
    def sweep():
        table = []
        for ro, me, rd in DEGREES:
            params = BENCH_PARAMS.evolve(ro=ro, me=me, rd=rd, i=10)
            row = {"degree": ro + me + rd}
            for architecture in ("centralized", "parallel", "distributed"):
                result = run_architecture(architecture, params=params,
                                          coordination=True)
                row[architecture] = (
                    result.measured.messages[Mechanism.COORDINATION]
                )
            table.append(row)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Coordination messages per instance vs coordination degree (me+ro+rd)")
    print(format_table(
        ["me+ro+rd", "centralized", "parallel", "distributed"],
        [[row["degree"], f"{row['centralized']:.2f}",
          f"{row['parallel']:.2f}", f"{row['distributed']:.2f}"]
         for row in table],
    ))
    for row in table:
        # Centralized control never spends messages on coordination.
        assert row["centralized"] == 0.0
        # Parallel's broadcast scheme is the most expensive of the three.
        assert row["parallel"] >= row["distributed"]
    # Costs grow with the coordination degree for the non-central schemes.
    assert table[-1]["parallel"] > table[0]["parallel"]
    assert table[-1]["distributed"] > table[0]["distributed"]
