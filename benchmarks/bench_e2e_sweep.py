"""End-to-end sweep benchmark: the six-config evaluation, wall-clocked.

The microbenchmarks (``bench_rule_engine.py``, ``bench_obs_overhead.py``)
guard individual hot paths; this one guards the product the user actually
runs: ``repro sweep`` — all six architecture × coordination configs of
the Table 4-6 evaluation at the fixed seed, serially, so per-config wall
times are comparable run to run.

Two things are measured and committed as ``e2e_baseline.json``:

* **Determinism counters** — committed/aborted/message counts per config.
  These must match the baseline *exactly* (the whole simulation is a
  deterministic function of the seed); any drift means behaviour changed
  and the baseline must be consciously recommitted.
* **Calibrated wall ratio** — total best-of-N sweep wall time divided by
  the wall time of a fixed pure-Python calibration loop measured in the
  same process.  Machine speed cancels out of the ratio, so a committed
  ceiling catches real slowdowns (a hot path de-optimised, accidental
  tracing in the benchmark path) without CI-runner jitter tripping it.

Run it two ways::

    pytest benchmarks/bench_e2e_sweep.py            # counters-only check
    python benchmarks/bench_e2e_sweep.py --json BENCH_e2e.json
    python benchmarks/check_e2e_baseline.py BENCH_e2e.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.analysis.sweep import run_sweep, sweep_tasks

from harness import environment_metadata

SEED = 7                 # the canonical evaluation seed
REPEATS = 2              # sweep passes; per-config wall is best-of-N
CALIBRATION_ROUNDS = 5   # min-of-N for the calibration loop

BASELINE = pathlib.Path(__file__).with_name("e2e_baseline.json")


def calibrate(rounds: int = CALIBRATION_ROUNDS) -> float:
    """Best-of-N wall time of a fixed pure-Python workload.

    Dict churn + integer arithmetic, the same mix the simulator spends
    its time in, so interpreter/CPU speed scales both measurements
    roughly equally and their ratio is machine-portable.
    """

    def work() -> int:
        acc = 0
        table: dict[int, int] = {}
        for i in range(400_000):
            table[i & 1023] = i
            acc += table.get((i + 7) & 1023, i)
        return acc

    times = []
    for __ in range(rounds):
        start = time.perf_counter()
        work()
        times.append(time.perf_counter() - start)
    return min(times)


def measure(repeats: int = REPEATS) -> dict:
    """Run the sweep ``repeats`` times; best-of-N wall per config."""
    tasks = sweep_tasks(seed=SEED)
    counters = None
    walls: list[float] = []
    events: list[int] = []
    for __ in range(repeats):
        sweep = run_sweep(tasks, workers=1)
        rows = sweep.run_log
        seen = [(row["label"], row["committed"], row["aborted"],
                 row["messages"]) for row in rows]
        if counters is None:
            counters = seen
            walls = [row["wall_time_s"] for row in rows]
            events = [row.get("events", 0) for row in rows]
        else:
            assert seen == counters, (
                "sweep counters differ between repeats at the same seed — "
                "the simulation is no longer deterministic"
            )
            walls = [min(wall, row["wall_time_s"])
                     for wall, row in zip(walls, rows)]
    total = sum(walls)
    calibration = calibrate()
    return {
        "seed": SEED,
        "repeats": repeats,
        "configs": [
            {"label": label, "committed": committed, "aborted": aborted,
             "messages": messages, "best_wall_s": round(wall, 4),
             "events": count}
            for (label, committed, aborted, messages), wall, count
            in zip(counters, walls, events)
        ],
        "total_best_wall_s": round(total, 4),
        "calibration_s": round(calibration, 6),
        "wall_ratio": round(total / calibration, 2),
        "environment": environment_metadata(),
    }


def test_e2e_sweep_counters_match_committed_baseline():
    """Determinism gate: one sweep pass must reproduce the baseline."""
    numbers = measure(repeats=1)
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    measured = {c["label"]: (c["committed"], c["aborted"], c["messages"])
                for c in numbers["configs"]}
    expected = {c["label"]: (c["committed"], c["aborted"], c["messages"])
                for c in baseline["configs"]}
    assert numbers["seed"] == baseline["seed"]
    assert measured == expected, (
        "sweep counters drifted from the committed e2e baseline — if the "
        "change is intentional, regenerate benchmarks/e2e_baseline.json"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the measured numbers to FILE")
    parser.add_argument("--repeats", type=int, default=REPEATS)
    args = parser.parse_args()
    numbers = measure(repeats=args.repeats)
    print(f"e2e sweep (seed {SEED}, best of {args.repeats}): "
          f"{numbers['total_best_wall_s']:.2f}s total wall, "
          f"calibration {numbers['calibration_s'] * 1e3:.1f}ms, "
          f"wall ratio {numbers['wall_ratio']:.1f}")
    for config in numbers["configs"]:
        print(f"  {config['label']:<26} {config['best_wall_s']:7.3f}s  "
              f"committed {config['committed']} aborted {config['aborted']} "
              f"messages {config['messages']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(numbers, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
