"""Table 5 reproduction: Load and Physical Messages in Parallel Control.

Checks the paper's two Table 5 claims: message counts equal the
centralized ones (the dispatch protocol is unchanged; each instance is
owned by one engine), while the per-engine load is the centralized load
divided by ``e`` — and, with coordination requirements installed, the
``(me+ro+rd)·e·s`` broadcast term makes parallel control the most
message-hungry architecture.
"""

import pytest

from repro.analysis.model import parallel_model
from repro.analysis.report import render_architecture_table
from repro.sim.metrics import Mechanism

from harness import BENCH_PARAMS, run_architecture


@pytest.mark.benchmark(group="table5")
def test_table5_parallel(benchmark):
    result = benchmark.pedantic(
        lambda: run_architecture("parallel", coordination=False),
        rounds=1, iterations=1,
    )
    params = result.params
    measured = result.measured

    print()
    print(render_architecture_table(parallel_model(params)))
    print()
    print(result.report())

    # Messages match the centralized protocol: 2·s·a per instance.
    assert measured.messages[Mechanism.NORMAL] == pytest.approx(
        2 * params.s * params.a, rel=0.05
    )
    # Per-engine load is the centralized load shared by e engines.
    assert measured.load[Mechanism.NORMAL] == pytest.approx(
        params.s / params.e, rel=0.25
    )


@pytest.mark.benchmark(group="table5")
def test_table5_parallel_coordination_broadcast(benchmark):
    result = benchmark.pedantic(
        lambda: run_architecture("parallel", coordination=True),
        rounds=1, iterations=1,
    )
    measured = result.measured
    print()
    print(result.report())
    # Coordination is message-expensive in parallel control: every governed
    # event is broadcast to all engines.
    assert measured.messages[Mechanism.COORDINATION] > 0
    central = run_architecture("centralized", coordination=True)
    assert measured.messages[Mechanism.COORDINATION] > \
        central.measured.messages[Mechanism.COORDINATION]
