"""CI gate: fail when the end-to-end sweep drifts or slows vs baseline.

Usage::

    python benchmarks/bench_e2e_sweep.py --json BENCH_e2e.json
    python benchmarks/check_e2e_baseline.py BENCH_e2e.json

Two checks against the committed ``e2e_baseline.json``:

* **Determinism (exit 2)** — per-config committed/aborted/message counts
  must match the baseline exactly.  The sweep is a deterministic function
  of its seed; any drift is a behaviour change that must be recommitted
  consciously, never absorbed silently.
* **Wall ratio (exit 1)** — the calibrated wall ratio (sweep wall /
  calibration-loop wall, machine-portable) must stay under the committed
  ratio times ``1 + tolerance``.  The tolerance is generous (default
  0.5) because CI runners are noisy; the gate exists to catch step-change
  slowdowns, not single-digit-percent regressions.
"""

from __future__ import annotations

import json
import pathlib
import sys

BASELINE = pathlib.Path(__file__).with_name("e2e_baseline.json")


def _counters(numbers: dict) -> dict[str, tuple[int, int, int]]:
    return {c["label"]: (c["committed"], c["aborted"], c["messages"])
            for c in numbers["configs"]}


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_e2e_baseline.py BENCH_e2e.json", file=sys.stderr)
        return 2
    measured = json.loads(pathlib.Path(argv[0]).read_text(encoding="utf-8"))
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))

    if measured["seed"] != baseline["seed"]:
        print(f"error: seed changed ({measured['seed']} vs baseline "
              f"{baseline['seed']}); recommit the baseline", file=sys.stderr)
        return 2
    mine, theirs = _counters(measured), _counters(baseline)
    if mine != theirs:
        print("FAIL: sweep counters drifted from the committed baseline "
              "(determinism gate):", file=sys.stderr)
        for label in sorted(set(mine) | set(theirs)):
            if mine.get(label) != theirs.get(label):
                print(f"  {label}: measured {mine.get(label)} "
                      f"vs baseline {theirs.get(label)}", file=sys.stderr)
        print("if the behaviour change is intentional, regenerate "
              "benchmarks/e2e_baseline.json", file=sys.stderr)
        return 2

    tolerance = baseline.get("tolerance", 0.5)
    ceiling = baseline["wall_ratio"] * (1.0 + tolerance)
    speedup = baseline["wall_ratio"] / measured["wall_ratio"]
    print(f"e2e sweep wall ratio: measured {measured['wall_ratio']:.1f}, "
          f"baseline {baseline['wall_ratio']:.1f}, ceiling {ceiling:.1f} "
          f"({speedup:.2f}x vs baseline)")
    if measured["wall_ratio"] > ceiling:
        print(f"FAIL: end-to-end sweep slowed >{tolerance:.0%} beyond the "
              f"committed baseline ratio", file=sys.stderr)
        return 1
    print("OK: counters identical, wall ratio within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
