"""Table 7 reproduction: Recommended Choice of Architectures.

Regenerates the recommendation matrix twice — from the paper's analytic
model and from *measured* simulation costs — and asserts both produce the
paper's rankings, including the centralized/parallel tie for
normal-execution messages and the crossover where centralized control wins
messages once coordination requirements dominate.
"""

import pytest

from repro.analysis.recommend import SCENARIOS, recommendation_matrix
from repro.analysis.report import render_recommendation
from repro.sim.metrics import Mechanism

from harness import BENCH_PARAMS, SweepTask, run_architectures


def measured_ranking(results, criterion, scenario):
    """Rank architectures by measured totals for a requirement mix."""
    mechanisms = SCENARIOS[scenario]
    totals = []
    for architecture, result in results.items():
        values = result.measured.messages if criterion == "messages" else result.measured.load
        totals.append((sum(values[m] for m in mechanisms), architecture))
    totals.sort()
    return [arch for __, arch in totals]


@pytest.mark.benchmark(group="table7")
def test_table7_recommendation(benchmark):
    def run_all():
        # All six configs through the parallel sweep runner (per-config
        # seeds; results merge back in canonical order, so the provenance
        # log matches a serial run exactly).
        grid = [(mode, arch)
                for mode in ("normal", "coordinated")
                for arch in ("centralized", "parallel", "distributed")]
        results = run_architectures([
            SweepTask(arch, BENCH_PARAMS, coordination=(mode == "coordinated"),
                      label=f"{arch}/{mode}")
            for mode, arch in grid
        ])
        merged = {"normal": {}, "coordinated": {}}
        for (mode, arch), result in zip(grid, results):
            merged[mode][arch] = result
        return merged

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    matrix = recommendation_matrix()
    print()
    print(render_recommendation(matrix))

    # --- analytic rankings (asserted in unit tests too, restated here) ---
    assert matrix[("load", "normal")].order() == (
        "distributed", "parallel", "centralized"
    )
    assert matrix[("messages", "normal+coordinated")].order() == (
        "centralized", "distributed", "parallel"
    )

    # --- measured rankings -----------------------------------------------
    normal_runs = runs["normal"]
    coordinated_runs = runs["coordinated"]

    load_order = measured_ranking(normal_runs, "load", "normal")
    print(f"measured load ranking (normal):        {load_order}")
    assert load_order == ["distributed", "parallel", "centralized"]

    msg_order = measured_ranking(normal_runs, "messages", "normal")
    print(f"measured message ranking (normal):     {msg_order}")
    assert msg_order[0] == "distributed"

    msg_order = measured_ranking(normal_runs, "messages", "normal+failures")
    print(f"measured message ranking (failures):   {msg_order}")
    assert msg_order[0] == "distributed"

    coord_msgs = {
        arch: result.measured.messages[Mechanism.NORMAL]
        + result.measured.messages[Mechanism.COORDINATION]
        for arch, result in coordinated_runs.items()
    }
    order = sorted(coord_msgs, key=coord_msgs.get)
    print(f"measured message ranking (coordinated): {order}")
    # Parallel is last under coordination, exactly as Table 7 says.
    assert order[-1] == "parallel"
