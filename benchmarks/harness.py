"""Shared driver for the Table 4-7 reproduction benchmarks.

Thin wrapper over :mod:`repro.analysis.experiment` (the library-level
evaluation runner) so the pytest-benchmark files stay declarative.

Every :func:`run_architecture` call is logged to :data:`RUN_LOG` with its
run metadata (seed, parameter point, wall time, commit counts, message
totals and trace summary); the benchmark conftest stamps that provenance
into each benchmark's ``extra_info`` and into the ``--benchmark-json``
output, so result files are self-describing.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Any

from repro.analysis.experiment import (
    EVAL_PARAMS as BENCH_PARAMS,
    ArchitectureResult as BenchResult,
    build_control_system as build_system,
    run_architecture_experiment,
)
from repro.analysis.sweep import SweepTask, run_sweep

__all__ = ["BENCH_PARAMS", "BenchResult", "RUN_LOG", "SweepTask",
           "build_system", "environment_metadata", "run_architecture",
           "run_architectures"]

#: Metadata of every experiment run in this process, in call order.
RUN_LOG: list[dict[str, Any]] = []


def environment_metadata() -> dict[str, Any]:
    """Provenance stamp for benchmark result files.

    Wall-clock numbers are meaningless without knowing what produced
    them; every benchmark JSON carries this block so a result file can
    be judged (and a baseline recommitted) without asking where it ran.
    """
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def run_architecture(architecture: str, **kwargs) -> BenchResult:
    """Run one Table 4/5/6 measurement and log its run metadata."""
    result = run_architecture_experiment(architecture, **kwargs)
    RUN_LOG.append(result.run_metadata())
    return result


def run_architectures(tasks: list[SweepTask],
                      workers: int | None = None) -> list[BenchResult]:
    """Fan independent measurements out over a process pool.

    Results and RUN_LOG rows land in canonical (submission) order, so a
    parallel benchmark run produces the same provenance log as a serial
    one — only the wall time differs.
    """
    sweep = run_sweep(tasks, workers=workers)
    RUN_LOG.extend(sweep.run_log)
    return sweep.results
