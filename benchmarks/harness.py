"""Shared driver for the Table 4-7 reproduction benchmarks.

Thin wrapper over :mod:`repro.analysis.experiment` (the library-level
evaluation runner) so the pytest-benchmark files stay declarative.

Every :func:`run_architecture` call is logged to :data:`RUN_LOG` with its
run metadata (seed, parameter point, wall time, commit counts, message
totals and trace summary); the benchmark conftest stamps that provenance
into each benchmark's ``extra_info`` and into the ``--benchmark-json``
output, so result files are self-describing.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.experiment import (
    EVAL_PARAMS as BENCH_PARAMS,
    ArchitectureResult as BenchResult,
    build_control_system as build_system,
    run_architecture_experiment,
)

__all__ = ["BENCH_PARAMS", "BenchResult", "RUN_LOG", "build_system",
           "run_architecture"]

#: Metadata of every experiment run in this process, in call order.
RUN_LOG: list[dict[str, Any]] = []


def run_architecture(architecture: str, **kwargs) -> BenchResult:
    """Run one Table 4/5/6 measurement and log its run metadata."""
    result = run_architecture_experiment(architecture, **kwargs)
    RUN_LOG.append(result.run_metadata())
    return result
