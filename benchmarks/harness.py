"""Shared driver for the Table 4-7 reproduction benchmarks.

Thin wrapper over :mod:`repro.analysis.experiment` (the library-level
evaluation runner) so the pytest-benchmark files stay declarative.
"""

from __future__ import annotations

from repro.analysis.experiment import (
    EVAL_PARAMS as BENCH_PARAMS,
    ArchitectureResult as BenchResult,
    build_control_system as build_system,
    run_architecture_experiment as run_architecture,
)

__all__ = ["BENCH_PARAMS", "BenchResult", "build_system", "run_architecture"]
