"""Derived figure: failure-handling messages vs rollback/halt extent.

Table 6 models distributed failure-handling traffic as ``(r+v)·pf·a``:
``r`` re-execution packets along the rolled back path plus ``v`` HaltThread
probes across the invalidated parallel branch.  This sweep varies ``r``
and ``v`` independently (with failures forced, pf-effective = 1) and shows
the measured per-failure message count growing with both — the paper's
claim that "the number of messages is very much dependent on the number of
steps to be invalidated".
"""

import pytest

from repro.analysis.report import format_table
from repro.core.programs import ConstantProgram, FailEveryNth
from repro.sim.metrics import Mechanism
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.params import PAPER_DEFAULTS

from harness import build_system

INSTANCES = 6


def run_point(r: int, v: int, seed: int = 13) -> float:
    """Per-failure FAILURE-mechanism messages at one (r, v) point."""
    # Keep the Table-3 shape consistent: s >= r + v + f + 2.
    s_steps = max(PAPER_DEFAULTS.s, r + v + PAPER_DEFAULTS.f + 3)
    params = PAPER_DEFAULTS.evolve(c=1, i=INSTANCES, r=r, v=v, s=s_steps,
                                   pf=0.2, pi=0.0, pa=0.0, pr=0.0)
    generator = WorkloadGenerator(params, seed=seed, coordination=False)
    workload = generator.build()
    system = build_system("distributed", params, seed=seed)
    generator.install(system, workload)
    schema = workload.schemas[0]
    failing = workload.failure_steps[schema.name]
    outputs = {out: f"{schema.name}.{failing}.{out}"
               for out in schema.steps[failing].outputs}
    system.register_program(schema.steps[failing].program,
                            FailEveryNth(ConstantProgram(outputs), {1}))
    generator.drive(system, workload, instances_per_schema=INSTANCES)
    system.run()
    assert system.metrics.instances_committed == INSTANCES
    return system.metrics.total_messages(Mechanism.FAILURE) / INSTANCES


@pytest.mark.benchmark(group="sweeps")
def test_sweep_failure_messages_vs_r_and_v(benchmark):
    def sweep():
        r_series = [(r, run_point(r=r, v=4)) for r in (2, 5, 8)]
        v_series = [(v, run_point(r=5, v=v)) for v in (0, 4, 8)]
        return r_series, v_series

    r_series, v_series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    params = PAPER_DEFAULTS
    print()
    print("Failure-handling messages per failure vs rollback depth r (v=4)")
    print(format_table(
        ["r", "measured msgs/failure", "model (r+v)*a"],
        [[r, f"{msgs:.1f}", (r + 4) * params.a] for r, msgs in r_series],
    ))
    print()
    print("Failure-handling messages per failure vs halted-branch size v (r=5)")
    print(format_table(
        ["v", "measured msgs/failure", "model (r+v)*a"],
        [[v, f"{msgs:.1f}", (5 + v) * params.a] for v, msgs in v_series],
    ))

    # Both series grow monotonically — the paper's dependence claims.
    r_values = [msgs for __, msgs in r_series]
    v_values = [msgs for __, msgs in v_series]
    assert r_values == sorted(r_values)
    assert v_values == sorted(v_values)
    assert r_values[-1] > r_values[0]
    assert v_values[-1] > v_values[0]
    # Magnitudes in the model's ballpark (within ~2x).
    for r, msgs in r_series:
        assert msgs < 2 * (r + 4) * params.a + 4
