#!/usr/bin/env python
"""Wall-clock smoke test for the ``repro serve`` daemon.

Boots the daemon as a real subprocess, waits for ``/healthz``, submits
the example LAWS workflow over HTTP, and asserts the instance commits
within a loose wall-clock budget.  This is the CI gate for the asyncio
runtime: it proves the whole chain — CLI entry point, HTTP front door,
realtime clock/transport/executor, engine stack — actually serves.

It also gates the observability plane: mid-run it checks ``/readyz``,
scrapes ``/metrics`` and asserts the commit counter and the service
latency histogram are present, then fetches ``/debug/trace`` and runs
``repro analyze --check-invariants`` on the export — a live wall-clock
run must satisfy the same protocol-invariant catalog as the simulated
ones.

Timing bounds are deliberately generous (CI runners are slow and
noisy); correctness bounds are exact.

Exit status: 0 on success, 1 on any failure (diagnostics on stderr).
"""

import json
import pathlib
import subprocess
import sys
import time
import urllib.error
import urllib.request

HOST = "127.0.0.1"
PORT = 8455
BASE = f"http://{HOST}:{PORT}"
BOOT_BUDGET = 30.0      # daemon must answer /healthz within this
COMMIT_BUDGET = 30.0    # the workflow must commit within this
REPO = pathlib.Path(__file__).resolve().parent.parent


def req(method, path, body=None, timeout=10.0):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(BASE + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def req_text(path, timeout=10.0):
    """GET a non-JSON surface (/metrics, /debug/trace); returns str."""
    with urllib.request.urlopen(BASE + path, timeout=timeout) as response:
        return response.read().decode()


def wait_for(predicate, budget, what):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        try:
            result = predicate()
        except (urllib.error.URLError, ConnectionError, OSError):
            result = None
        if result is not None:
            return result
        time.sleep(0.2)
    raise TimeoutError(f"{what} did not happen within {budget:.0f}s")


def main() -> int:
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--host", HOST, "--port", str(PORT)],
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    try:
        started = time.monotonic()
        health = wait_for(
            lambda: req("GET", "/healthz"), BOOT_BUDGET, "daemon boot"
        )
        boot_seconds = time.monotonic() - started
        assert health["ok"] is True, health
        assert health["runtime"] == "asyncio", health

        version = req("GET", "/version")
        assert version["version"], version

        laws = (REPO / "examples" / "order_fulfilment.laws").read_text()
        submitted = req("POST", "/workflows", {
            "laws": laws,
            "inputs": {"part": "gasket", "qty": 2},
        })
        [instance_id] = submitted["instances"]

        def finished():
            record = req("GET", f"/instances/{instance_id}")
            return record if record["status"] != "running" else None

        record = wait_for(finished, COMMIT_BUDGET, "workflow commit")
        commit_seconds = time.monotonic() - started - boot_seconds
        assert record["status"] == "committed", record
        assert record["outputs"].get("tracking"), record

        after = req("GET", "/healthz")
        assert after["instances_finished"] >= 1, after
        assert after["messages_sent"] > 0, after

        # Readiness split: the daemon is serving, so /readyz must be 200.
        ready = req("GET", "/readyz")
        assert ready == {"ready": True, "reason": "ok"}, ready

        # Mid-run /metrics scrape: the committed instance must show up in
        # the engine's commit counter and the service latency histogram.
        def latency_recorded():
            # The outcome watcher records end-to-end latency on its next
            # sweep after the commit; poll until the histogram appears.
            text = req_text("/metrics")
            return text if "crew_service_instance_latency_seconds" in text else None

        metrics = wait_for(latency_recorded, 10.0, "latency histogram scrape")
        assert ('crew_instances_finished_total{architecture="centralized",'
                'status="COMMITTED"}') in metrics, "commit counter missing"
        assert "crew_service_instance_latency_seconds_bucket" in metrics
        assert "crew_service_instance_latency_seconds_count" in metrics
        assert "crew_realtime_pending_timers" in metrics
        assert "crew_executor_submitted_total" in metrics

        # The live trace export must satisfy the same protocol-invariant
        # catalog as simulated runs (`repro analyze --check-invariants`).
        trace_file = REPO / "serve_smoke_trace.jsonl"
        trace_file.write_text(req_text("/debug/trace"))
        analyze = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", str(trace_file),
             "--check-invariants"],
            cwd=REPO, capture_output=True, text=True,
        )
        if analyze.returncode != 0:
            sys.stderr.write(analyze.stdout + analyze.stderr)
            raise AssertionError("repro analyze --check-invariants failed "
                                 "on the /debug/trace export")

        print(f"serve smoke OK: boot {boot_seconds:.1f}s, "
              f"commit {commit_seconds:.1f}s, "
              f"{after['messages_sent']} messages, "
              f"{after['events_processed']} clock events, "
              f"{len(metrics.splitlines())} metric lines, "
              f"invariants OK on {len(trace_file.read_text().splitlines())} "
              f"trace lines")
        return 0
    except Exception as exc:
        print(f"serve smoke FAILED: {exc!r}", file=sys.stderr)
        daemon.terminate()
        try:
            output, __ = daemon.communicate(timeout=5)
            sys.stderr.write(output.decode(errors="replace"))
        except subprocess.TimeoutExpired:
            daemon.kill()
        return 1
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            try:
                daemon.wait(timeout=5)
            except subprocess.TimeoutExpired:
                daemon.kill()


if __name__ == "__main__":
    raise SystemExit(main())
