#!/usr/bin/env python
"""Kill-and-recover chaos harness for ``repro serve --state-dir``.

For each of the three architectures this script:

1. boots the daemon as a real subprocess with a crash-durable state
   directory and a slowed work-time scale,
2. submits a batch of workflow instances (>= 20) over HTTP,
3. waits until some — but not all — have finished, snapshots the
   terminal outcomes seen so far, and ``SIGKILL``\\ s the daemon
   mid-flight (no shutdown hooks run; this is the crash the WAL is for),
4. restarts the daemon on the same state directory and asserts

   - recovery happened (``instances_recovered`` > 0 on ``/healthz``),
   - every acknowledged instance reaches a terminal outcome,
   - **zero lost commits**: every outcome that was terminal before the
     kill is still reported with the same status and outputs,
   - **zero duplicate commits**: the service WAL holds at most one
     ``outcome`` record per instance id, and redrive chains resolve to
     exactly one terminal carrier,
   - the live ``/debug/trace`` export passes
     ``repro analyze --check-invariants``,

5. shuts the recovered daemon down gracefully (SIGTERM drain).

State directories are left under ``serve-chaos-state/`` so CI can
upload them as a forensic artifact when an assertion fails.

Exit status: 0 on success, 1 on any failure (diagnostics on stderr).
"""

import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

HOST = "127.0.0.1"
BOOT_BUDGET = 30.0      # each daemon must answer /healthz within this
DRAIN_BUDGET = 120.0    # recovery + re-driven instances must finish in this
INSTANCES = 24          # acknowledged instances per architecture (>= 20)
WORK_TIME_SCALE = 0.1   # slow enough that the kill lands mid-flight
REPO = pathlib.Path(__file__).resolve().parent.parent
STATE_ROOT = REPO / "serve-chaos-state"

sys.path.insert(0, str(REPO / "src"))

ARCHITECTURES = {
    "centralized": 8456,
    "parallel": 8457,
    "distributed": 8458,
}


def child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    return env


def req(base, method, path, body=None, timeout=10.0):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def req_text(base, path, timeout=10.0):
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        return response.read().decode()


def wait_for(predicate, budget, what):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        try:
            result = predicate()
        except (urllib.error.URLError, ConnectionError, OSError):
            result = None
        if result is not None:
            return result
        time.sleep(0.2)
    raise TimeoutError(f"{what} did not happen within {budget:.0f}s")


def boot_daemon(architecture, port, state_dir):
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--host", HOST, "--port", str(port),
         "--architecture", architecture,
         "--state-dir", str(state_dir),
         "--work-time-scale", str(WORK_TIME_SCALE),
         "--log-out", "off"],
        cwd=REPO, env=child_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    base = f"http://{HOST}:{port}"
    health = wait_for(lambda: req(base, "GET", "/healthz"),
                      BOOT_BUDGET, f"{architecture} daemon boot")
    assert health["ok"] is True, health
    assert health["durable"] is True, health
    return daemon, base, health


def reap(daemon):
    if daemon.poll() is None:
        daemon.terminate()
        try:
            daemon.wait(timeout=10)
        except subprocess.TimeoutExpired:
            daemon.kill()


def dump_output(daemon, label):
    try:
        output, __ = daemon.communicate(timeout=5)
    except (subprocess.TimeoutExpired, ValueError):
        return
    if output:
        sys.stderr.write(f"--- {label} output ---\n")
        sys.stderr.write(output.decode(errors="replace"))


def audit_wal(state_dir, acknowledged):
    """Offline WAL audit: at-most-once outcomes, resolvable redrives."""
    from repro.service.durability import ServiceLog, ServiceState

    log = ServiceLog(state_dir)
    try:
        state = ServiceState.from_records(log.records())
    finally:
        log.close()
    outcome_counts = {}
    for record in log.records():
        if record.kind == "outcome":
            iid = record.payload["instance"]
            outcome_counts[iid] = outcome_counts.get(iid, 0) + 1
    duplicates = {iid: n for iid, n in outcome_counts.items() if n > 1}
    assert not duplicates, f"duplicate outcome records in WAL: {duplicates}"
    for iid in acknowledged:
        carrier = state.resolve(iid)
        assert carrier in state.outcomes, (
            f"acknowledged instance {iid} (carrier {carrier}) has no "
            f"durable outcome"
        )
    return len(state.redrives)


def run_architecture(architecture, port):
    state_dir = STATE_ROOT / architecture
    if state_dir.exists():
        shutil.rmtree(state_dir)
    laws = (REPO / "examples" / "order_fulfilment.laws").read_text()

    # -- phase 1: boot, submit, kill -9 mid-flight ------------------------
    daemon, base, __ = boot_daemon(architecture, port, state_dir)
    acknowledged = []
    try:
        first = req(base, "POST", "/workflows", {
            "laws": laws,
            "inputs": {"part": "gasket", "qty": 2},
            "instances": INSTANCES // 3,
        })
        acknowledged += first["instances"]
        workflow = first["workflow"]
        while len(acknowledged) < INSTANCES:
            batch = req(base, "POST", "/workflows", {
                "workflow": workflow,
                "inputs": {"part": "valve", "qty": 1},
                "instances": min(INSTANCES // 3, INSTANCES - len(acknowledged)),
            })
            acknowledged += batch["instances"]
        assert len(acknowledged) >= 20, acknowledged

        def mid_flight():
            health = req(base, "GET", "/healthz")
            finished = health["instances_finished"]
            return health if 0 < finished < len(acknowledged) else None

        wait_for(mid_flight, 60.0, f"{architecture} mid-flight window")
        pre_crash = {
            row["instance"]: row
            for row in req(base, "GET", "/instances")["instances"]
            if row["status"] not in ("running",)
        }
        daemon.kill()  # SIGKILL: no atexit, no flush, no close
        daemon.wait(timeout=10)
    except BaseException:
        reap(daemon)
        dump_output(daemon, f"{architecture} phase-1 daemon")
        raise
    assert pre_crash, f"{architecture}: kill landed before any outcome"
    assert len(pre_crash) < len(acknowledged), (
        f"{architecture}: kill landed after every outcome; nothing in flight"
    )

    # -- phase 2: restart, recover, drain to terminal ---------------------
    daemon, base, health = boot_daemon(architecture, port, state_dir)
    try:
        assert health["instances_recovered"] >= 1, health

        def all_terminal():
            records = [req(base, "GET", f"/instances/{iid}")
                       for iid in acknowledged]
            if all(r["status"] not in ("running",) for r in records):
                return records
            return None

        records = wait_for(all_terminal, DRAIN_BUDGET,
                           f"{architecture} post-recovery drain")
        by_id = {r["instance"]: r for r in records}

        # Zero lost commits: pre-crash terminal outcomes survive verbatim.
        for iid, before in pre_crash.items():
            after = by_id[iid]
            assert after["status"] == before["status"], (iid, before, after)

        # Liveness: every acknowledged id is terminal, none wedged.
        statuses = sorted({r["status"] for r in records})
        assert "running" not in statuses, statuses

        # Live trace passes the protocol-invariant catalog.
        trace_file = REPO / f"serve_chaos_{architecture}.trace.jsonl"
        trace_file.write_text(req_text(base, "/debug/trace"))
        analyze = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", str(trace_file),
             "--check-invariants"],
            cwd=REPO, env=child_env(), capture_output=True, text=True,
        )
        if analyze.returncode != 0:
            sys.stderr.write(analyze.stdout + analyze.stderr)
            raise AssertionError(
                f"{architecture}: invariants failed on the recovered "
                f"daemon's /debug/trace export"
            )
        trace_file.unlink()

        # Graceful exit: SIGTERM drains and the process leaves cleanly.
        daemon.send_signal(signal.SIGTERM)
        daemon.wait(timeout=30)
    except BaseException:
        reap(daemon)
        dump_output(daemon, f"{architecture} phase-2 daemon")
        raise

    # -- phase 3: offline WAL audit (at-most-once outcomes) ---------------
    redrives = audit_wal(state_dir, acknowledged)
    committed = sum(1 for r in records if r["status"] == "committed")
    recovered = sum(1 for r in records if r.get("recovered"))
    print(f"  {architecture}: {len(acknowledged)} acknowledged, "
          f"{len(pre_crash)} terminal pre-kill ({recovered} served from "
          f"the durable log after restart), {redrives} re-driven, "
          f"{committed} committed, 0 lost, 0 duplicated")


def main() -> int:
    failures = 0
    for architecture, port in ARCHITECTURES.items():
        print(f"serve chaos: {architecture} kill -9 / recover ...",
              flush=True)
        try:
            run_architecture(architecture, port)
        except Exception as exc:
            failures += 1
            print(f"serve chaos FAILED ({architecture}): {exc!r}",
                  file=sys.stderr, flush=True)
    if failures:
        print(f"serve chaos: {failures} architecture(s) failed; state dirs "
              f"kept under {STATE_ROOT}", file=sys.stderr)
        return 1
    print("serve chaos OK: kill -9 mid-flight lost nothing on any "
          "architecture")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
