"""Compatibility shim: seeded streams now live in :mod:`repro.runtime`.

:class:`SimRandom` moved to :mod:`repro.runtime.rng` (the asyncio
executor draws its retry jitter from the same stream machinery).  This
module keeps the historical ``repro.sim.rng`` import path working.
"""

from repro.runtime.rng import SimRandom

__all__ = ["SimRandom"]
