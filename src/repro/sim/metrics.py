"""Compatibility shim: metric accounting now lives in :mod:`repro.runtime`.

Per-mechanism message/load accounting is runtime-neutral — the wall-clock
asyncio transport counts exactly like the simulated one — so
:class:`Mechanism` and :class:`MetricsCollector` moved to
:mod:`repro.runtime.metrics`.  This module keeps the historical
``repro.sim.metrics`` import path working.
"""

from repro.runtime.metrics import Mechanism, MetricsCollector, MetricsSnapshot

__all__ = ["Mechanism", "MetricsCollector", "MetricsSnapshot"]
