"""Compatibility shim: :class:`Node` now lives in :mod:`repro.runtime`.

Nodes schedule against the :class:`~repro.runtime.protocols.Clock` and
:class:`~repro.runtime.protocols.Transport` protocols only, so the base
class moved to :mod:`repro.runtime.node` where both the simulated and the
asyncio substrates can host it.  This module keeps the historical
``repro.sim.node`` import path working.
"""

from repro.runtime.node import Node

__all__ = ["Node"]
