"""Simulated processing nodes (engines and agents live on these).

A :class:`Node` is a named endpoint on the :class:`~repro.sim.network.Network`
with:

* a message handler (`handle_message`) implemented by subclasses,
* per-mechanism *load* accounting in units of ``l`` — the "navigation and
  other load per step" parameter of the paper's Table 3,
* crash/recovery support: a crashed node loses volatile state (subclass
  hook) but keeps its durable stores; the network parks messages addressed
  to it until recovery, matching the persistent-queue assumption.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.metrics import Mechanism
from repro.sim.network import Message, Network

__all__ = ["Node"]


class Node:
    """Base class for every simulated processing node."""

    def __init__(self, name: str, simulator: Simulator, network: Network):
        self.name = name
        self.simulator = simulator
        self.network = network
        self.is_up = True
        self.messages_received = 0
        self.crash_count = 0
        # Observability: the owning control system injects a
        # MetricsRegistry on the network when tracing is enabled; nodes
        # cache their per-node instruments so the hot path is one `is
        # None` check plus an attribute increment.
        self.registry = getattr(network, "registry", None)
        if self.registry is not None:
            self._msg_counter = self.registry.counter(
                "crew_node_messages_received_total",
                "Physical messages delivered to a node.",
                node=name,
            )
            self._load_counter = self.registry.counter(
                "crew_node_load_units_total",
                "Navigation load charged to a node, in units of l.",
                node=name,
            )
        else:
            self._msg_counter = None
            self._load_counter = None
        network.register(self)

    # -- messaging -----------------------------------------------------------

    def send(
        self,
        dst: str,
        interface: str,
        payload: Mapping[str, Any],
        mechanism: Mechanism,
    ) -> None:
        """Send one physical message to another node."""
        self.network.send(self.name, dst, interface, payload, mechanism)

    def receive(self, message: Message) -> None:
        """Network entry point; dispatches to :meth:`handle_message`."""
        if not self.is_up:
            raise SimulationError(f"message delivered to down node {self.name!r}")
        self.messages_received += 1
        if self._msg_counter is not None:
            self._msg_counter.inc()
        self.handle_message(message)

    def handle_message(self, message: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    # -- load accounting -------------------------------------------------------

    def charge(self, units: float, mechanism: Mechanism) -> None:
        """Charge navigation load (multiples of ``l``) to this node."""
        self.network.metrics.record_load(self.name, mechanism, units)
        if self._load_counter is not None:
            self._load_counter.inc(units)

    # -- failure injection -----------------------------------------------------

    def crash(self) -> None:
        """Take the node down, losing volatile state."""
        if not self.is_up:
            raise SimulationError(f"node {self.name!r} is already down")
        self.is_up = False
        self.crash_count += 1
        if self.registry is not None:
            self.registry.counter(
                "crew_node_crashes_total", "Node crash events.", node=self.name
            ).inc()
        self.on_crash()

    def recover(self) -> None:
        """Bring the node back up, replay durable state, drain parked messages."""
        if self.is_up:
            raise SimulationError(f"node {self.name!r} is already up")
        self.is_up = True
        self.on_recover()
        self.network.flush_parked(self.name)

    def on_crash(self) -> None:
        """Subclass hook: discard volatile state.  Default does nothing."""

    def on_recover(self) -> None:
        """Subclass hook: rebuild volatile state from durable stores."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.is_up else "down"
        return f"<{type(self).__name__} {self.name} {state}>"
