"""Compatibility shim: the fault layer now lives in :mod:`repro.runtime.faults`.

The fault injector was born here when it only ran under the discrete-event
kernel.  It keys off the runtime protocols (Clock / Transport / Executor)
only, so the clock-agnostic core moved down to ``repro.runtime.faults``
where the wall-clock asyncio backend can use it too; this module re-exports
the public names so existing imports (``from repro.sim.faults import
FaultPlan``) keep working.
"""

from __future__ import annotations

from repro.runtime.faults import (
    Crash,
    FaultInjector,
    FaultPlan,
    FaultStats,
    Outage,
    Stall,
    random_plan,
)

__all__ = [
    "Crash",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "Outage",
    "Stall",
    "random_plan",
]
