"""Compatibility shim: the trace log now lives in :mod:`repro.runtime`.

:class:`Trace`/:class:`TraceRecord` moved to :mod:`repro.runtime.trace`
— runs on the wall-clock runtime record the same totally-ordered trace
as simulated ones.  This module keeps the historical
``repro.sim.tracing`` import path working.
"""

from repro.runtime.trace import Trace, TraceRecord

__all__ = ["Trace", "TraceRecord"]
