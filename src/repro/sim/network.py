"""Compatibility shim: the transport now lives in :mod:`repro.runtime`.

The reliable latency-modelled transport turned out to be clock-agnostic —
the same :class:`~repro.runtime.transport.Network` delivers over the
discrete-event kernel *and* the wall-clock asyncio runtime — so it moved
to :mod:`repro.runtime.transport` (with :class:`~repro.runtime.messages.
Message` and the latency models alongside).  This module keeps the
historical ``repro.sim.network`` import path working.
"""

from repro.runtime.latency import FixedLatency, LatencyModel, UniformLatency
from repro.runtime.messages import Message
from repro.runtime.transport import Network

__all__ = ["LatencyModel", "Message", "Network", "UniformLatency", "FixedLatency"]
