"""Deterministic discrete-event simulation kernel.

The CREW reproduction runs every workflow control architecture inside a
discrete-event simulation (DES).  The paper's evaluation reports *counts*
(physical messages per instance, load units per node) rather than
wall-clock times, so a DES reproduces the experiments exactly and
deterministically: the same seed always yields the same schedule, the same
failures, and the same counters.

The kernel is intentionally small: a priority queue of timestamped
callbacks with a strictly monotonic tie-breaking sequence number.  All
higher layers (network, nodes, engines) are built on :meth:`Simulator.schedule`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["EventHandle", "Simulator"]


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry.  Ordered by (time, seq) for determinism."""

    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A cancellable reference to a scheduled simulation event."""

    __slots__ = ("_sim", "action", "args", "cancelled", "time")

    def __init__(self, time: float, action: Callable[..., Any], args: tuple,
                 sim: "Simulator | None" = None):
        self.time = time
        self.action = action
        self.args = args
        self.cancelled = False
        # Back-reference used for O(1) live-event accounting; detached when
        # the entry leaves the queue so late cancels stay pure no-ops.
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._on_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.action, "__name__", repr(self.action))
        return f"<EventHandle t={self.time:.3f} {name} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Events scheduled for the same instant fire in scheduling order (FIFO),
    which makes multi-node protocols reproducible without relying on dict
    or hash ordering.

    Example::

        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "a")
        sim.schedule(1.0, fired.append, "b")
        sim.run()
        assert fired == ["b", "a"]
    """

    #: Compaction policy: rebuild the heap once more than half of at least
    #: this many queued entries are cancelled garbage.  Long OCR-heavy runs
    #: cancel watchdogs and timeouts by the thousand; without compaction
    #: every subsequent pop wades through them.
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._cancelled = 0  # cancelled entries still sitting in the queue
        self.events_processed = 0
        #: Optional observability hook called as ``hook(time, queue_len)``
        #: before each event fires.  Left ``None`` in benchmark runs so
        #: the hot loop pays only one attribute check per event.
        self.event_hook: Callable[[float, int], None] | None = None
        #: Optional duck-typed profiler (see :class:`repro.obs.profile.
        #: Profiler`), installed by ``Profiler.install``.  When set, every
        #: event runs inside a named profiler frame credited with the
        #: simulation-clock advance it caused; when ``None`` (the default)
        #: the hot loop pays one ``is None`` branch.
        self.profile = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, delay: float, action: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``action(*args)`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action, *args)

    def schedule_at(self, time: float, action: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``action(*args)`` to fire at absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        handle = EventHandle(time, action, args, self)
        heapq.heappush(self._queue, _QueueEntry(time, next(self._seq), handle))
        return handle

    # -- heap hygiene ------------------------------------------------------

    def _on_cancel(self) -> None:
        """Account one newly cancelled queued entry; compact when garbage
        dominates the heap."""
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_MIN
                and self._cancelled * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap in O(live)."""
        profile = self.profile
        if profile is not None:
            profile.push("kernel.heap_compact")
        try:
            self._queue = [e for e in self._queue if not e.handle.cancelled]
            heapq.heapify(self._queue)
            self._cancelled = 0
        finally:
            if profile is not None:
                profile.pop()

    def _prune_cancelled_head(self) -> None:
        """The single lazy-deletion point: discard cancelled entries at the
        head of the queue (with accounting) so ``self._queue[0]``, if any,
        is live."""
        while self._queue and self._queue[0].handle.cancelled:
            heapq.heappop(self._queue)
            self._cancelled -= 1

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        Cancelled events are skipped silently.
        """
        self._prune_cancelled_head()
        if not self._queue:
            return False
        entry = heapq.heappop(self._queue)
        handle = entry.handle
        handle._sim = None  # detached: a late cancel no longer counts
        profile = self.profile
        if profile is not None:
            profile.begin_event(handle.action, entry.time,
                                entry.time - self._now, len(self._queue))
        self._now = entry.time
        self.events_processed += 1
        if self.event_hook is not None:
            self.event_hook(entry.time, len(self._queue))
        if profile is None:
            handle.action(*handle.args)
            return True
        try:
            handle.action(*handle.args)
        finally:
            profile.end_event()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the number of events processed by this call.  Re-entrant
        calls (``run`` from inside an event) are rejected because they would
        corrupt the clock.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                if until is not None and self._peek_time() > until:
                    self._now = until
                    break
                if self.step():
                    fired += 1
        finally:
            self._running = False
        return fired

    def _peek_time(self) -> float:
        """Time of the next non-cancelled event (infinity if none)."""
        self._prune_cancelled_head()
        if not self._queue:
            return float("inf")
        return self._queue[0].time

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued.  O(1)."""
        return len(self._queue) - self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.3f} pending={self.pending}>"
