"""The simulated runtime: deterministic discrete-event substrate.

:class:`SimRuntime` bundles the DES kernel (:class:`~repro.sim.kernel.
Simulator` as the :class:`~repro.runtime.protocols.Clock`), the shared
clock-agnostic :class:`~repro.runtime.transport.Network` transport and a
:class:`~repro.runtime.executor.ClockExecutor` into one object satisfying
:class:`repro.runtime.protocols.Runtime`.  It is the default backend of
every :class:`~repro.engines.base.ControlSystem` (registered as ``"sim"``
in :mod:`repro.runtime.factory`), and the only backend on which fault
injection is *bit*-deterministic: fixed-seed runs replay byte-for-byte
from ``(seed, plan)`` (the asyncio backend replays the same decision
sequence but on wall-clock time).
"""

from __future__ import annotations

from typing import Any

from repro.errors import WorkloadError
from repro.runtime.executor import ClockExecutor
from repro.runtime.latency import LatencyModel
from repro.runtime.metrics import MetricsCollector
from repro.runtime.transport import Network
from repro.sim.kernel import Simulator

__all__ = ["SimRuntime"]


class SimRuntime:
    """Deterministic simulated substrate (clock + transport + executor)."""

    name = "sim"

    def __init__(
        self,
        metrics: MetricsCollector | None = None,
        latency: LatencyModel | None = None,
        rng: Any = None,
    ):
        # ``rng`` keeps the factory signature uniform across backends; the
        # deterministic executor never jitters, so it goes unused here.
        self.clock = Simulator()
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.transport = Network(self.clock, self.metrics, latency)
        self.executor = ClockExecutor(self.clock)
        self.transport.executor = self.executor
        #: The installed fault injector, if any.
        self.faults = None

    # -- fault injection ---------------------------------------------------

    def supports_faults(self) -> bool:
        return True

    def install_faults(self, plan: Any, rng: Any, retry: Any) -> Any:
        """Install a deterministic :class:`~repro.runtime.faults.FaultInjector`.

        ``rng`` must be a dedicated child seed space (the caller spawns
        ``rng.spawn("faults")``) so installation never perturbs the
        workload's own streams; ``retry`` drives retransmission backoff.
        Returns the installed injector.
        """
        from repro.runtime.faults import FaultInjector

        if self.faults is not None:
            raise WorkloadError("fault injector already installed")
        injector = FaultInjector(plan, rng, retry=retry)
        injector.install(self.transport)
        injector.arm(self.clock)
        self.faults = injector
        return injector

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimRuntime now={self.clock.now:.3f} pending={self.clock.pending}>"
