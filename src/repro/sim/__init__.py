"""Discrete-event simulation substrate for the CREW reproduction.

The paper's prototype ran on real networked nodes; this package provides
the deterministic stand-in: a DES kernel (:mod:`repro.sim.kernel`), a
reliable latency-modelled network with per-mechanism message accounting
(:mod:`repro.sim.network`), crash-injectable nodes (:mod:`repro.sim.node`),
seeded random streams (:mod:`repro.sim.rng`) and metric/trace collection
(:mod:`repro.sim.metrics`, :mod:`repro.sim.tracing`).
"""

from repro.sim.kernel import EventHandle, Simulator
from repro.sim.metrics import Mechanism, MetricsCollector, MetricsSnapshot
from repro.sim.network import FixedLatency, LatencyModel, Message, Network, UniformLatency
from repro.sim.node import Node
from repro.sim.rng import SimRandom
from repro.sim.tracing import Trace, TraceRecord

__all__ = [
    "EventHandle",
    "FixedLatency",
    "LatencyModel",
    "Mechanism",
    "Message",
    "MetricsCollector",
    "MetricsSnapshot",
    "Network",
    "Node",
    "SimRandom",
    "Simulator",
    "Trace",
    "TraceRecord",
    "UniformLatency",
]
