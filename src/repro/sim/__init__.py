"""Discrete-event simulation substrate for the CREW reproduction.

The paper's prototype ran on real networked nodes; this package provides
the deterministic stand-in, as the ``"sim"`` backend of the pluggable
runtime layer (:mod:`repro.runtime`): the DES kernel
(:mod:`repro.sim.kernel`) implements the ``Clock`` protocol,
:class:`~repro.sim.runtime.SimRuntime` bundles it with the shared
clock-agnostic transport, and :mod:`repro.sim.faults` adds deterministic
fault injection underneath the reliable-delivery contract.

The runtime-neutral pieces that historically lived here — the transport,
nodes, metrics, seeded streams, trace log — moved to :mod:`repro.runtime`;
the old ``repro.sim.*`` import paths remain as shims.
"""

from repro.runtime.latency import FixedLatency, LatencyModel, UniformLatency
from repro.runtime.messages import Message
from repro.runtime.metrics import Mechanism, MetricsCollector, MetricsSnapshot
from repro.runtime.node import Node
from repro.runtime.rng import SimRandom
from repro.runtime.trace import Trace, TraceRecord
from repro.runtime.transport import Network
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.runtime import SimRuntime

__all__ = [
    "EventHandle",
    "FixedLatency",
    "LatencyModel",
    "Mechanism",
    "Message",
    "MetricsCollector",
    "MetricsSnapshot",
    "Network",
    "Node",
    "SimRandom",
    "SimRuntime",
    "Simulator",
    "Trace",
    "TraceRecord",
    "UniformLatency",
]
