"""Chaos-exploration harness: random fault schedules vs the CREW protocols.

Each :class:`ChaosTask` is one fully deterministic experiment: a
``(config, seed, fault plan)`` triple that builds a control system, arms a
:class:`~repro.sim.faults.FaultInjector`, drives the Table-3 workload and
then interrogates the finished run with the PR-3 protocol invariants plus
chaos-specific *liveness* and *durability* checks:

``liveness``
    Every started instance reaches a terminal outcome (committed or
    aborted) and the simulator drains — a run truncated by ``max_events``
    or an instance wedged forever is a finding, not a timeout.

``orphaned-inflight``
    Once an instance is terminal, no engine still holds an in-flight
    dispatch record for it and no coordination agent still tracks it as
    unfinished.

``wal-convergence``
    Every WAL passes its checksum audit, and replaying each distributed
    agent's log into a fresh AGDB reproduces the durable state (replay is
    deterministic; recovered summaries match the live summary table).

A violating run is *minimized* — fault-plan dimensions are greedily
removed while the violation persists — and reported as a one-line repro
(``repro chaos --config <label> --seed <s> --plan <spec>``) alongside the
run's causal-trace JSONL, so any CI failure is replayable bit-for-bit on a
developer laptop.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.analysis.causal import CausalTrace
from repro.analysis.invariants import Violation, check_invariants
from repro.errors import CrewError
from repro.obs.profile import peak_rss_kb
from repro.sim.faults import FaultPlan, random_plan
from repro.workloads.params import WorkloadParameters

__all__ = [
    "CHAOS_CONFIGS",
    "ChaosOutcome",
    "ChaosTask",
    "RealtimeChaosReport",
    "chaos_tasks",
    "config_nodes",
    "run_chaos",
    "run_realtime_chaos",
]

#: The six architecture × coordination configs the harness explores.
CHAOS_CONFIGS: tuple[str, ...] = tuple(
    f"{architecture}/{mode}"
    for architecture in ("centralized", "parallel", "distributed")
    for mode in ("normal", "coordinated")
)

#: Chaos-scale workload default: small enough that one schedule runs in
#: ~a second, large enough that instances overlap in time.
CHAOS_INSTANCES_PER_SCHEMA = 2


def _chaos_params() -> WorkloadParameters:
    from repro.analysis.experiment import EVAL_PARAMS

    return EVAL_PARAMS.evolve(c=2, i=CHAOS_INSTANCES_PER_SCHEMA)


def config_nodes(architecture: str, params: WorkloadParameters) -> list[str]:
    """Node names of a built config, mirroring ``build_control_system``."""
    agents = max(4, params.a * 2)
    if architecture == "centralized":
        return ["engine"] + [f"agent-{i:03d}" for i in range(agents)]
    if architecture == "parallel":
        return [f"engine-{i:02d}" for i in range(params.e)] + [
            f"agent-{i:03d}" for i in range(agents)
        ]
    if architecture == "distributed":
        return [f"agent-{i:03d}" for i in range(params.z)]
    raise CrewError(f"unknown architecture {architecture!r}")


def split_config(label: str) -> tuple[str, bool]:
    """``"parallel/coordinated"`` -> ``("parallel", True)``."""
    try:
        architecture, mode = label.split("/")
        if mode not in ("normal", "coordinated"):
            raise ValueError(mode)
    except ValueError:
        raise CrewError(
            f"bad chaos config {label!r}; expected one of {list(CHAOS_CONFIGS)}"
        ) from None
    return architecture, mode == "coordinated"


@dataclass(frozen=True)
class ChaosTask:
    """One deterministic chaos experiment: config × seed × fault plan.

    ``plan_spec`` is the plan's wire form (``FaultPlan.to_spec``); when
    empty the plan is derived from the seed via :func:`random_plan`, so a
    task is fully described — and replayable — by ``(config, seed)``.
    """

    config: str
    seed: int
    plan_spec: str = ""
    params: WorkloadParameters | None = None
    instances_per_schema: int = CHAOS_INSTANCES_PER_SCHEMA
    strict: bool = False

    def resolved_params(self) -> WorkloadParameters:
        return self.params if self.params is not None else _chaos_params()

    def plan(self) -> FaultPlan:
        if self.plan_spec:
            return FaultPlan.parse(self.plan_spec)
        architecture, __ = split_config(self.config)
        nodes = config_nodes(architecture, self.resolved_params())
        return random_plan(self.seed, crash_nodes=nodes, stall_nodes=nodes)

    def run(self) -> "ChaosOutcome":
        return _execute(self, self.plan())


@dataclass
class ChaosOutcome:
    """Verdict of one chaos experiment (picklable, JSON-safe)."""

    config: str
    seed: int
    plan_spec: str
    started: int = 0
    committed: int = 0
    aborted: int = 0
    messages: int = 0
    lost_messages: int = 0
    sim_time: float = 0.0
    fault_stats: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    minimized_spec: str | None = None
    trace_jsonl: str | None = None
    wall_time_s: float = 0.0
    events: int = 0
    peak_rss_kb: int | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def events_per_sec(self) -> float:
        """Kernel events processed per wall-clock second."""
        return self.events / self.wall_time_s if self.wall_time_s > 0 else 0.0

    @property
    def repro_line(self) -> str:
        spec = self.minimized_spec or self.plan_spec
        return (f"repro chaos --config {self.config} --seed {self.seed} "
                f"--plan '{spec}'")

    def as_dict(self) -> dict[str, Any]:
        return {
            "config": self.config,
            "seed": self.seed,
            "plan": self.plan_spec,
            "started": self.started,
            "committed": self.committed,
            "aborted": self.aborted,
            "messages": self.messages,
            "lost_messages": self.lost_messages,
            "sim_time": self.sim_time,
            "wall_time_s": round(self.wall_time_s, 6),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "peak_rss_kb": self.peak_rss_kb,
            "fault_stats": dict(self.fault_stats),
            "violations": list(self.violations),
            "minimized_plan": self.minimized_spec,
            "repro": None if self.ok else self.repro_line,
        }


# ------------------------------------------------------------------ checks


def _check_liveness(system, started: list[str]) -> list[Violation]:
    out: list[Violation] = []
    if system.simulator.pending:
        out.append(Violation(
            "liveness", "-",
            f"run truncated with {system.simulator.pending} events still "
            f"pending (max_events reached) at t={system.simulator.now:.1f}",
        ))
    for instance_id in started:
        if instance_id not in system.outcomes:
            out.append(Violation(
                "liveness", instance_id,
                "instance never reached a terminal outcome "
                "(not committed, aborted or compensated)",
            ))
    return out


def _check_orphaned_inflight(system) -> list[Violation]:
    out: list[Violation] = []
    architecture = system.architecture
    engines = []
    if architecture == "centralized":
        engines = [system.engine]
    elif architecture == "parallel":
        engines = list(system.engines)
    for engine in engines:
        for (instance_id, step) in sorted(engine._inflight):
            if instance_id in system.outcomes:
                out.append(Violation(
                    "orphaned-inflight", instance_id,
                    f"engine {engine.name} still holds an in-flight record "
                    f"for step {step!r} after the instance finished",
                ))
    if architecture == "distributed":
        for agent in system.agents:
            for instance_id, tracker in sorted(agent.trackers.items()):
                if not tracker.finished and instance_id in system.outcomes:
                    out.append(Violation(
                        "orphaned-inflight", instance_id,
                        f"agent {agent.name} still tracks the instance as "
                        f"unfinished after a terminal outcome was recorded",
                    ))
    return out


def _check_wal_convergence(system) -> list[Violation]:
    out: list[Violation] = []
    architecture = system.architecture

    def audit(name: str, wal) -> None:
        try:
            wal.verify()
        except CrewError as exc:
            out.append(Violation("wal-convergence", "-", f"{name}: {exc}"))

    if architecture == "centralized":
        audit(system.engine.name, system.engine.wfdb.wal)
    elif architecture == "parallel":
        for engine in system.engines:
            audit(engine.name, engine.wfdb.wal)
    else:
        for agent in system.agents:
            audit(agent.name, agent.agdb.wal)
            try:
                first = agent.agdb.replay_clone()
                second = agent.agdb.replay_clone()
            except CrewError as exc:
                out.append(Violation(
                    "wal-convergence", "-",
                    f"{agent.name}: WAL replay failed: {exc}",
                ))
                continue
            one = {s.instance_id: s.snapshot() for s in first.fragments()}
            two = {s.instance_id: s.snapshot() for s in second.fragments()}
            if one != two:
                out.append(Violation(
                    "wal-convergence", "-",
                    f"{agent.name}: two WAL replays diverged "
                    f"({sorted(set(one) ^ set(two)) or 'same ids, different state'})",
                ))
            if first._summary != agent.agdb._summary:
                diff = sorted(
                    set(first._summary.items()) ^ set(agent.agdb._summary.items())
                )
                out.append(Violation(
                    "wal-convergence", "-",
                    f"{agent.name}: replayed summary table diverges from the "
                    f"live one: {diff}",
                ))
    return out


# ------------------------------------------------------------------ execution


def _execute(task: ChaosTask, plan: FaultPlan,
             collect_trace: bool = True) -> ChaosOutcome:
    from repro.analysis.experiment import build_control_system
    from repro.obs.export import trace_to_jsonl
    from repro.workloads.generator import WorkloadGenerator

    started_wall = time.perf_counter()
    architecture, coordination = split_config(task.config)
    params = task.resolved_params()
    generator = WorkloadGenerator(params, seed=task.seed, key_pool=2,
                                  coordination=coordination)
    workload = generator.build()
    system = build_control_system(architecture, params, seed=task.seed,
                                  trace=True)
    generator.install(system, workload)
    injector = system.inject_faults(plan)
    run = generator.drive(system, workload,
                          instances_per_schema=task.instances_per_schema)
    system.run()

    violations: list[Violation] = []
    violations.extend(check_invariants(CausalTrace.from_run(system.trace,
                                                            system.tracer)))
    violations.extend(_check_liveness(system, run.instances))
    violations.extend(_check_orphaned_inflight(system))
    violations.extend(_check_wal_convergence(system))
    if task.strict and injector.lost:
        violations.append(Violation(
            "message-loss", "-",
            f"{len(injector.lost)} message(s) permanently lost after "
            f"exhausting their retry budget",
        ))

    outcome = ChaosOutcome(
        config=task.config,
        seed=task.seed,
        plan_spec=plan.to_spec(),
        started=len(run.instances),
        committed=system.metrics.instances_committed,
        aborted=system.metrics.instances_aborted,
        messages=system.metrics.total_messages(),
        lost_messages=len(injector.lost),
        sim_time=system.simulator.now,
        fault_stats=injector.stats.as_dict(),
        violations=[v.render() for v in violations],
        wall_time_s=time.perf_counter() - started_wall,
        events=system.simulator.events_processed,
        peak_rss_kb=peak_rss_kb(),
    )
    if violations and collect_trace:
        outcome.trace_jsonl = trace_to_jsonl(system.trace, system.tracer)
        outcome.minimized_spec = _minimize(task, plan).to_spec()
    return outcome


def _violates(task: ChaosTask, plan: FaultPlan) -> bool:
    return bool(_execute(task, plan, collect_trace=False).violations)


def _minimize(task: ChaosTask, plan: FaultPlan) -> FaultPlan:
    """Greedily drop fault-plan dimensions while the violation persists.

    One pass over the (few) dimensions, restarting after each successful
    removal; every probe is a full deterministic re-run, so the result is
    a genuinely replayable smaller plan, not a guess.
    """
    current = plan
    shrunk = True
    while shrunk:
        shrunk = False
        for dimension in current.dimensions():
            candidate = current.without(dimension)
            if candidate.to_spec() == current.to_spec():
                continue
            if _violates(task, candidate):
                current = candidate
                shrunk = True
                break
    return current


# ------------------------------------------------------------------ the sweep


def chaos_tasks(
    seeds: Iterable[int],
    configs: Sequence[str] = CHAOS_CONFIGS,
    params: WorkloadParameters | None = None,
    instances_per_schema: int = CHAOS_INSTANCES_PER_SCHEMA,
    plan_spec: str = "",
    strict: bool = False,
) -> list[ChaosTask]:
    """The chaos grid, config-major then seed order (canonical)."""
    for label in configs:
        split_config(label)  # validate eagerly
    return [
        ChaosTask(config=label, seed=seed, plan_spec=plan_spec, params=params,
                  instances_per_schema=instances_per_schema, strict=strict)
        for label in configs
        for seed in seeds
    ]


def _run_chaos_task(task: ChaosTask) -> ChaosOutcome:
    """Module-level worker entry point (must be picklable)."""
    return task.run()


#: Progress callback signature: ``progress(done, total, task, outcome)``,
#: invoked once per *completed* task, in completion (not canonical) order.
ChaosProgressFn = Callable[[int, int, ChaosTask, ChaosOutcome], None]


def _run_chaos_serial(task_list: list[ChaosTask],
                      progress: ChaosProgressFn | None) -> list[ChaosOutcome]:
    outcomes = []
    for index, task in enumerate(task_list):
        outcome = task.run()
        outcomes.append(outcome)
        if progress is not None:
            progress(index + 1, len(task_list), task, outcome)
    return outcomes


# ------------------------------------------------------------ wall clock


@dataclass
class RealtimeChaosReport:
    """Outcome-level consistency verdict for wall-clock chaos replays.

    The asyncio backend is not bit-deterministic (real timers race), so
    the check is at the level the protocols guarantee: every replay of
    ``(config, seed, plan)`` must end with the *same terminal outcome per
    instance* — drop/dup/delay faults are masked identically because the
    injector's decision streams and the executor's retry jitter are both
    seeded from the system's master seed.
    """

    config: str
    seed: int
    plan_spec: str
    replays: int
    instances: int
    #: One ``{instance_id: "status|outputs-json"}`` digest per replay.
    digests: list[dict[str, str]] = field(default_factory=list)
    #: Instances that missed the timeout in any replay (liveness finding).
    unfinished: list[str] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def consistent(self) -> bool:
        return (not self.unfinished and bool(self.digests)
                and all(d == self.digests[0] for d in self.digests[1:]))

    def as_dict(self) -> dict[str, Any]:
        return {
            "config": self.config,
            "seed": self.seed,
            "plan": self.plan_spec,
            "replays": self.replays,
            "instances": self.instances,
            "digests": [dict(d) for d in self.digests],
            "unfinished": list(self.unfinished),
            "consistent": self.consistent,
            "wall_time_s": round(self.wall_time_s, 6),
        }


def _realtime_chaos_schema():
    from repro.model import SchemaBuilder

    builder = SchemaBuilder("ChaosPair", inputs=["x"])
    builder.step("A", program="p.a", inputs=["WF.x"], outputs=["y"], cost=1)
    builder.step("B", program="p.b", inputs=["A.y"], outputs=["z"], cost=1)
    builder.arc("A", "B")
    builder.output("result", "B.z")
    return builder.build()


async def _realtime_replay(
    architecture: str, seed: int, plan: FaultPlan,
    instances: int, timeout_s: float,
) -> tuple[dict[str, str], list[str]]:
    import asyncio

    from repro.engines import (
        CentralizedControlSystem,
        DistributedControlSystem,
        ParallelControlSystem,
        SystemConfig,
    )

    systems = {
        "centralized": CentralizedControlSystem,
        "parallel": ParallelControlSystem,
        "distributed": DistributedControlSystem,
    }
    if architecture not in systems:
        raise CrewError(f"unknown architecture {architecture!r}")
    config = SystemConfig(
        runtime="asyncio", seed=seed, latency=0.0, work_time_scale=0.001,
        step_status_timeout=1.0, step_status_poll_interval=0.5,
    )
    system = systems[architecture](config)
    system.runtime.start()
    system.inject_faults(plan)
    system.register_schema(_realtime_chaos_schema())
    ids = [system.start_workflow("ChaosPair", {"x": i})
           for i in range(instances)]
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while (loop.time() < deadline
           and not all(iid in system.outcomes for iid in ids)):
        await asyncio.sleep(0.02)
    digest: dict[str, str] = {}
    unfinished: list[str] = []
    for iid in ids:
        outcome = system.outcomes.get(iid)
        if outcome is None:
            unfinished.append(iid)
            continue
        status = "committed" if outcome.committed else "aborted"
        digest[iid] = (
            f"{status}|"
            f"{json.dumps(outcome.outputs, sort_keys=True, default=str)}"
        )
    return digest, unfinished


def run_realtime_chaos(
    config: str,
    seed: int = 0,
    plan_spec: str = "drop=0.05,dup=0.05,delay=0.05",
    instances: int = 8,
    replays: int = 2,
    timeout_s: float = 30.0,
) -> RealtimeChaosReport:
    """Run one fault plan on the live asyncio backend ``replays`` times.

    Each replay builds a fresh control system (same seed → same instance
    ids, same injector decision streams, same retry jitter), submits
    ``instances`` workflows with the plan armed, and waits for every
    terminal outcome.  Replays must produce identical outcome digests;
    any divergence or unfinished instance makes the report inconsistent.
    """
    import asyncio

    architecture, __ = split_config(config)
    plan = FaultPlan.parse(plan_spec) if plan_spec else FaultPlan()
    started = time.perf_counter()
    report = RealtimeChaosReport(
        config=config, seed=seed, plan_spec=plan.to_spec(),
        replays=replays, instances=instances,
    )
    for __ in range(replays):
        digest, unfinished = asyncio.run(
            _realtime_replay(architecture, seed, plan, instances, timeout_s)
        )
        report.digests.append(digest)
        report.unfinished.extend(unfinished)
    report.wall_time_s = time.perf_counter() - started
    return report


def run_chaos(
    tasks: Iterable[ChaosTask],
    workers: int | None = None,
    progress: ChaosProgressFn | None = None,
) -> list[ChaosOutcome]:
    """Run every chaos task; outcomes come back in canonical task order.

    Mirrors :func:`repro.analysis.sweep.run_sweep`: each task is
    deterministic given its ``(config, seed, plan)``, so worker count and
    scheduling never change a verdict — only the wall time.  ``progress``
    is called after each task completes (in completion order — outcomes
    still merge in canonical order).
    """
    from repro.analysis.sweep import default_workers

    task_list = list(tasks)
    count = default_workers() if workers is None else max(1, int(workers))
    count = min(count, len(task_list)) or 1
    if count <= 1 or len(task_list) <= 1:
        return _run_chaos_serial(task_list, progress)
    try:
        with ProcessPoolExecutor(max_workers=count) as pool:
            if progress is None:
                return list(pool.map(_run_chaos_task, task_list))
            futures = {pool.submit(_run_chaos_task, task): index
                       for index, task in enumerate(task_list)}
            slots: list[ChaosOutcome | None] = [None] * len(task_list)
            done = 0
            for future in as_completed(futures):
                index = futures[future]
                slots[index] = future.result()
                done += 1
                progress(done, len(task_list), task_list[index], slots[index])
            return slots  # type: ignore[return-value]
    except (OSError, PermissionError):  # pragma: no cover - sandboxed hosts
        return _run_chaos_serial(task_list, progress)
