"""Parallel experiment sweep runner.

The full evaluation (Tables 4–7) is a bag of independent simulation
configs: each ``(architecture, parameter point, coordination flag, seed)``
task builds its own control system, drives its own workload and reports
its own :class:`~repro.analysis.experiment.ArchitectureResult`.  Nothing
couples two tasks at runtime — determinism is *per task* because every
task carries its own seed — so the sweep fans out over a
``concurrent.futures.ProcessPoolExecutor`` and merges results back in
**canonical order** (the order the tasks were submitted), which keeps the
merged result list, the run-metadata log and any report rendered from
them byte-identical whether the sweep ran on 1 worker or 40.

``workers <= 1`` (or a single task) short-circuits to a plain in-process
loop: no executor, no pickling, bit-for-bit the behaviour of calling
:func:`run_architecture_experiment` yourself — which is also the fallback
when the platform cannot spawn processes (restricted sandboxes).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.analysis.experiment import ArchitectureResult, run_architecture_experiment
from repro.workloads.params import WorkloadParameters

__all__ = ["SweepResult", "SweepTask", "default_workers", "run_sweep", "sweep_tasks"]


@dataclass(frozen=True)
class SweepTask:
    """One independent experiment config in a sweep.

    ``label`` is free-form provenance (e.g. ``"centralized/coordinated"``)
    carried through to the merged run log; it does not affect execution.
    """

    architecture: str
    params: WorkloadParameters
    coordination: bool = False
    instances_per_schema: int | None = None
    seed: int = 7
    label: str = ""

    def run(self) -> ArchitectureResult:
        return run_architecture_experiment(
            self.architecture,
            self.params,
            coordination=self.coordination,
            instances_per_schema=self.instances_per_schema,
            seed=self.seed,
        )


@dataclass
class SweepResult:
    """Results and provenance of one sweep, in canonical task order."""

    tasks: list[SweepTask] = field(default_factory=list)
    results: list[ArchitectureResult] = field(default_factory=list)
    workers: int = 1

    @property
    def run_log(self) -> list[dict[str, Any]]:
        """Per-task run metadata (the benchmark harness's ``RUN_LOG`` rows),
        stamped with each task's label, in canonical order."""
        rows = []
        for task, result in zip(self.tasks, self.results):
            row = result.run_metadata()
            if task.label:
                row["label"] = task.label
            rows.append(row)
        return rows


def default_workers() -> int:
    """Worker count when the caller does not choose: one per core."""
    return max(1, os.cpu_count() or 1)


def _run_task(task: SweepTask) -> ArchitectureResult:
    """Module-level worker entry point (must be picklable)."""
    return task.run()


#: Progress callback signature: ``progress(done, total, task, result)``,
#: invoked once per *completed* task, in completion (not canonical) order.
ProgressFn = Callable[[int, int, SweepTask, ArchitectureResult], None]


def _run_serial(task_list: list[SweepTask],
                progress: ProgressFn | None) -> list[ArchitectureResult]:
    results = []
    for index, task in enumerate(task_list):
        result = task.run()
        results.append(result)
        if progress is not None:
            progress(index + 1, len(task_list), task, result)
    return results


def run_sweep(
    tasks: Iterable[SweepTask],
    workers: int | None = None,
    progress: ProgressFn | None = None,
) -> SweepResult:
    """Run every task and return results in canonical (submission) order.

    ``workers`` defaults to :func:`default_workers`; ``workers <= 1`` runs
    serially in-process.  Each task is deterministic given its own seed,
    so worker count and scheduling order never change any result — only
    the wall time.  ``progress`` is called after each task completes (in
    completion order — results still merge in canonical order).
    """
    task_list = list(tasks)
    count = default_workers() if workers is None else max(1, int(workers))
    count = min(count, len(task_list)) or 1
    if count <= 1 or len(task_list) <= 1:
        return SweepResult(tasks=task_list,
                           results=_run_serial(task_list, progress), workers=1)
    try:
        with ProcessPoolExecutor(max_workers=count) as pool:
            if progress is None:
                # Executor.map preserves submission order, so the merge is
                # the identity: results land in canonical config order
                # regardless of which worker finished first.
                results = list(pool.map(_run_task, task_list))
            else:
                # submit + as_completed so progress fires as tasks finish;
                # slots keyed by submission index keep canonical order.
                futures = {pool.submit(_run_task, task): index
                           for index, task in enumerate(task_list)}
                slots: list[ArchitectureResult | None] = [None] * len(task_list)
                done = 0
                for future in as_completed(futures):
                    index = futures[future]
                    slots[index] = future.result()
                    done += 1
                    progress(done, len(task_list), task_list[index],
                             slots[index])
                results = slots  # type: ignore[assignment]
    except (OSError, PermissionError):  # pragma: no cover - sandboxed hosts
        return SweepResult(tasks=task_list,
                           results=_run_serial(task_list, progress), workers=1)
    return SweepResult(tasks=task_list, results=results, workers=count)


def sweep_tasks(
    architectures: Sequence[str] = ("centralized", "parallel", "distributed"),
    params: WorkloadParameters | None = None,
    coordination_modes: Sequence[bool] = (False, True),
    seed: int = 7,
    instances_per_schema: int | None = None,
) -> list[SweepTask]:
    """The canonical Table 4–6 task grid: architecture-major, then
    normal-before-coordinated — the exact order ``full_evaluation`` has
    always used, so merged reports stay byte-identical to serial runs."""
    from repro.analysis.experiment import EVAL_PARAMS

    point = params if params is not None else EVAL_PARAMS
    return [
        SweepTask(
            architecture=architecture,
            params=point,
            coordination=coordination,
            instances_per_schema=instances_per_schema,
            seed=seed,
            label=f"{architecture}/{'coordinated' if coordination else 'normal'}",
        )
        for architecture in architectures
        for coordination in coordination_modes
    ]
