"""Performance analysis: closed-form model, Table 7 ranking, evaluation
runner, causal-trace reconstruction and protocol-invariant checking."""

from repro.analysis.causal import (
    Anomaly,
    CausalTrace,
    PhaseLatency,
    RecordRow,
    SpanRow,
)
from repro.analysis.experiment import (
    ArchitectureResult,
    EvaluationResults,
    full_evaluation,
    ocr_ablation,
    render_evaluation,
    run_architecture_experiment,
)
from repro.analysis.model import (
    ARCHITECTURES,
    ArchitectureModel,
    CostRow,
    architecture_model,
    centralized_model,
    distributed_model,
    parallel_model,
)
from repro.analysis.recommend import (
    SCENARIOS,
    Ranking,
    rank_architectures,
    recommendation_matrix,
)
from repro.analysis.invariants import (
    INVARIANTS,
    Violation,
    check_invariants,
)
from repro.analysis.report import (
    MeasuredCosts,
    format_table,
    measure_costs,
    render_architecture_table,
    render_comparison,
    render_recommendation,
)
from repro.analysis.sweep import (
    SweepResult,
    SweepTask,
    default_workers,
    run_sweep,
    sweep_tasks,
)

__all__ = [
    "ARCHITECTURES",
    "INVARIANTS",
    "Anomaly",
    "ArchitectureResult",
    "CausalTrace",
    "PhaseLatency",
    "RecordRow",
    "SpanRow",
    "Violation",
    "check_invariants",
    "EvaluationResults",
    "full_evaluation",
    "ocr_ablation",
    "render_evaluation",
    "run_architecture_experiment",
    "ArchitectureModel",
    "CostRow",
    "MeasuredCosts",
    "Ranking",
    "SCENARIOS",
    "architecture_model",
    "centralized_model",
    "distributed_model",
    "format_table",
    "measure_costs",
    "parallel_model",
    "rank_architectures",
    "recommendation_matrix",
    "render_architecture_table",
    "render_comparison",
    "render_recommendation",
    "SweepResult",
    "SweepTask",
    "default_workers",
    "run_sweep",
    "sweep_tasks",
]
