"""Profiled experiment runs: any config or a full sweep under the profiler.

Glue between the evaluation harness and :class:`repro.obs.profile.
Profiler`: build a control system for an ``<architecture>-<mode>``
config, install the profiler across its duck-typed hook points, drive
the Table-3 workload, and hand back both the per-run counters and the
accumulated profile.  Modes extend the sweep grid with ``failure`` —
every schema's designated failure step fails on its first attempt (the
:func:`~repro.analysis.experiment.ocr_ablation` pattern), so the OCR
recovery and rollback frames actually appear in the profile.

One :class:`~repro.obs.profile.Profiler` may be threaded through several
runs (``repro profile --sweep``); runs execute sequentially in-process —
frame attribution cannot cross a process pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.analysis.experiment import EVAL_PARAMS, build_control_system
from repro.core.programs import ConstantProgram, FailEveryNth
from repro.errors import CrewError
from repro.obs.profile import Profiler, peak_rss_kb
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.params import WorkloadParameters

__all__ = [
    "PROFILE_ARCHITECTURES",
    "PROFILE_MODES",
    "ProfileRun",
    "profile_configs",
    "run_profiled",
    "run_profiled_sweep",
    "split_profile_config",
]

PROFILE_ARCHITECTURES = ("centralized", "parallel", "distributed")
PROFILE_MODES = ("normal", "coordinated", "failure")


def profile_configs(modes: tuple[str, ...] = ("normal", "coordinated")) -> list[str]:
    """The profileable config grid (sweep order: architecture-major)."""
    return [f"{architecture}-{mode}"
            for architecture in PROFILE_ARCHITECTURES for mode in modes]


def split_profile_config(label: str) -> tuple[str, str]:
    """``"distributed-failure"`` -> ``("distributed", "failure")``.

    Accepts both the profile CLI's ``-`` separator and the sweep/chaos
    ``/`` separator, so sweep labels paste straight into ``repro
    profile --config``.
    """
    for sep in ("/", "-"):
        architecture, found, mode = label.partition(sep)
        if found:
            break
    if (architecture not in PROFILE_ARCHITECTURES
            or mode not in PROFILE_MODES):
        expected = [f"{a}-{m}" for a in PROFILE_ARCHITECTURES
                    for m in PROFILE_MODES]
        raise CrewError(
            f"bad profile config {label!r}; expected one of {expected}"
        )
    return architecture, mode


@dataclass
class ProfileRun:
    """Counters of one profiled run (the profiler itself accumulates)."""

    config: str
    seed: int
    committed: int
    aborted: int
    messages: int
    events: int
    sim_time: float
    wall_time_s: float
    peak_rss_kb: int | None

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "config": self.config,
            "seed": self.seed,
            "committed": self.committed,
            "aborted": self.aborted,
            "messages": self.messages,
            "events": self.events,
            "sim_time": round(self.sim_time, 3),
            "wall_time_s": round(self.wall_time_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "peak_rss_kb": self.peak_rss_kb,
        }


def run_profiled(
    config: str,
    seed: int = 7,
    params: WorkloadParameters | None = None,
    instances_per_schema: int | None = None,
    profiler: Profiler | None = None,
    sample_interval: int = 256,
) -> tuple[ProfileRun, Profiler]:
    """Run one config under the profiler; returns ``(run, profiler)``.

    Pass an existing ``profiler`` to accumulate several runs into one
    profile (the ``--sweep`` path); otherwise a fresh one is created.
    The run itself is the deterministic Table-3 workload of
    :func:`~repro.analysis.experiment.run_architecture_experiment` —
    profiling never changes counters, only observes them.
    """
    architecture, mode = split_profile_config(config)
    point = params if params is not None else EVAL_PARAMS
    generator = WorkloadGenerator(point, seed=seed, key_pool=2,
                                  coordination=(mode == "coordinated"))
    workload = generator.build()
    system = build_control_system(architecture, point, seed=seed)
    generator.install(system, workload)
    if mode == "failure":
        # Every schema's designated failure step fails its first attempt,
        # exercising the OCR recovery path (the ocr_ablation pattern).
        for schema in workload.schemas:
            failing = workload.failure_steps[schema.name]
            outputs = {out: f"{schema.name}.{failing}.{out}"
                       for out in schema.steps[failing].outputs}
            system.register_program(
                schema.steps[failing].program,
                FailEveryNth(ConstantProgram(outputs), {1}),
            )
    prof = profiler if profiler is not None else Profiler(sample_interval)
    prof.install(system)
    started = time.perf_counter()
    generator.drive(system, workload,
                    instances_per_schema=instances_per_schema)
    system.run()
    wall = time.perf_counter() - started
    prof.publish(system.registry)
    run = ProfileRun(
        config=config,
        seed=seed,
        committed=system.metrics.instances_committed,
        aborted=system.metrics.instances_aborted,
        messages=system.metrics.total_messages(),
        events=system.simulator.events_processed,
        sim_time=system.simulator.now,
        wall_time_s=wall,
        peak_rss_kb=peak_rss_kb(),
    )
    return run, prof


def run_profiled_sweep(
    configs: list[str] | None = None,
    seed: int = 7,
    params: WorkloadParameters | None = None,
    instances_per_schema: int | None = None,
    sample_interval: int = 256,
) -> tuple[list[ProfileRun], Profiler]:
    """Run several configs sequentially under one shared profiler.

    Defaults to the canonical six-config sweep grid; frames, counters
    and collapsed stacks accumulate across the runs.
    """
    chosen = configs if configs is not None else profile_configs()
    profiler = Profiler(sample_interval)
    runs = []
    for label in chosen:
        run, __ = run_profiled(
            label, seed=seed, params=params,
            instances_per_schema=instances_per_schema, profiler=profiler,
        )
        runs.append(run)
    return runs, profiler
