"""The paper's analytic cost model (Tables 4, 5 and 6).

Closed-form per-instance expressions for the load at a node (in multiples
of the per-step navigation load ``l``) and the number of physical messages
exchanged, for each mechanism under each architecture.  The expressions
are transcribed verbatim from the paper; evaluating them at the
:data:`~repro.workloads.params.PAPER_DEFAULTS` point reproduces the
"Normalized Value" columns exactly (asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.runtime.metrics import Mechanism
from repro.workloads.params import WorkloadParameters

__all__ = [
    "ARCHITECTURES",
    "ArchitectureModel",
    "CostRow",
    "architecture_model",
    "centralized_model",
    "distributed_model",
    "parallel_model",
]


@dataclass(frozen=True)
class CostRow:
    """One mechanism row of a Table 4/5/6-style table."""

    mechanism: Mechanism
    load_expression: str
    load_value: float  # in multiples of l
    message_expression: str
    message_value: float


@dataclass(frozen=True)
class ArchitectureModel:
    """All five mechanism rows for one architecture at one parameter point."""

    architecture: str
    params: WorkloadParameters
    rows: tuple[CostRow, ...]

    def row(self, mechanism: Mechanism) -> CostRow:
        for row in self.rows:
            if row.mechanism is mechanism:
                return row
        raise KeyError(mechanism)

    def load(self, mechanism: Mechanism) -> float:
        return self.row(mechanism).load_value

    def messages(self, mechanism: Mechanism) -> float:
        return self.row(mechanism).message_value

    def total_load(self, mechanisms: tuple[Mechanism, ...]) -> float:
        return sum(self.load(m) for m in mechanisms)

    def total_messages(self, mechanisms: tuple[Mechanism, ...]) -> float:
        return sum(self.messages(m) for m in mechanisms)


def centralized_model(p: WorkloadParameters) -> ArchitectureModel:
    """Table 4: Load and Physical Messages in Centralized Workflow Control."""
    coord = p.coordination_degree
    rows = (
        CostRow(Mechanism.NORMAL, "l*s", p.s, "2*s*a", 2 * p.s * p.a),
        CostRow(Mechanism.INPUT_CHANGE, "l*r*pi", p.r * p.pi,
                "2*r*pi*pr*a", 2 * p.r * p.pi * p.pr * p.a),
        CostRow(Mechanism.ABORT, "l*w*pa", p.w * p.pa,
                "2*w*pa*a", 2 * p.w * p.pa * p.a),
        CostRow(Mechanism.FAILURE, "l*r*pf", p.r * p.pf,
                "2*r*pf*pr*a", 2 * p.r * p.pf * p.pr * p.a),
        CostRow(Mechanism.COORDINATION, "l*(me+ro+rd)*s", coord * p.s, "0", 0.0),
    )
    return ArchitectureModel("centralized", p, rows)


def parallel_model(p: WorkloadParameters) -> ArchitectureModel:
    """Table 5: Load and Physical Messages in Parallel Workflow Control."""
    coord = p.coordination_degree
    rows = (
        CostRow(Mechanism.NORMAL, "l*s/e", p.s / p.e, "2*s*a", 2 * p.s * p.a),
        CostRow(Mechanism.INPUT_CHANGE, "(l*r*pi)/e", p.r * p.pi / p.e,
                "2*r*pi*pr*a", 2 * p.r * p.pi * p.pr * p.a),
        CostRow(Mechanism.ABORT, "(l*w*pa)/e", p.w * p.pa / p.e,
                "2*w*pa*a", 2 * p.w * p.pa * p.a),
        CostRow(Mechanism.FAILURE, "(l*r*pf)/e", p.r * p.pf / p.e,
                "2*r*pf*pr*a", 2 * p.r * p.pf * p.pr * p.a),
        CostRow(Mechanism.COORDINATION, "l*(me+ro+rd)*s", coord * p.s,
                "(me+ro+rd)*e*s", coord * p.e * p.s),
    )
    return ArchitectureModel("parallel", p, rows)


def distributed_model(p: WorkloadParameters) -> ArchitectureModel:
    """Table 6: Load and Physical Messages in Distributed Workflow Control."""
    coord = p.coordination_degree
    rows = (
        CostRow(Mechanism.NORMAL, "l*s/z", p.s / p.z, "s*a+f", p.s * p.a + p.f),
        CostRow(Mechanism.INPUT_CHANGE, "(l*r*pi)/z", p.r * p.pi / p.z,
                "(r+v)*pi*a", (p.r + p.v) * p.pi * p.a),
        CostRow(Mechanism.ABORT, "(l*w*pa)/z", p.w * p.pa / p.z,
                "2*w*pa*a", 2 * p.w * p.pa * p.a),
        CostRow(Mechanism.FAILURE, "(l*r*pf)/z", p.r * p.pf / p.z,
                "(r+v)*pf*a", (p.r + p.v) * p.pf * p.a),
        CostRow(Mechanism.COORDINATION, "(l*(me+ro+rd)*a*d*s)/z",
                coord * p.a * p.d * p.s / p.z,
                "(me+ro+rd)*a*d*s", coord * p.a * p.d * p.s),
    )
    return ArchitectureModel("distributed", p, rows)


ARCHITECTURES: dict[str, Callable[[WorkloadParameters], ArchitectureModel]] = {
    "centralized": centralized_model,
    "parallel": parallel_model,
    "distributed": distributed_model,
}


def architecture_model(name: str, params: WorkloadParameters) -> ArchitectureModel:
    try:
        return ARCHITECTURES[name](params)
    except KeyError:
        raise KeyError(f"unknown architecture {name!r}") from None
