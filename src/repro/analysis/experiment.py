"""One-call reproduction of the paper's full evaluation.

:func:`run_architecture_experiment` performs one Table 4/5/6 measurement
(build system → install Table-3 workload → drive → normalize);
:func:`full_evaluation` runs every architecture with and without
coordination requirements plus the OCR-vs-Saga ablation, and
:func:`render_evaluation` turns the results into a markdown report — the
programmatic equivalent of ``pytest benchmarks/ --benchmark-only``,
exposed as ``python -m repro evaluate``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.analysis.model import architecture_model
from repro.analysis.report import (
    MeasuredCosts,
    format_table,
    measure_costs,
    render_comparison,
    render_recommendation,
)
from repro.analysis.recommend import recommendation_matrix
from repro.core.programs import ConstantProgram, FailEveryNth
from repro.engines import (
    CentralizedControlSystem,
    ControlSystem,
    DistributedControlSystem,
    ParallelControlSystem,
    SystemConfig,
)
from repro.model.policies import AlwaysReexecute
from repro.obs.profile import peak_rss_kb
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.params import PAPER_DEFAULTS, WorkloadParameters

__all__ = [
    "ArchitectureResult",
    "EvaluationResults",
    "build_control_system",
    "full_evaluation",
    "ocr_ablation",
    "render_evaluation",
    "run_architecture_experiment",
]

#: Evaluation-scale default: the Table-3 calibration point with the schema
#: count reduced so a full evaluation stays in seconds.
EVAL_PARAMS = PAPER_DEFAULTS.evolve(c=4, i=25)


def build_control_system(
    architecture: str, params: WorkloadParameters, seed: int = 7,
    trace: bool = False,
) -> ControlSystem:
    """A control system sized for the given parameter point."""
    config = SystemConfig(seed=seed, trace=trace)
    if architecture == "centralized":
        return CentralizedControlSystem(
            config, num_agents=max(4, params.a * 2), agents_per_step=params.a
        )
    if architecture == "parallel":
        return ParallelControlSystem(
            config, num_engines=params.e, num_agents=max(4, params.a * 2),
            agents_per_step=params.a,
        )
    if architecture == "distributed":
        return DistributedControlSystem(
            config, num_agents=params.z, agents_per_step=params.a
        )
    raise ValueError(f"unknown architecture {architecture!r}")


@dataclass
class ArchitectureResult:
    """One Table 4/5/6 measurement."""

    architecture: str
    params: WorkloadParameters
    measured: MeasuredCosts
    committed: int
    aborted: int
    seed: int = 7
    wall_time_s: float = 0.0
    messages: int = 0
    spans: int = 0
    trace_records: int = 0
    events: int = 0
    peak_rss_kb: int | None = None

    def report(self) -> str:
        return render_comparison(
            architecture_model(self.architecture, self.params), self.measured
        )

    @property
    def events_per_sec(self) -> float:
        """Kernel events processed per wall-clock second."""
        return self.events / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def run_metadata(self) -> dict[str, Any]:
        """JSON-safe provenance record for benchmark result files."""
        return {
            "architecture": self.architecture,
            "seed": self.seed,
            "params": asdict(self.params),
            "wall_time_s": round(self.wall_time_s, 6),
            "committed": self.committed,
            "aborted": self.aborted,
            "messages": self.messages,
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "peak_rss_kb": self.peak_rss_kb,
            "trace": {"spans": self.spans, "records": self.trace_records},
        }


def run_architecture_experiment(
    architecture: str,
    params: WorkloadParameters = EVAL_PARAMS,
    coordination: bool = False,
    instances_per_schema: int | None = None,
    seed: int = 7,
) -> ArchitectureResult:
    """Run the Table-3 workload under one architecture and normalize."""
    started = time.perf_counter()
    generator = WorkloadGenerator(params, seed=seed, key_pool=2,
                                  coordination=coordination)
    workload = generator.build()
    system = build_control_system(architecture, params, seed=seed)
    generator.install(system, workload)
    generator.drive(system, workload, instances_per_schema=instances_per_schema)
    system.run()
    nodes = (system.agent_names() if architecture == "distributed"
             else system.engine_nodes())
    measured = measure_costs(architecture, system.metrics, nodes)
    return ArchitectureResult(
        architecture=architecture,
        params=params,
        measured=measured,
        committed=system.metrics.instances_committed,
        aborted=system.metrics.instances_aborted,
        seed=seed,
        wall_time_s=time.perf_counter() - started,
        messages=system.metrics.total_messages(),
        spans=len(system.tracer.spans),
        trace_records=len(system.trace),
        events=system.simulator.events_processed,
        peak_rss_kb=peak_rss_kb(),
    )


def ocr_ablation(seed: int = 11, instances: int = 8,
                 schemas: int = 2) -> list[tuple[str, float, float, int]]:
    """OCR vs Saga work comparison: [(label, exec work, comp work, commits)]."""

    def run_variant(pr: float, saga: bool) -> tuple[float, float, int]:
        params = PAPER_DEFAULTS.evolve(c=schemas, i=instances, pf=0.2, pr=pr,
                                       pi=0.0, pa=0.0)
        generator = WorkloadGenerator(params, seed=seed, coordination=False)
        workload = generator.build()
        if saga:
            for schema in workload.schemas:
                for step in schema.cr_policies:
                    schema.cr_policies[step] = AlwaysReexecute()  # type: ignore[index]
        system = build_control_system("distributed", params, seed=seed)
        generator.install(system, workload)
        for schema in workload.schemas:
            failing = workload.failure_steps[schema.name]
            outputs = {
                out: f"{schema.name}.{failing}.{out}"
                for out in schema.steps[failing].outputs
            }
            system.register_program(
                schema.steps[failing].program,
                FailEveryNth(ConstantProgram(outputs), {1}),
            )
        generator.drive(system, workload, instances_per_schema=instances)
        system.run()
        return (
            system.metrics.total_work("execute"),
            system.metrics.total_work("compensate"),
            system.metrics.instances_committed,
        )

    rows = [("OCR pr=0.00", *run_variant(0.0, saga=False))]
    rows.append(("OCR pr=0.25", *run_variant(0.25, saga=False)))
    rows.append(("OCR pr=0.50", *run_variant(0.5, saga=False)))
    rows.append(("Saga baseline", *run_variant(0.0, saga=True)))
    return rows


@dataclass
class EvaluationResults:
    """Everything :func:`full_evaluation` produces."""

    params: WorkloadParameters
    normal: dict[str, ArchitectureResult] = field(default_factory=dict)
    coordinated: dict[str, ArchitectureResult] = field(default_factory=dict)
    ocr: list[tuple[str, float, float, int]] = field(default_factory=list)


def full_evaluation(params: WorkloadParameters = EVAL_PARAMS,
                    seed: int = 7, workers: int = 1) -> EvaluationResults:
    """Run Tables 4-6 (with and without coordination) plus the OCR ablation.

    ``workers > 1`` fans the six architecture×coordination configs out over
    a process pool (see :mod:`repro.analysis.sweep`); every config carries
    its own seed, so the results are identical at any worker count.
    """
    from repro.analysis.sweep import run_sweep, sweep_tasks

    results = EvaluationResults(params=params)
    sweep = run_sweep(sweep_tasks(params=params, seed=seed), workers=workers)
    for task, result in zip(sweep.tasks, sweep.results):
        bucket = results.coordinated if task.coordination else results.normal
        bucket[task.architecture] = result
    results.ocr = ocr_ablation(seed=seed + 4)
    return results


def render_evaluation(results: EvaluationResults) -> str:
    """Markdown report of a :func:`full_evaluation` run."""
    sections = ["# CREW evaluation (regenerated)", ""]
    table_no = {"centralized": 4, "parallel": 5, "distributed": 6}
    for architecture in ("centralized", "parallel", "distributed"):
        sections.append(f"## Table {table_no[architecture]} — "
                        f"{architecture} control")
        sections.append("")
        sections.append("```")
        sections.append(results.normal[architecture].report())
        sections.append("```")
        sections.append("")
        sections.append("With coordination requirements installed:")
        sections.append("```")
        sections.append(results.coordinated[architecture].report())
        sections.append("```")
        sections.append("")
    sections.append("## Table 7 — recommendation matrix (analytic)")
    sections.append("")
    sections.append("```")
    sections.append(render_recommendation(recommendation_matrix(results.params)))
    sections.append("```")
    sections.append("")
    sections.append("## OCR vs Saga ablation")
    sections.append("")
    saga_total = results.ocr[-1][1] + results.ocr[-1][2]
    sections.append("```")
    sections.append(format_table(
        ["variant", "execute work", "compensate work", "total",
         "saving vs Saga"],
        [[label, f"{execute:.0f}", f"{compensate:.0f}",
          f"{execute + compensate:.0f}",
          f"{100 * (1 - (execute + compensate) / saga_total):.1f}%"]
         for label, execute, compensate, __ in results.ocr],
    ))
    sections.append("```")
    return "\n".join(sections)
