"""Paper-style table rendering and analytic-vs-measured comparison.

The benchmark harness prints, for every table of the paper's evaluation,
the analytic expression, its normalized value, and the value measured
from the simulator — "who wins, by roughly what factor" is readable at a
glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.analysis.model import ArchitectureModel
from repro.analysis.recommend import Ranking
from repro.runtime.metrics import Mechanism, MetricsCollector

__all__ = [
    "MeasuredCosts",
    "format_table",
    "measure_costs",
    "render_architecture_table",
    "render_comparison",
    "render_recommendation",
]

_MECHANISM_LABEL = {
    Mechanism.NORMAL: "Normal Execution",
    Mechanism.INPUT_CHANGE: "Workflow Input Change",
    Mechanism.ABORT: "Workflow Abort",
    Mechanism.FAILURE: "Failure Handling",
    Mechanism.COORDINATION: "Coordinated Execution",
}


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Minimal fixed-width table renderer (no external dependencies)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    separator = "-+-".join("-" * w for w in widths)
    out = [line(list(headers)), separator]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


@dataclass(frozen=True)
class MeasuredCosts:
    """Per-instance measured costs from one simulation run."""

    architecture: str
    instances: int
    load: Mapping[Mechanism, float]  # mean per-node load per instance (units of l)
    messages: Mapping[Mechanism, float]  # messages per instance


def measure_costs(
    architecture: str,
    metrics: MetricsCollector,
    scheduling_nodes: Sequence[str],
) -> MeasuredCosts:
    """Normalize collector counters into Table 4-6 units.

    ``scheduling_nodes`` are the nodes whose load the table reports: the
    engine(s) for central/parallel control, the agents for distributed
    control ("load at engine" means load at a scheduling node).
    """
    instances = max(1, metrics.instances_started)
    load = {
        mechanism: metrics.mean_node_load(mechanism, scheduling_nodes) / instances
        for mechanism in Mechanism
    }
    messages = {
        mechanism: metrics.total_messages(mechanism) / instances
        for mechanism in Mechanism
    }
    return MeasuredCosts(
        architecture=architecture,
        instances=metrics.instances_started,
        load=load,
        messages=messages,
    )


def render_architecture_table(model: ArchitectureModel) -> str:
    """Render one of Tables 4-6 in the paper's layout."""
    rows = []
    for row in model.rows:
        rows.append([_MECHANISM_LABEL[row.mechanism], row.load_expression,
                     f"{row.load_value:.4g} * l"])
    rows.append(["--- messages ---", "", ""])
    for row in model.rows:
        rows.append([_MECHANISM_LABEL[row.mechanism], row.message_expression,
                     f"{row.message_value:.4g}"])
    title = f"Load and Physical Messages in {model.architecture.title()} Workflow Control"
    table = format_table(["Mechanism", "Expression", "Normalized Value"], rows)
    return f"{title}\n{table}"


def render_comparison(model: ArchitectureModel, measured: MeasuredCosts) -> str:
    """Analytic vs measured, side by side, per mechanism."""
    rows = []
    for row in model.rows:
        rows.append([
            _MECHANISM_LABEL[row.mechanism],
            f"{row.load_value:.4g}",
            f"{measured.load.get(row.mechanism, 0.0):.4g}",
            f"{row.message_value:.4g}",
            f"{measured.messages.get(row.mechanism, 0.0):.4g}",
        ])
    table = format_table(
        ["Mechanism", "load (paper)", "load (measured)",
         "msgs (paper)", "msgs (measured)"],
        rows,
    )
    return (
        f"{model.architecture.title()} control — paper model vs simulation "
        f"({measured.instances} instances)\n{table}"
    )


def render_recommendation(matrix: Mapping[tuple[str, str], Ranking]) -> str:
    """Render Table 7: Recommended Choice of Architectures."""
    scenarios = ["normal", "normal+failures", "normal+coordinated"]
    criteria = [("load", "Load at Engine"), ("messages", "Physical Messages")]
    rows = []
    for key, label in criteria:
        cells = [label]
        for scenario in scenarios:
            ranking = matrix[(key, scenario)]
            cells.append(
                "  ".join(f"({rank}) {arch}" for rank, arch, __ in ranking.entries)
            )
        rows.append(cells)
    headers = ["Criteria", "Normal", "Normal + Failures", "Normal + Coordinated"]
    return "Recommended Choice of Architectures\n" + format_table(headers, rows)
