"""Architecture recommendation matrix (paper Table 7).

"A summary of the recommended choice based on various requirements is
shown in Table 7.  The numbers indicate the preferred order of choice."

The matrix ranks the three architectures under two criteria (load at a
node, physical messages) for three requirement mixes: pure normal
execution, normal + failures (including input changes and aborts), and
normal + coordinated execution.  Equal costs share a rank — the paper
itself ties centralized and parallel at (2) for normal-execution messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.model import ARCHITECTURES, architecture_model
from repro.runtime.metrics import Mechanism
from repro.workloads.params import PAPER_DEFAULTS, WorkloadParameters

__all__ = ["Ranking", "SCENARIOS", "recommendation_matrix", "rank_architectures"]

#: Requirement mixes of Table 7's columns.
SCENARIOS: dict[str, tuple[Mechanism, ...]] = {
    "normal": (Mechanism.NORMAL,),
    "normal+failures": (
        Mechanism.NORMAL,
        Mechanism.FAILURE,
        Mechanism.INPUT_CHANGE,
        Mechanism.ABORT,
    ),
    "normal+coordinated": (Mechanism.NORMAL, Mechanism.COORDINATION),
}


@dataclass(frozen=True)
class Ranking:
    """Ranked architectures for one (criterion, scenario) cell."""

    criterion: str  # "load" | "messages"
    scenario: str
    #: (rank, architecture, value) — equal values share a rank.
    entries: tuple[tuple[int, str, float], ...]

    def order(self) -> tuple[str, ...]:
        return tuple(arch for __, arch, __v in self.entries)

    def rank_of(self, architecture: str) -> int:
        for rank, arch, __ in self.entries:
            if arch == architecture:
                return rank
        raise KeyError(architecture)


def rank_architectures(
    criterion: str,
    scenario: str,
    params: WorkloadParameters = PAPER_DEFAULTS,
    tolerance: float = 1e-9,
) -> Ranking:
    """Rank the architectures by total cost for a requirement mix."""
    mechanisms = SCENARIOS[scenario]
    costs = []
    for name in ARCHITECTURES:
        model = architecture_model(name, params)
        if criterion == "load":
            value = model.total_load(mechanisms)
        elif criterion == "messages":
            value = model.total_messages(mechanisms)
        else:
            raise ValueError(f"unknown criterion {criterion!r}")
        costs.append((value, name))
    costs.sort(key=lambda pair: (pair[0], pair[1]))
    entries: list[tuple[int, str, float]] = []
    rank = 0
    previous: float | None = None
    for position, (value, name) in enumerate(costs, start=1):
        if previous is None or abs(value - previous) > tolerance:
            rank = position
        entries.append((rank, name, value))
        previous = value
    return Ranking(criterion=criterion, scenario=scenario, entries=tuple(entries))


def recommendation_matrix(
    params: WorkloadParameters = PAPER_DEFAULTS,
) -> dict[tuple[str, str], Ranking]:
    """The full Table 7: {(criterion, scenario): Ranking}."""
    matrix: dict[tuple[str, str], Ranking] = {}
    for criterion in ("load", "messages"):
        for scenario in SCENARIOS:
            matrix[(criterion, scenario)] = rank_architectures(
                criterion, scenario, params
            )
    return matrix
