"""Offline causal-trace reconstruction and anomaly detection.

The exporters in :mod:`repro.obs.export` flatten a run into JSONL; this
module reads that JSONL (or a live ``Trace``/``Tracer`` pair) back into a
:class:`CausalTrace` — per-instance timelines, the cross-node link mesh,
the critical path — without needing the simulation objects.  That is the
whole point: a trace file produced on one machine (or in CI) is a
self-contained, checkable artifact.

Anomaly detection covers the ways a causal chain can be *broken* rather
than merely *wrong* (protocol-order violations live in
:mod:`repro.analysis.invariants`):

* **orphan links / parents** — a span referencing a span id that is not
  in the trace (lost export, capacity drop, or a propagation bug);
* **unlinked receives** — a recv message span with no link at all, i.e.
  a packet whose sender-side span was never stamped;
* **lost packets** — a send message span whose ``msg_id`` never shows up
  in any recv span (the transport guarantees delivery, so this means the
  run ended with the packet parked or the recv span was dropped);
* **clock regressions** — Lamport values that fail to increase along a
  node's message sequence or across a send→recv edge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import CrewError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import Tracer
    from repro.runtime.trace import Trace

__all__ = [
    "Anomaly",
    "CausalTrace",
    "PhaseLatency",
    "RecordRow",
    "SpanRow",
]


@dataclass(frozen=True)
class SpanRow:
    """One span as reconstructed from an exported trace."""

    span_id: int
    parent_id: int | None
    link_id: int | None
    name: str
    category: str
    node: str
    start: float
    end: float | None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def instance(self) -> str | None:
        return self.attrs.get("instance")

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start


@dataclass(frozen=True)
class RecordRow:
    """One flat trace record as reconstructed from an exported trace."""

    time: float
    node: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def instance(self) -> str | None:
        return self.detail.get("instance")


@dataclass(frozen=True)
class Anomaly:
    """One broken-causality finding."""

    kind: str
    message: str
    span_id: int | None = None

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


@dataclass(frozen=True)
class PhaseLatency:
    """Per-category latency contribution within one instance."""

    category: str
    span_count: int
    total: float


class CausalTrace:
    """A reconstructed run: spans, records, and the causal link mesh."""

    def __init__(self, spans: Iterable[SpanRow], records: Iterable[RecordRow]):
        self.spans = sorted(spans, key=lambda s: (s.start, s.span_id))
        self.records = sorted(records, key=lambda r: r.time)
        self.by_id: dict[int, SpanRow] = {s.span_id: s for s in self.spans}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_jsonl(cls, text: str) -> "CausalTrace":
        """Parse the output of :func:`repro.obs.export.trace_to_jsonl`."""
        spans: list[SpanRow] = []
        records: list[RecordRow] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CrewError(
                    f"trace line {lineno} is not valid JSON: {exc}"
                ) from None
            kind = row.get("type")
            if kind == "span":
                spans.append(SpanRow(
                    span_id=row["span_id"],
                    parent_id=row.get("parent_id"),
                    link_id=row.get("link_id"),
                    name=row.get("name", ""),
                    category=row.get("category", ""),
                    node=row.get("node", ""),
                    start=row.get("start", 0.0),
                    end=row.get("end"),
                    attrs=dict(row.get("attrs") or {}),
                ))
            elif kind == "record":
                records.append(RecordRow(
                    time=row.get("time", 0.0),
                    node=row.get("node", ""),
                    kind=row.get("kind", ""),
                    detail=dict(row.get("detail") or {}),
                ))
            elif kind == "meta":
                # Trailing provenance line (dropped-record accounting);
                # carries no events, so the analyzer skips it.
                continue
            else:
                raise CrewError(
                    f"trace line {lineno} has unknown type {kind!r}"
                )
        return cls(spans, records)

    @classmethod
    def from_run(
        cls, trace: "Trace | None", tracer: "Tracer | None" = None
    ) -> "CausalTrace":
        """Build directly from live run objects.

        Implemented as export→parse so tests exercise the exact same
        code path the offline analyzer sees.
        """
        from repro.obs.export import trace_to_jsonl

        return cls.from_jsonl(trace_to_jsonl(trace, tracer))

    # -- queries -------------------------------------------------------------

    def instances(self) -> list[str]:
        """Instance ids seen in spans or records, sorted."""
        out: set[str] = set()
        for span in self.spans:
            if span.instance is not None:
                out.add(span.instance)
        for rec in self.records:
            if rec.instance is not None:
                out.add(rec.instance)
        return sorted(out)

    def timeline(self, instance: str) -> list[SpanRow]:
        """All spans attributed to one instance, in start order.

        A workflow span is attributed by name (`<instance>` or a step
        name prefixed with it); everything else by its ``instance`` attr.
        """
        return [
            s for s in self.spans
            if s.instance == instance
            or s.name == instance
            or s.name.startswith(f"{instance}/")
            or s.name.startswith(f"recovery:{instance}#")
        ]

    def message_spans(self) -> list[SpanRow]:
        return [s for s in self.spans if s.category == "message"]

    def records_for(self, instance: str) -> list[RecordRow]:
        return [r for r in self.records if r.instance == instance]

    # -- causal chains -------------------------------------------------------

    def causal_chain(self, span: SpanRow) -> list[SpanRow]:
        """The chain of causal predecessors of ``span``, oldest first.

        Follows ``link_id`` (cross-node) preferentially, then
        ``parent_id`` (same-node nesting).  Cycles are impossible by
        construction (ids increase along real causality) but guarded
        anyway so a corrupt trace cannot hang the analyzer.
        """
        chain = [span]
        seen = {span.span_id}
        current = span
        while True:
            next_id = current.link_id
            if next_id is None:
                next_id = current.parent_id
            if next_id is None or next_id in seen:
                break
            nxt = self.by_id.get(next_id)
            if nxt is None:
                break
            chain.append(nxt)
            seen.add(nxt.span_id)
            current = nxt
        chain.reverse()
        return chain

    def critical_path(self, instance: str) -> list[SpanRow]:
        """Approximate critical path of one instance, oldest first.

        Starts from the latest-ending span of the instance's timeline
        (preferring non-``workflow`` spans — the instance span covers the
        whole run and carries no causal detail) and walks causal
        predecessors: the link target when present, otherwise the latest
        same-node span that ended at or before the current one started,
        otherwise the parent.
        """
        timeline = self.timeline(instance)
        if not timeline:
            return []

        def end_of(s: SpanRow) -> float:
            return s.end if s.end is not None else s.start

        heads = [s for s in timeline if s.category != "workflow"] or timeline
        path = [max(heads, key=lambda s: (end_of(s), s.span_id))]
        seen = {path[0].span_id}
        members = {s.span_id for s in timeline}
        current = path[0]
        while True:
            nxt: SpanRow | None = None
            if current.link_id is not None:
                nxt = self.by_id.get(current.link_id)
            if nxt is None:
                candidates = [
                    s for s in timeline
                    if s.span_id not in seen
                    and s.node == current.node
                    and end_of(s) <= current.start
                ]
                if candidates:
                    nxt = max(candidates, key=end_of)
            if nxt is None and current.parent_id in members:
                nxt = self.by_id.get(current.parent_id)
            if nxt is None or nxt.span_id in seen:
                break
            path.append(nxt)
            seen.add(nxt.span_id)
            current = nxt
        path.reverse()
        return path

    def phase_latency(self, instance: str) -> list[PhaseLatency]:
        """Per-category time totals for an instance, largest first."""
        totals: dict[str, tuple[int, float]] = {}
        for span in self.timeline(instance):
            count, total = totals.get(span.category, (0, 0.0))
            totals[span.category] = (count + 1, total + span.duration)
        return sorted(
            (PhaseLatency(cat, count, total)
             for cat, (count, total) in totals.items()),
            key=lambda p: (-p.total, p.category),
        )

    # -- anomaly detection ---------------------------------------------------

    def anomalies(self) -> list[Anomaly]:
        """Broken-causality findings across the whole trace."""
        out: list[Anomaly] = []
        for span in self.spans:
            if span.link_id is not None and span.link_id not in self.by_id:
                out.append(Anomaly(
                    "orphan-link",
                    f"span #{span.span_id} ({span.name} @{span.node}) links "
                    f"to missing span #{span.link_id}",
                    span.span_id,
                ))
            if span.parent_id is not None and span.parent_id not in self.by_id:
                out.append(Anomaly(
                    "orphan-parent",
                    f"span #{span.span_id} ({span.name} @{span.node}) has "
                    f"missing parent #{span.parent_id}",
                    span.span_id,
                ))
        messages = self.message_spans()
        recv_ids = {
            s.attrs.get("msg_id") for s in messages
            if s.attrs.get("direction") == "recv"
        }
        for span in messages:
            direction = span.attrs.get("direction")
            if direction == "recv" and span.link_id is None:
                out.append(Anomaly(
                    "unlinked-recv",
                    f"recv span #{span.span_id} ({span.name} @{span.node}) "
                    f"carries no send-span link",
                    span.span_id,
                ))
            elif (direction == "send"
                    and span.attrs.get("msg_id") not in recv_ids):
                out.append(Anomaly(
                    "lost-packet",
                    f"message #{span.attrs.get('msg_id')} "
                    f"({span.name} {span.attrs.get('src')}->"
                    f"{span.attrs.get('dst')}) was sent but never received",
                    span.span_id,
                ))
        out.extend(self._clock_anomalies(messages))
        return out

    def _clock_anomalies(self, messages: list[SpanRow]) -> list[Anomaly]:
        out: list[Anomaly] = []
        # Per-node monotonicity: in span-creation order (span ids are
        # allocated in event order) every message span on a node must
        # carry a strictly larger Lamport value than the previous one.
        last_by_node: dict[str, tuple[int, int]] = {}
        for span in sorted(messages, key=lambda s: s.span_id):
            lamport = span.attrs.get("lamport")
            if not isinstance(lamport, int):
                continue
            prev = last_by_node.get(span.node)
            if prev is not None and lamport <= prev[1]:
                out.append(Anomaly(
                    "clock-regression",
                    f"node {span.node}: span #{span.span_id} lamport "
                    f"{lamport} <= previous span #{prev[0]} lamport {prev[1]}",
                    span.span_id,
                ))
            last_by_node[span.node] = (span.span_id, lamport)
        # Cross-edge: a recv's merged clock must exceed the send's.
        for span in messages:
            if span.attrs.get("direction") != "recv" or span.link_id is None:
                continue
            send = self.by_id.get(span.link_id)
            if send is None:
                continue
            s_lamport = send.attrs.get("lamport")
            r_lamport = span.attrs.get("lamport")
            if (isinstance(s_lamport, int) and isinstance(r_lamport, int)
                    and r_lamport <= s_lamport):
                out.append(Anomaly(
                    "clock-regression",
                    f"edge #{send.span_id}->#{span.span_id}: recv lamport "
                    f"{r_lamport} <= send lamport {s_lamport}",
                    span.span_id,
                ))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CausalTrace spans={len(self.spans)} "
                f"records={len(self.records)}>")
