"""Declarative protocol invariants evaluated over reconstructed traces.

The paper's correctness claims are *orderings*; each invariant here turns
one of them into a predicate over a :class:`~repro.analysis.causal.CausalTrace`
so any fixed-seed run — live in a test, or a JSONL artifact in CI — is a
checkable witness:

``halt-before-reexecute``
    If a node records a ``halt.thread``/``rollback`` for recovery epoch
    *e*, that record precedes every epoch-*e* ``step.execute`` /
    ``step.dispatch`` on the same node and instance.  (A node may legally
    execute at epoch *e* with no halt record at all — it can learn the
    epoch from a re-execution packet — so the converse is *not* an
    invariant.)

``reverse-order-compensation``
    Once a compensation chain is announced (``compensate.set`` /
    ``ocr.compensate`` with a ``chain`` detail, ``compensate.thread``
    with ``steps``), the subsequent per-step compensation records of that
    instance follow the chain order — i.e. reverse execution order —
    until the next chain announcement.

``epoch-monotonicity``
    Per (instance, node), the recovery epochs on ``rollback`` /
    ``halt.thread`` records strictly increase: invalidation rounds never
    regress or repeat.

``at-most-once-commit``
    An instance commits at most once, and never both commits and aborts.

Each checker returns :class:`Violation` objects carrying the offending
record chain, so a CLI or test failure shows *which* events broke the
rule, not just that one did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.causal import CausalTrace, RecordRow
from repro.errors import CrewError

__all__ = ["INVARIANTS", "Violation", "check_invariants"]


@dataclass(frozen=True)
class Violation:
    """One invariant violation with its offending evidence chain."""

    invariant: str
    instance: str
    message: str
    evidence: tuple[str, ...] = field(default_factory=tuple)

    def render(self) -> str:
        lines = [f"{self.invariant}: [{self.instance}] {self.message}"]
        lines.extend(f"    {item}" for item in self.evidence)
        return "\n".join(lines)


def _describe(rec: RecordRow) -> str:
    parts = " ".join(f"{k}={v}" for k, v in sorted(rec.detail.items()))
    return f"t={rec.time:.3f} {rec.node} {rec.kind} {parts}"


_HALT_KINDS = ("halt.thread", "rollback")
_EXEC_KINDS = ("step.execute", "step.dispatch")
_CHAIN_KINDS = ("compensate.set", "ocr.compensate", "compensate.thread")
_COMP_KINDS = ("step.compensated", "step.compensate")


def check_halt_before_reexecute(ct: CausalTrace) -> list[Violation]:
    """Epoch-e halt records precede all epoch-e executions on a node."""
    out: list[Violation] = []
    # (node, instance) -> epoch -> first execution record at that epoch.
    executed: dict[tuple[str, str], dict[int, RecordRow]] = {}
    for rec in ct.records:
        instance = rec.instance
        if instance is None:
            continue
        key = (rec.node, instance)
        if rec.kind in _EXEC_KINDS:
            epoch = rec.detail.get("epoch")
            if isinstance(epoch, int):
                executed.setdefault(key, {}).setdefault(epoch, rec)
        elif rec.kind in _HALT_KINDS:
            epoch = rec.detail.get("epoch")
            if not isinstance(epoch, int):
                continue
            prior = executed.get(key, {}).get(epoch)
            if prior is not None:
                out.append(Violation(
                    "halt-before-reexecute", instance,
                    f"node {rec.node} recorded {rec.kind} for epoch {epoch} "
                    f"after already executing at that epoch",
                    (_describe(prior), _describe(rec)),
                ))
    return out


def check_reverse_order_compensation(ct: CausalTrace) -> list[Violation]:
    """Compensations follow their announced chain (reverse-exec) order."""
    out: list[Violation] = []
    # instance -> (chain record, step->index, last (index, record) seen)
    active: dict[str, tuple[RecordRow, dict[str, int], tuple[int, RecordRow] | None]] = {}
    for rec in ct.records:
        instance = rec.instance
        if instance is None:
            continue
        if rec.kind in _CHAIN_KINDS:
            raw = rec.detail.get("chain") or rec.detail.get("steps") or ""
            chain = [s for s in str(raw).split(",") if s]
            active[instance] = (rec, {s: i for i, s in enumerate(chain)}, None)
        elif rec.kind in _COMP_KINDS:
            entry = active.get(instance)
            if entry is None:
                continue
            chain_rec, index_of, last = entry
            step = rec.detail.get("step")
            index = index_of.get(step)
            if index is None:
                continue  # belongs to another (e.g. abort) chain
            if last is not None and index <= last[0]:
                out.append(Violation(
                    "reverse-order-compensation", instance,
                    f"step {step!r} compensated out of chain order "
                    f"(position {index} after position {last[0]})",
                    (_describe(chain_rec), _describe(last[1]), _describe(rec)),
                ))
            active[instance] = (chain_rec, index_of, (index, rec))
    return out


def check_epoch_monotonicity(ct: CausalTrace) -> list[Violation]:
    """Recovery epochs strictly increase per (instance, node)."""
    out: list[Violation] = []
    last: dict[tuple[str, str], tuple[int, RecordRow]] = {}
    for rec in ct.records:
        if rec.kind not in _HALT_KINDS:
            continue
        instance = rec.instance
        epoch = rec.detail.get("epoch")
        if instance is None or not isinstance(epoch, int):
            continue
        key = (instance, rec.node)
        prev = last.get(key)
        if prev is not None and epoch <= prev[0]:
            out.append(Violation(
                "epoch-monotonicity", instance,
                f"node {rec.node} recorded {rec.kind} epoch {epoch} after "
                f"epoch {prev[0]}",
                (_describe(prev[1]), _describe(rec)),
            ))
        last[key] = (epoch, rec)
    return out


def check_at_most_once_commit(ct: CausalTrace) -> list[Violation]:
    """An instance commits at most once and never also aborts."""
    out: list[Violation] = []
    commits: dict[str, list[RecordRow]] = {}
    aborts: dict[str, list[RecordRow]] = {}
    for rec in ct.records:
        instance = rec.instance
        if instance is None:
            continue
        if rec.kind == "workflow.commit":
            commits.setdefault(instance, []).append(rec)
        elif rec.kind == "workflow.aborted":
            aborts.setdefault(instance, []).append(rec)
    for instance, recs in sorted(commits.items()):
        if len(recs) > 1:
            out.append(Violation(
                "at-most-once-commit", instance,
                f"committed {len(recs)} times",
                tuple(_describe(r) for r in recs),
            ))
        if instance in aborts:
            out.append(Violation(
                "at-most-once-commit", instance,
                "both committed and aborted",
                tuple(_describe(r) for r in recs + aborts[instance]),
            ))
    return out


#: The invariant catalog, name -> checker.
INVARIANTS: dict[str, Callable[[CausalTrace], list[Violation]]] = {
    "halt-before-reexecute": check_halt_before_reexecute,
    "reverse-order-compensation": check_reverse_order_compensation,
    "epoch-monotonicity": check_epoch_monotonicity,
    "at-most-once-commit": check_at_most_once_commit,
}


def check_invariants(
    ct: CausalTrace, names: list[str] | None = None
) -> list[Violation]:
    """Run (a subset of) the invariant catalog over a reconstructed trace."""
    selected = names if names is not None else list(INVARIANTS)
    out: list[Violation] = []
    for name in selected:
        try:
            checker = INVARIANTS[name]
        except KeyError:
            raise CrewError(
                f"unknown invariant {name!r}; catalog: {sorted(INVARIANTS)}"
            ) from None
        out.extend(checker(ct))
    return out
