"""Seeded retry/timeout/backoff policy shared by the engines.

Under fault injection (see :mod:`repro.sim.faults`) the transport can
drop messages; :class:`RetryPolicy` decides when a dropped message is
retransmitted and when its per-message budget is exhausted.  The same
policy paces the central engine's step-retry watchdog, which re-dispatches
an in-flight step whose executor lost the work (agent crash) rather than
letting the instance wedge.

The jitter draw comes from the caller's seeded stream (the injector's
``"faults:retry"`` stream), so retry timing is as deterministic as every
other simulated decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import WorkloadError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff with a per-message retry budget.

    ``backoff(attempt, rng)`` returns the delay before retransmission
    ``attempt`` (1-based: the first retransmission of a message is attempt
    1), or ``None`` once ``attempt`` exceeds ``budget`` — the message is
    then permanently lost and shows up in ``FaultInjector.lost``.
    """

    base_delay: float = 2.0
    factor: float = 2.0
    max_delay: float = 64.0
    jitter: float = 0.5
    budget: int = 12

    def __post_init__(self) -> None:
        if self.base_delay <= 0 or self.factor < 1.0 or self.max_delay <= 0:
            raise WorkloadError(
                f"invalid retry policy: base_delay={self.base_delay}, "
                f"factor={self.factor}, max_delay={self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise WorkloadError(f"jitter={self.jitter} must be in [0, 1]")
        if self.budget < 0:
            raise WorkloadError(f"budget={self.budget} must be >= 0")

    def backoff(self, attempt: int, rng: Any) -> float | None:
        """Delay before retransmission ``attempt``, or None when exhausted."""
        if attempt > self.budget:
            return None
        raw = min(self.base_delay * self.factor ** (attempt - 1), self.max_delay)
        if self.jitter:
            raw += raw * self.jitter * rng.random()
        return raw

    def worst_case_total(self) -> float:
        """Upper bound on the total retransmission window of one message."""
        total = 0.0
        for attempt in range(1, self.budget + 1):
            raw = min(self.base_delay * self.factor ** (attempt - 1), self.max_delay)
            total += raw * (1.0 + self.jitter)
        return total
