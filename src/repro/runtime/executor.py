"""The trivial executor: deferred work as plain clock callbacks.

:class:`ClockExecutor` satisfies :class:`repro.runtime.protocols.Executor`
by scheduling the callback directly on the runtime's clock — exactly what
nodes did before the runtime layer existed, so fixed-seed simulated
schedules stay byte-identical.  The asyncio backend replaces it with
:class:`repro.runtime.realtime.TaskExecutor`, which runs the same
callbacks inside real tasks with retry handling.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.runtime.protocols import Cancellable, Clock

__all__ = ["ClockExecutor"]


class ClockExecutor:
    """Run deferred work as a plain callback on the owning clock."""

    def __init__(self, clock: Clock):
        self.clock = clock
        self.submitted = 0

    def submit(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> Cancellable:
        """Schedule ``fn(*args)`` after ``delay`` units of service time."""
        self.submitted += 1
        return self.clock.schedule(delay, fn, *args)
