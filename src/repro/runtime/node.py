"""Processing nodes (engines and agents live on these) — runtime-agnostic.

A :class:`Node` is a named endpoint on a
:class:`~repro.runtime.protocols.Transport` with:

* a message handler (`handle_message`) implemented by subclasses,
* per-mechanism *load* accounting in units of ``l`` — the "navigation and
  other load per step" parameter of the paper's Table 3,
* a per-node Lamport clock (ticked on send, merged on receive) stamped
  into every outgoing message for causal reconstruction,
* crash/recovery support: a crashed node loses volatile state (subclass
  hook) but keeps its durable stores; the network parks messages addressed
  to it until recovery, matching the persistent-queue assumption.

Nodes never name a concrete substrate: ``simulator`` is any
:class:`~repro.runtime.protocols.Clock` and ``network`` any transport, so
the same engine/agent classes run under discrete-event simulation or the
wall-clock asyncio runtime unchanged.  Deferred service-time work
(``schedule_causal``) routes through the transport's injected
:class:`~repro.runtime.protocols.Executor` when one is present, falling
back to a plain clock callback (the simulated path, byte-identical to the
pre-runtime-layer behaviour).

Observability stays duck-typed (``runtime`` cannot import ``obs``): the
owning control system injects ``causal`` / ``flight_factory`` /
``flight_sink`` attributes on the network before nodes are constructed,
and nodes cache them at init — the same pattern as the metrics
``registry``.  With nothing injected, the per-message overhead is the
Lamport bookkeeping plus a single boolean branch (guarded by the
``benchmarks/bench_obs_overhead.py`` <5% regression gate).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import SimulationError
from repro.runtime.messages import Message
from repro.runtime.metrics import Mechanism
from repro.runtime.protocols import Clock
from repro.runtime.transport import Network

__all__ = ["Node"]


class Node:
    """Base class for every simulated processing node."""

    def __init__(self, name: str, simulator: Clock, network: Network):
        self.name = name
        self.simulator = simulator
        self.network = network
        #: Step executor injected by the owning runtime (may be ``None``:
        #: deferred work then schedules directly on the clock).
        self.executor = getattr(network, "executor", None)
        self.is_up = True
        self.messages_received = 0
        self.crash_count = 0
        #: Lamport clock — ticked by the network on send, merged on
        #: receive.  Always maintained (two int ops per message) so traces
        #: captured later can still be causally ordered.
        self.lamport_clock = 0
        #: The span currently "active" on this node, used as the causal
        #: link source for outgoing messages.  Managed by ``receive`` /
        #: ``schedule_causal``; ``None`` whenever causal tracing is off.
        self.current_span = None
        self.causal = getattr(network, "causal", None)
        flight_factory = getattr(network, "flight_factory", None)
        self.flight = flight_factory(name) if flight_factory is not None else None
        self._flight_sink = getattr(network, "flight_sink", None)
        # Observability: the owning control system injects a
        # MetricsRegistry on the network when tracing is enabled; nodes
        # cache their per-node instruments so the hot path is one `is
        # None` check plus an attribute increment.
        self.registry = getattr(network, "registry", None)
        if self.registry is not None:
            self._msg_counter = self.registry.counter(
                "crew_node_messages_received_total",
                "Physical messages delivered to a node.",
                node=name,
            )
            self._load_counter = self.registry.counter(
                "crew_node_load_units_total",
                "Navigation load charged to a node, in units of l.",
                node=name,
            )
        else:
            self._msg_counter = None
            self._load_counter = None
        # Hot-path gate: with no observability injected, ``receive`` takes
        # a single boolean branch past all per-message instrumentation.
        self._observed = (
            self._msg_counter is not None
            or self.flight is not None
            or self.causal is not None
        )
        network.register(self)

    # -- messaging -----------------------------------------------------------

    def send(
        self,
        dst: str,
        interface: str,
        payload: Mapping[str, Any],
        mechanism: Mechanism,
    ) -> None:
        """Send one physical message to another node."""
        message = self.network.send(self.name, dst, interface, payload,
                                    mechanism, self)
        if self.flight is not None:
            self.flight.note(self.simulator.now, "send", interface, dst,
                             message.msg_id, message.lamport)

    def receive(self, message: Message) -> None:
        """Network entry point; dispatches to :meth:`handle_message`."""
        if not self.is_up:
            raise SimulationError(f"message delivered to down node {self.name!r}")
        self.messages_received += 1
        # Lamport merge must happen before the recv span is created so the
        # span carries the post-merge clock value.
        clock = self.lamport_clock
        if message.lamport > clock:
            clock = message.lamport
        self.lamport_clock = clock + 1
        if not self._observed:
            self.handle_message(message)
            return
        if self._msg_counter is not None:
            self._msg_counter.inc()
        if self.flight is not None:
            self.flight.note(self.simulator.now, "recv", message.interface,
                             message.src, message.msg_id, self.lamport_clock)
        if self.causal is None:
            self.handle_message(message)
            return
        recv_span = self.causal.on_receive(self, message)
        previous = self.current_span
        self.current_span = recv_span
        try:
            self.handle_message(message)
        finally:
            self.current_span = previous

    def handle_message(self, message: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def schedule_causal(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``fn`` preserving the currently-active causal span.

        Work a node defers across simulated time (program completion,
        timer-driven retries) still belongs to the message that triggered
        it; this captures ``current_span`` and restores it around the
        callback so sends from inside ``fn`` link correctly.  Degenerates
        to a plain ``schedule`` when no span is active.

        With a fault injector installed, the callback is additionally
        guarded by this node's crash epoch: deferred work is volatile
        state, so a crash between scheduling and firing discards it (the
        node's recovery path re-derives it from durable stores) instead of
        letting a "down" node send messages.
        """
        span = self.current_span
        faults = self.network.faults
        if span is None and faults is None:
            if self.executor is None:
                self.simulator.schedule(delay, fn, *args)
            else:
                self.executor.submit(delay, fn, *args)
            return
        epoch = self.crash_count

        def run(*inner: Any) -> None:
            if faults is not None and (self.crash_count != epoch or not self.is_up):
                faults.on_dead_continuation(self.name)
                return
            previous = self.current_span
            self.current_span = span
            try:
                fn(*inner)
            finally:
                self.current_span = previous

        if self.executor is None:
            self.simulator.schedule(delay, run, *args)
        else:
            self.executor.submit(delay, run, *args)

    # -- flight recorder -------------------------------------------------------

    def dump_flight(self, reason: str, **detail: Any) -> None:
        """Snapshot the flight-recorder ring into the trace (post-mortem)."""
        if self.flight is None or self._flight_sink is None:
            return
        self._flight_sink(self.simulator.now, self.name, reason,
                          self.flight.snapshot(), **detail)

    # -- load accounting -------------------------------------------------------

    def charge(self, units: float, mechanism: Mechanism) -> None:
        """Charge navigation load (multiples of ``l``) to this node."""
        self.network.metrics.record_load(self.name, mechanism, units)
        if self._load_counter is not None:
            self._load_counter.inc(units)

    # -- failure injection -----------------------------------------------------

    def crash(self) -> None:
        """Take the node down, losing volatile state."""
        if not self.is_up:
            raise SimulationError(f"node {self.name!r} is already down")
        self.is_up = False
        self.crash_count += 1
        if self.registry is not None:
            self.registry.counter(
                "crew_node_crashes_total", "Node crash events.", node=self.name
            ).inc()
        self.dump_flight("crash")
        self.on_crash()

    def recover(self) -> None:
        """Bring the node back up, replay durable state, drain parked messages."""
        if self.is_up:
            raise SimulationError(f"node {self.name!r} is already up")
        self.is_up = True
        self.on_recover()
        self.network.flush_parked(self.name)

    def on_crash(self) -> None:
        """Subclass hook: discard volatile state.  Default does nothing."""

    def on_recover(self) -> None:
        """Subclass hook: rebuild volatile state from durable stores."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.is_up else "down"
        return f"<{type(self).__name__} {self.name} {state}>"
