"""Runtime registry: resolve a backend by name without static coupling.

The engines layer must construct against :mod:`repro.runtime.protocols`
only — the AST import-layering contract forbids it from importing
``repro.sim`` — yet ``ControlSystem()`` with no arguments still has to
come up on the deterministic simulated backend.  The factory squares
that: backends register under a short name mapped to a ``"module:attr"``
target that is imported lazily on first use, so ``repro.runtime`` never
imports a concrete substrate at module load and third-party backends can
plug in with :func:`register_runtime`.

Built-ins:

``"sim"``
    :class:`repro.sim.runtime.SimRuntime` — the discrete-event kernel;
    deterministic, fault-injectable, the default everywhere.
``"asyncio"`` (alias ``"realtime"``)
    :class:`repro.runtime.realtime.RealtimeRuntime` — monotonic wall
    clock over the running asyncio loop, task-based step execution.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.errors import ParameterError
from repro.runtime.protocols import Runtime

__all__ = ["available_runtimes", "build_runtime", "register_runtime"]

#: name -> "module:attr" of a Runtime class (or factory callable).
_REGISTRY: dict[str, str] = {
    "sim": "repro.sim.runtime:SimRuntime",
    "asyncio": "repro.runtime.realtime:RealtimeRuntime",
    "realtime": "repro.runtime.realtime:RealtimeRuntime",
}


def register_runtime(name: str, target: str) -> None:
    """Register (or override) a backend under ``name``.

    ``target`` is a ``"module:attr"`` string resolved lazily by
    :func:`build_runtime`; the attribute is called with the keyword
    arguments passed to ``build_runtime`` and must return an object
    satisfying :class:`repro.runtime.protocols.Runtime`.
    """
    if ":" not in target:
        raise ParameterError(
            f"runtime target must be 'module:attr', got {target!r}"
        )
    _REGISTRY[name] = target


def available_runtimes() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def build_runtime(name: str = "sim", **kwargs: Any) -> Runtime:
    """Instantiate the backend registered under ``name``.

    Keyword arguments are forwarded to the backend constructor (the
    built-ins accept ``metrics=`` and ``latency=``; the asyncio backend
    additionally ``retry=``).
    """
    try:
        target = _REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown runtime {name!r}; available: "
            f"{', '.join(available_runtimes())}"
        ) from None
    module_name, __, attr = target.partition(":")
    module = importlib.import_module(module_name)
    try:
        factory = getattr(module, attr)
    except AttributeError:
        raise ParameterError(
            f"runtime {name!r} target {target!r} has no attribute {attr!r}"
        ) from None
    return factory(**kwargs)
