"""Deterministic fault injection over the runtime transport/executor seams.

The transport in :mod:`repro.runtime.transport` is *reliable* — the paper
assumes persistent message queues — so the protocols above it are only
ever exercised against scripted failures.  This module adds a seeded
fault layer underneath that reliability contract: a :class:`FaultPlan`
describes *what* can go wrong (message drop / duplication / delay spikes /
reordering, link outages, node crash+restart, node stalls, executor
failures) and a :class:`FaultInjector` makes it happen deterministically,
drawing every decision from dedicated :class:`~repro.runtime.rng.SimRandom`
streams so any simulated run is bit-reproducible from ``(seed, plan)``.

The injector keys off the runtime protocols only — any
:class:`~repro.runtime.protocols.Clock` for scheduling (``arm`` and the
retransmission backoff use ``schedule`` / ``schedule_at``), any
:class:`~repro.runtime.protocols.Transport` with the duck-typed ``faults``
hook, and any :class:`~repro.runtime.protocols.Executor` exposing a
``faults`` attribute for the executor-failure dimension.  Under the
discrete-event kernel that makes runs bit-replayable; under the
wall-clock asyncio runtime the same plan replays the *decision sequence*
deterministically (outcome-level reproducibility modulo scheduling).

Layering: ``runtime`` cannot import ``engines``, so the retransmission
backoff policy is duck-typed — any object with ``backoff(attempt, rng) ->
float | None`` works (``None`` means the per-message retry budget is
exhausted and the message is permanently lost).  The concrete policy
lives in :mod:`repro.runtime.retry` and is wired in by
``ControlSystem.inject_faults``.

Injected semantics:

* **drop** — the transport loses the message; the injector retransmits it
  after a seeded jittered backoff (each retransmission re-enters the fault
  pipeline and can be dropped again).  Budget exhaustion records the
  message in :attr:`FaultInjector.lost`.
* **duplicate** — the message is delivered twice; the receiver-side dedup
  in :meth:`FaultInjector.suppress` keeps redelivery idempotent.
* **delay** — the delivery latency is multiplied by ``delay_factor``.
* **reorder** — extra uniform jitter breaks FIFO ordering between a pair.
* **outage** — messages crossing a cut link are held and delivered when
  the window heals (in send order).
* **crash** — the node crashes at ``at`` and recovers ``down_for`` later
  (recovery replays its WAL-backed stores and drains parked messages).
* **stall** — deliveries *to* the node landing inside the window are
  deferred to the window's end (a paused step agent).
* **exec-fail / exec-stall** — a retrying executor (the asyncio
  :class:`~repro.runtime.realtime.TaskExecutor`) consults the injector
  before each submitted callback: ``exec_fail_p`` raises an
  :class:`~repro.errors.InjectedFault` (exercising the retry/backoff
  path), ``exec_stall_p`` sleeps ``exec_stall_s`` extra seconds first (a
  slow worker).  Executors without a retry loop (the simulated
  :class:`~repro.runtime.executor.ClockExecutor`) ignore these
  dimensions.

Crashes also kill a node's deferred continuations: when a fault injector
is installed, :meth:`repro.runtime.node.Node.schedule_causal` guards every
deferred callback with the scheduling node's crash epoch, so work a node
deferred across simulated time dies with the crash instead of running on
a "down" node.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.errors import SimulationError
from repro.runtime.rng import SimRandom

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.protocols import Clock
    from repro.runtime.transport import Message, Network

__all__ = [
    "Crash",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "Outage",
    "Stall",
    "random_plan",
]


@dataclass(frozen=True)
class Crash:
    """Crash ``node`` at time ``at``; recover ``down_for`` later."""

    node: str
    at: float
    down_for: float


@dataclass(frozen=True)
class Stall:
    """Defer deliveries to ``node`` landing in ``[at, at + duration)``."""

    node: str
    at: float
    duration: float


@dataclass(frozen=True)
class Outage:
    """Cut the (bidirectional) link between ``a`` and ``b`` for a window.

    Either endpoint may be ``"*"`` (any node), so ``Outage("agent-001",
    "*", 10, 30)`` partitions one node away from the rest of the system.
    """

    a: str
    b: str
    start: float
    end: float

    def matches(self, src: str, dst: str) -> bool:
        def side(x: str, name: str) -> bool:
            return x == "*" or x == name

        return (side(self.a, src) and side(self.b, dst)) or (
            side(self.a, dst) and side(self.b, src)
        )


_CRASH_RE = re.compile(r"^([^@]+)@([0-9.]+)\+([0-9.]+)$")
_OUTAGE_RE = re.compile(r"^([^~]+)~([^@]+)@([0-9.]+)\+([0-9.]+)$")


def _num(value: float) -> str:
    """Shortest exact decimal for the spec string (no exponent forms)."""
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text


@dataclass(frozen=True)
class FaultPlan:
    """A complete, serializable description of one fault schedule.

    Probabilities apply per message (re-drawn on each retransmission);
    scheduled faults (crashes, stalls, outages) are explicit events.  When
    ``interfaces`` is non-empty, the probabilistic faults only touch
    messages with those interface names — targeted protocol tests use this
    to lose e.g. only ``WorkflowStatusProbeReport`` messages.  ``drop_limit``
    caps the *total* number of drops across the run (``None`` = unlimited),
    which makes "lose exactly the first such message" tests deterministic.

    ``exec_fail_p`` / ``exec_stall_p`` apply per executor submission and
    only bite on runtimes whose executor retries transient failures (the
    asyncio backend); the simulated ``ClockExecutor`` has no retry loop
    and ignores them.
    """

    drop_p: float = 0.0
    dup_p: float = 0.0
    delay_p: float = 0.0
    delay_factor: float = 4.0
    reorder_p: float = 0.0
    reorder_window: float = 2.0
    drop_limit: int | None = None
    interfaces: tuple[str, ...] = ()
    crashes: tuple[Crash, ...] = ()
    stalls: tuple[Stall, ...] = ()
    outages: tuple[Outage, ...] = ()
    exec_fail_p: float = 0.0
    exec_stall_p: float = 0.0
    exec_stall_s: float = 0.5

    def __post_init__(self) -> None:
        for name in ("drop_p", "dup_p", "delay_p", "reorder_p",
                     "exec_fail_p", "exec_stall_p"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name}={value} must be in [0, 1]")
        if self.delay_factor < 1.0:
            raise SimulationError("delay_factor must be >= 1")
        if self.reorder_window < 0.0:
            raise SimulationError("reorder_window must be >= 0")
        if self.exec_stall_s < 0.0:
            raise SimulationError("exec_stall_s must be >= 0")
        for crash in self.crashes:
            if crash.down_for <= 0:
                raise SimulationError(f"crash of {crash.node!r} needs down_for > 0")
        for outage in self.outages:
            if outage.end <= outage.start:
                raise SimulationError("outage window must have end > start")

    # -- predicates ----------------------------------------------------------

    @property
    def is_noop(self) -> bool:
        return self == FaultPlan()

    def targets(self, interface: str) -> bool:
        return not self.interfaces or interface in self.interfaces

    # -- serialization -------------------------------------------------------

    def to_spec(self) -> str:
        """Compact one-line spec, the ``--plan`` argument of a repro line."""
        parts: list[str] = []
        defaults = FaultPlan()
        for key, name in (("drop_p", "drop"), ("dup_p", "dup"),
                          ("delay_p", "delay"), ("reorder_p", "reorder"),
                          ("exec_fail_p", "execfail"),
                          ("exec_stall_p", "execstall")):
            value = getattr(self, key)
            if value != getattr(defaults, key):
                parts.append(f"{name}={_num(value)}")
        if self.delay_factor != defaults.delay_factor:
            parts.append(f"delayfactor={_num(self.delay_factor)}")
        if self.reorder_window != defaults.reorder_window:
            parts.append(f"reorderwindow={_num(self.reorder_window)}")
        if self.exec_stall_s != defaults.exec_stall_s:
            parts.append(f"execstallfor={_num(self.exec_stall_s)}")
        if self.drop_limit is not None:
            parts.append(f"droplimit={self.drop_limit}")
        if self.interfaces:
            parts.append("iface=" + "/".join(self.interfaces))
        for crash in self.crashes:
            parts.append(f"crash={crash.node}@{_num(crash.at)}+{_num(crash.down_for)}")
        for stall in self.stalls:
            parts.append(f"stall={stall.node}@{_num(stall.at)}+{_num(stall.duration)}")
        for outage in self.outages:
            parts.append(
                f"outage={outage.a}~{outage.b}@{_num(outage.start)}"
                f"+{_num(outage.end - outage.start)}"
            )
        return ",".join(parts) or "none"

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a :meth:`to_spec` string back into an equal plan."""
        spec = spec.strip()
        if not spec or spec == "none":
            return cls()
        scalars: dict[str, Any] = {}
        crashes: list[Crash] = []
        stalls: list[Stall] = []
        outages: list[Outage] = []
        keymap = {"drop": "drop_p", "dup": "dup_p", "delay": "delay_p",
                  "reorder": "reorder_p", "delayfactor": "delay_factor",
                  "reorderwindow": "reorder_window",
                  "execfail": "exec_fail_p", "execstall": "exec_stall_p",
                  "execstallfor": "exec_stall_s"}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise SimulationError(f"bad fault-plan entry {part!r}")
            key, __, value = part.partition("=")
            key = key.strip().lower()
            if key in keymap:
                scalars[keymap[key]] = float(value)
            elif key == "droplimit":
                scalars["drop_limit"] = int(value)
            elif key == "iface":
                scalars["interfaces"] = tuple(
                    i for i in value.split("/") if i
                )
            elif key in ("crash", "stall"):
                match = _CRASH_RE.match(value.strip())
                if match is None:
                    raise SimulationError(
                        f"bad {key} spec {value!r} (want node@at+duration)"
                    )
                node, at, duration = match.group(1), float(match.group(2)), float(
                    match.group(3)
                )
                if key == "crash":
                    crashes.append(Crash(node, at, duration))
                else:
                    stalls.append(Stall(node, at, duration))
            elif key == "outage":
                match = _OUTAGE_RE.match(value.strip())
                if match is None:
                    raise SimulationError(
                        f"bad outage spec {value!r} (want a~b@start+duration)"
                    )
                start = float(match.group(3))
                outages.append(Outage(match.group(1), match.group(2), start,
                                      start + float(match.group(4))))
            else:
                raise SimulationError(f"unknown fault-plan key {key!r}")
        return cls(crashes=tuple(crashes), stalls=tuple(stalls),
                   outages=tuple(outages), **scalars)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form for chaos artifacts."""
        return {
            "spec": self.to_spec(),
            "drop_p": self.drop_p, "dup_p": self.dup_p,
            "delay_p": self.delay_p, "delay_factor": self.delay_factor,
            "reorder_p": self.reorder_p, "reorder_window": self.reorder_window,
            "drop_limit": self.drop_limit,
            "interfaces": list(self.interfaces),
            "crashes": [vars(c) for c in self.crashes],
            "stalls": [vars(s) for s in self.stalls],
            "outages": [vars(o) for o in self.outages],
            "exec_fail_p": self.exec_fail_p,
            "exec_stall_p": self.exec_stall_p,
            "exec_stall_s": self.exec_stall_s,
        }

    def without(self, dimension: str) -> "FaultPlan":
        """A copy with one fault dimension removed (plan minimization)."""
        if dimension in ("drop_p", "dup_p", "delay_p", "reorder_p",
                         "exec_fail_p", "exec_stall_p"):
            return replace(self, **{dimension: 0.0})
        if dimension in ("crashes", "stalls", "outages"):
            return replace(self, **{dimension: ()})
        if dimension.startswith(("crashes[", "stalls[", "outages[")):
            name, index = dimension[:-1].split("[")
            events = list(getattr(self, name))
            del events[int(index)]
            return replace(self, **{name: tuple(events)})
        raise SimulationError(f"unknown fault dimension {dimension!r}")

    def dimensions(self) -> list[str]:
        """Removable dimensions, most-impactful first (for minimization)."""
        dims: list[str] = []
        for name in ("crashes", "stalls", "outages"):
            dims.extend(f"{name}[{i}]" for i in range(len(getattr(self, name))))
        for name in ("drop_p", "dup_p", "delay_p", "reorder_p",
                     "exec_fail_p", "exec_stall_p"):
            if getattr(self, name):
                dims.append(name)
        return dims


@dataclass
class FaultStats:
    """Counters for every fault decision one injector made."""

    dropped: int = 0
    lost: int = 0
    retransmits: int = 0
    duplicated: int = 0
    suppressed: int = 0
    delayed: int = 0
    reordered: int = 0
    held: int = 0
    stalled: int = 0
    crashes: int = 0
    recoveries: int = 0
    dead_continuations: int = 0
    exec_failures: int = 0
    exec_stalls: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultInjector:
    """Deterministic executor of one :class:`FaultPlan` over one network.

    ``install`` hooks the network (``network.faults = self``); ``arm``
    schedules the plan's crash/recovery events on the clock.  All
    probabilistic decisions come from private streams of the injector's
    own :class:`SimRandom`, so installing an injector never perturbs the
    draws of the system under test.
    """

    def __init__(self, plan: FaultPlan, rng: SimRandom, retry: Any = None):
        self.plan = plan
        self.retry = retry
        self._msg_rng = rng.stream("faults:messages")
        self._retry_rng = rng.stream("faults:retry")
        self._exec_rng = rng.stream("faults:executor")
        self.stats = FaultStats()
        self.network: "Network | None" = None
        self.lost: list["Message"] = []
        #: Optional hook ``fn(time, kind, **detail)`` — the owning control
        #: system points this at ``trace.record`` so fault decisions land in
        #: the causal trace next to the protocol events they perturb.
        self.on_fault = None
        self._delivered: set[int] = set()
        self._drops_used = 0

    # -- wiring --------------------------------------------------------------

    def install(self, network: "Network") -> "FaultInjector":
        if network.faults is not None:
            raise SimulationError("network already has a fault injector")
        network.faults = self
        self.network = network
        return self

    def arm(self, simulator: "Clock") -> None:
        """Schedule the plan's crash and recovery events."""
        for crash in self.plan.crashes:
            simulator.schedule_at(crash.at, self._crash_node, crash)
            simulator.schedule_at(
                crash.at + crash.down_for, self._recover_node, crash
            )

    def _crash_node(self, crash: Crash) -> None:
        node = self.network.node(crash.node)
        if not node.is_up:
            return  # overlapping schedules: already down
        self.stats.crashes += 1
        self._note("crash", target=crash.node, down_for=crash.down_for)
        node.crash()

    def _recover_node(self, crash: Crash) -> None:
        node = self.network.node(crash.node)
        if node.is_up:
            return
        self.stats.recoveries += 1
        self._note("recover", target=crash.node)
        node.recover()

    # -- the fault pipeline --------------------------------------------------

    def dispatch(self, message: "Message", delay: float, attempt: int = 1) -> None:
        """Route one send through the fault pipeline (Network.send hook)."""
        plan = self.plan
        simulator = self.network.simulator
        if not plan.targets(message.interface):
            self._schedule_arrival(message, delay)
            return
        now = simulator.now
        heal = self._outage_heal(message.src, message.dst, now)
        if heal is not None:
            # Held until the partition heals; same-delay messages then land
            # in send order (schedule insertion order breaks the tie).
            self.stats.held += 1
            self._note("outage.hold", msg=message.msg_id, src=message.src,
                       dst=message.dst, until=heal)
            self._schedule_arrival(message, (heal - now) + delay)
            return
        rng = self._msg_rng
        if plan.drop_p and self._may_drop() and rng.random() < plan.drop_p:
            self._drops_used += 1
            self.stats.dropped += 1
            backoff = (self.retry.backoff(attempt, self._retry_rng)
                       if self.retry is not None else None)
            if backoff is None:
                self.stats.lost += 1
                self.lost.append(message)
                self._note("lost", msg=message.msg_id, src=message.src,
                           dst=message.dst, interface=message.interface,
                           attempts=attempt)
                return
            self.stats.retransmits += 1
            self._note("drop", msg=message.msg_id, src=message.src,
                       dst=message.dst, interface=message.interface,
                       attempt=attempt, backoff=round(backoff, 4))
            simulator.schedule(backoff, self.dispatch, message, delay, attempt + 1)
            return
        if plan.dup_p and rng.random() < plan.dup_p:
            self.stats.duplicated += 1
            self._note("duplicate", msg=message.msg_id, dst=message.dst)
            self._schedule_arrival(message, delay)
        if plan.delay_p and rng.random() < plan.delay_p:
            self.stats.delayed += 1
            delay *= plan.delay_factor
        if plan.reorder_p and rng.random() < plan.reorder_p:
            self.stats.reordered += 1
            delay += rng.uniform(0.0, plan.reorder_window)
        self._schedule_arrival(message, delay)

    def _may_drop(self) -> bool:
        limit = self.plan.drop_limit
        return limit is None or self._drops_used < limit

    def _schedule_arrival(self, message: "Message", delay: float) -> None:
        simulator = self.network.simulator
        arrival = simulator.now + delay
        stalled_until = self._stall_end(message.dst, arrival)
        if stalled_until is not None:
            self.stats.stalled += 1
            delay = stalled_until - simulator.now
        simulator.schedule(delay, self.network._arrive, message)

    def _outage_heal(self, src: str, dst: str, now: float) -> float | None:
        heal: float | None = None
        for outage in self.plan.outages:
            if outage.start <= now < outage.end and outage.matches(src, dst):
                heal = outage.end if heal is None else max(heal, outage.end)
        return heal

    def _stall_end(self, dst: str, arrival: float) -> float | None:
        end: float | None = None
        for stall in self.plan.stalls:
            if stall.node == dst and stall.at <= arrival < stall.at + stall.duration:
                stop = stall.at + stall.duration
                end = stop if end is None else max(end, stop)
        return end

    # -- executor hooks ------------------------------------------------------

    def executor_stall(self, name: str) -> float:
        """Extra pre-run sleep for one executor submission (0.0 = none)."""
        plan = self.plan
        if not plan.exec_stall_p or self._exec_rng.random() >= plan.exec_stall_p:
            return 0.0
        self.stats.exec_stalls += 1
        self._note("exec.stall", target=name, duration=plan.exec_stall_s)
        return plan.exec_stall_s

    def executor_should_fail(self, name: str, attempt: int) -> bool:
        """Whether this executor attempt must raise an injected failure.

        Drawn per *attempt* (like drops per retransmission), so a retried
        callback can fail again — the retry budget is what bounds it.
        """
        plan = self.plan
        if not plan.exec_fail_p or self._exec_rng.random() >= plan.exec_fail_p:
            return False
        self.stats.exec_failures += 1
        self._note("exec.fail", target=name, attempt=attempt)
        return True

    # -- delivery-side hooks -------------------------------------------------

    def suppress(self, message: "Message") -> bool:
        """Duplicate-delivery guard: True when this copy must be dropped."""
        msg_id = message.msg_id
        if msg_id in self._delivered:
            self.stats.suppressed += 1
            self._note("dedup", msg=msg_id, dst=message.dst)
            return True
        self._delivered.add(msg_id)
        return False

    def on_dead_continuation(self, node_name: str) -> None:
        """A crashed node's deferred callback was discarded (volatile work)."""
        self.stats.dead_continuations += 1
        self._note("continuation.dead", target=node_name)

    def _note(self, kind: str, **detail: Any) -> None:
        if self.on_fault is not None:
            self.on_fault(self.network.simulator.now, kind, **detail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector plan={self.plan.to_spec()!r} {self.stats}>"


def random_plan(
    seed: int,
    crash_nodes: Iterable[str] = (),
    stall_nodes: Iterable[str] = (),
    horizon: float = 120.0,
    profile: Mapping[str, float] | None = None,
) -> FaultPlan:
    """A random-but-reproducible :class:`FaultPlan` for one chaos run.

    ``profile`` overrides the default fault intensities (keys: ``drop_p``,
    ``dup_p``, ``delay_p``, ``reorder_p``, ``crashes``, ``stalls``,
    ``outages``).  All draws come from the ``"plan"`` stream of a
    :class:`SimRandom` seeded with ``seed``, so the plan — and therefore
    the whole run — replays from the seed alone.
    """
    knobs = {"drop_p": 0.05, "dup_p": 0.03, "delay_p": 0.05,
             "reorder_p": 0.05, "crashes": 1, "stalls": 1, "outages": 0}
    if profile:
        knobs.update(profile)
    rng = SimRandom(seed).stream("plan")
    crash_pool = sorted(crash_nodes)
    stall_pool = sorted(stall_nodes)
    crashes = []
    if crash_pool:
        for __ in range(int(knobs["crashes"])):
            crashes.append(Crash(
                node=rng.choice(crash_pool),
                at=round(rng.uniform(0.15, 0.6) * horizon, 2),
                down_for=round(rng.uniform(0.05, 0.25) * horizon, 2),
            ))
    stalls = []
    if stall_pool:
        for __ in range(int(knobs["stalls"])):
            stalls.append(Stall(
                node=rng.choice(stall_pool),
                at=round(rng.uniform(0.1, 0.7) * horizon, 2),
                duration=round(rng.uniform(0.02, 0.1) * horizon, 2),
            ))
    outages = []
    pool = stall_pool or crash_pool
    if pool:
        for __ in range(int(knobs["outages"])):
            start = round(rng.uniform(0.1, 0.6) * horizon, 2)
            outages.append(Outage(
                a=rng.choice(pool), b="*", start=start,
                end=start + round(rng.uniform(0.05, 0.2) * horizon, 2),
            ))
    return FaultPlan(
        drop_p=knobs["drop_p"], dup_p=knobs["dup_p"], delay_p=knobs["delay_p"],
        reorder_p=knobs["reorder_p"], crashes=tuple(crashes),
        stalls=tuple(stalls), outages=tuple(outages),
    )
