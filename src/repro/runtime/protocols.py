"""Runtime protocols: what an execution substrate must provide.

The engines in :mod:`repro.engines` are defined by the paper's protocols
(navigation, commit, halting, OCR) — not by the discrete-event kernel the
reproduction happens to test them on.  This module pins down the three
seams between an engine and the substrate it runs on:

``Clock``
    Time and deferred callbacks: ``now``, ``schedule`` / ``schedule_at``
    returning a :class:`Cancellable` handle.  The simulated clock
    (:class:`repro.sim.kernel.Simulator`) advances virtual time through a
    deterministic event heap; the realtime clock
    (:class:`repro.runtime.realtime.RealtimeClock`) maps the same calls
    onto a monotonic wall clock and the asyncio event loop.

``Transport``
    Named-node messaging with latency and fault hooks: ``register`` /
    ``send`` / ``flush_parked``, plus the duck-typed observability
    attachment points (``registry``, ``causal``, ``flight_factory``,
    ``faults``, ``profile``).  The shared in-process implementation is
    :class:`repro.runtime.transport.Network`, which is clock-agnostic: it
    delivers over whatever ``Clock`` it is constructed with.

``Executor``
    Step-program execution: ``submit(delay, fn, *args)`` runs ``fn`` after
    ``delay`` units of service time.  Under simulation this is exactly a
    clock callback (keeping fixed-seed schedules byte-identical); under
    asyncio it is a real task with :class:`repro.runtime.retry.RetryPolicy`
    wrapping transient failures.

A :class:`Runtime` bundles one of each plus lifecycle extras (fault
injection, quiescence).  Engines receive a ``Runtime`` and never name a
concrete substrate; the AST import-layering contract
(``tests/test_import_contract.py``) enforces that ``repro.engines.*``
imports ``repro.runtime`` but never ``repro.sim``.

All protocols are structural (:class:`typing.Protocol`): the simulator
predates this layer and conforms without inheriting from it.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Protocol, runtime_checkable

__all__ = ["Cancellable", "Clock", "Executor", "Runtime", "Transport"]


@runtime_checkable
class Cancellable(Protocol):
    """A handle to scheduled work that can be revoked before it fires."""

    cancelled: bool

    def cancel(self) -> None:
        """Prevent the work from running.  Idempotent."""


@runtime_checkable
class Clock(Protocol):
    """Time source plus deferred-callback scheduling.

    ``now`` is monotonic within one run.  Simulated clocks start at 0.0
    and advance only when events fire; wall clocks report seconds since
    the runtime started.  Events scheduled for the same instant fire in
    scheduling order.
    """

    @property
    def now(self) -> float:
        """Current time in runtime units (simulated units or seconds)."""
        ...

    def schedule(
        self, delay: float, action: Callable[..., Any], *args: Any
    ) -> Cancellable:
        """Run ``action(*args)`` ``delay`` time units from now."""
        ...

    def schedule_at(
        self, time: float, action: Callable[..., Any], *args: Any
    ) -> Cancellable:
        """Run ``action(*args)`` at absolute clock time ``time``."""
        ...

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unfired callbacks (quiescence probe)."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Named-node messaging with latency modelling and fault hooks."""

    def register(self, node: Any) -> None:
        """Attach a node under its unique name."""
        ...

    def node(self, name: str) -> Any:
        """Look up a registered node."""
        ...

    def node_names(self) -> list[str]:
        """All registered node names, sorted."""
        ...

    def is_up(self, name: str) -> bool:
        """Whether a node can currently process messages."""
        ...

    def send(
        self,
        src: str,
        dst: str,
        interface: str,
        payload: Mapping[str, Any],
        mechanism: Any,
        src_node: Any = None,
    ) -> Any:
        """Send one physical message; returns the in-flight message."""
        ...

    def flush_parked(self, name: str) -> int:
        """Deliver messages parked while ``name`` was down."""
        ...

    def parked_count(self, name: str) -> int:
        """Messages currently parked for a down node."""
        ...


@runtime_checkable
class Executor(Protocol):
    """Deferred step-program execution on behalf of a node.

    ``submit`` runs ``fn(*args)`` after ``delay`` units of *service time*
    — the simulated cost of a step program, or a real sleep under the
    wall clock.  Implementations return a :class:`Cancellable` (or a
    task handle exposing ``cancel``); callers that only fire-and-forget
    may ignore it.
    """

    def submit(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> Any:
        """Run ``fn(*args)`` after ``delay`` units of service time."""
        ...


@runtime_checkable
class Runtime(Protocol):
    """One execution substrate: a clock, a transport and an executor.

    ``name`` identifies the backend (``"sim"``, ``"asyncio"``) in logs and
    benchmark metadata.  ``install_faults`` wires a deterministic fault
    injector under the transport where the backend supports it (the
    simulated runtime does; wall-clock backends may raise).
    """

    name: str
    clock: Clock
    transport: Transport
    executor: Executor

    def supports_faults(self) -> bool:
        """Whether :meth:`install_faults` is available on this backend."""
        ...

    def install_faults(self, plan: Any, rng: Any, retry: Any) -> Any:
        """Install a deterministic fault injector; returns it."""
        ...
