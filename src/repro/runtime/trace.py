"""Structured trace log for simulations.

Workflow enactment is event-soup by nature; when a distributed rollback
interleaves with in-flight packets the only way to understand (or test)
what happened is a totally-ordered trace.  :class:`Trace` records
``(time, node, kind, detail)`` tuples and supports filtered queries, which
the integration tests use to assert protocol-level orderings (e.g. "all
HaltThread probes precede the first re-execution packet").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

__all__ = ["Trace", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """A single trace entry."""

    time: float
    node: str
    kind: str
    detail: Mapping[str, Any]

    def describe(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:9.3f}] {self.node:<14} {self.kind:<22} {parts}"


class Trace:
    """An append-only, queryable event trace.

    Tracing can be disabled (``enabled=False``) to remove overhead from
    large benchmark runs; ``record`` then becomes a no-op.

    When ``capacity`` is set, the default policy drops the *newest*
    records once full (the historical behaviour, cheapest and safest for
    post-mortem analysis of a run's beginning).  ``ring=True`` switches
    to a ring buffer that evicts the *oldest* records instead, keeping
    the most recent window — the right mode for long-running soak tests
    where only the tail matters.  Either way ``dropped`` counts how many
    records were lost.
    """

    def __init__(
        self,
        enabled: bool = True,
        capacity: int | None = None,
        ring: bool = False,
    ):
        self.enabled = enabled
        self.capacity = capacity
        self.ring = ring
        if ring and capacity is not None:
            self.records: deque[TraceRecord] | list[TraceRecord] = deque(
                maxlen=capacity
            )
        else:
            self.records = []
        self.dropped = 0
        #: Optional tap called with each appended :class:`TraceRecord`
        #: (the serve front door streams live events through this).
        self.listener: Callable[[TraceRecord], None] | None = None

    def record(self, time: float, node: str, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            if not self.ring:
                return
            # deque(maxlen=...) evicts the oldest record on append.
        rec = TraceRecord(time, node, kind, detail)
        self.records.append(rec)
        if self.listener is not None:
            self.listener(rec)

    def snapshot(self, time: float, node: str, kind: str, **detail: Any) -> None:
        """Record unconditionally, bypassing ``enabled`` and ``capacity``.

        Post-mortem dumps (flight-recorder snapshots on crash or step
        failure) must land even in benchmark runs with tracing off — a
        flight recorder that vanishes exactly when you need it is
        worthless.  Snapshots are rare, so the capacity policy is not
        consulted — but a ring-mode deque at capacity still evicts its
        oldest record on append, and that loss must be *counted*: a
        truncated trace that looks complete is worse than a short one.
        """
        if (self.ring and self.capacity is not None
                and len(self.records) >= self.capacity):
            self.dropped += 1
        rec = TraceRecord(time, node, kind, detail)
        self.records.append(rec)
        if self.listener is not None:
            self.listener(rec)

    # -- loss reporting ------------------------------------------------------

    @property
    def drop_policy(self) -> str:
        """Which end the capacity policy sacrifices: oldest or newest."""
        return "oldest" if self.ring else "newest"

    def drop_summary(self) -> str | None:
        """One-line loss report, or ``None`` when nothing was dropped.

        Every consumer that owes its operator honesty about a truncated
        trace (``repro trace``, ``repro serve`` shutdown, the service
        close log) formats the same sentence from here.
        """
        if not self.dropped:
            return None
        return (f"trace ring buffer dropped {self.dropped} record(s) "
                f"({self.drop_policy} first; capacity {self.capacity})")

    # -- queries -------------------------------------------------------------

    def filter(
        self,
        kind: str | None = None,
        node: str | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Records matching all the given criteria, in time order."""
        out = []
        for rec in self.records:
            if kind is not None and rec.kind != kind:
                continue
            if node is not None and rec.node != node:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def kinds(self) -> list[str]:
        """The distinct record kinds present, sorted."""
        return sorted({rec.kind for rec in self.records})

    def first(self, kind: str) -> TraceRecord | None:
        for rec in self.records:
            if rec.kind == kind:
                return rec
        return None

    def last(self, kind: str) -> TraceRecord | None:
        result = None
        for rec in self.records:
            if rec.kind == kind:
                result = rec
        return result

    def count(self, kind: str) -> int:
        return sum(1 for rec in self.records if rec.kind == kind)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def render(self, limit: int | None = None) -> str:
        """Human-readable multi-line rendering (used by the examples)."""
        if limit is None:
            shown = list(self.records)
        else:
            shown = [rec for __, rec in zip(range(limit), self.records)]
        lines = [rec.describe() for rec in shown]
        if limit is not None and len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more records)")
        if self.dropped:
            lines.append(f"({self.dropped} {self.drop_policy} records "
                         f"dropped at capacity {self.capacity})")
        return "\n".join(lines)
