"""Wall-clock asyncio runtime: the same engine stack on real time.

Everything the engines schedule — frontend WIs, delivery latencies, step
service times, watchdogs — lands on :class:`RealtimeClock`, a monotonic
wall clock that maps ``schedule(delay, fn, *args)`` onto
``loop.call_later``.  The transport is the shared clock-agnostic
:class:`repro.runtime.transport.Network` (persistent-queue semantics,
per-mechanism accounting, Lamport stamping — identical to simulation),
with the configured :class:`~repro.runtime.latency.LatencyModel` applied
as *real* delay: ``FixedLatency(0.0)`` for an undelayed in-process
service, positive values to rehearse WAN pacing.  Step programs run in
real asyncio tasks through :class:`TaskExecutor`, which wraps transient
program exceptions in the engines' :class:`~repro.runtime.retry.
RetryPolicy` backoff instead of letting one flaky callback kill the
daemon.

Times reported by ``RealtimeClock.now`` are seconds since
:meth:`RealtimeClock.start` (captured lazily from the first running
loop), so traces and span durations read like the simulated ones: small
numbers starting near zero.

Determinism note: this backend is for *serving* and wall-clock
benchmarks.  :meth:`RealtimeRuntime.install_faults` accepts the same
seeded :class:`~repro.runtime.faults.FaultPlan` the simulated backend
runs — the *decision sequence* (which messages drop, duplicate, delay;
which executor submissions fail) replays deterministically from
``(seed, plan)``, but event interleaving rides the wall clock, so
reproducibility is at the outcome level, not byte-level.  Fixed-seed
bit-replay remains the business of the simulated backend.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.errors import InjectedFault, SimulationError, WorkloadError
from repro.runtime.latency import FixedLatency, LatencyModel
from repro.runtime.metrics import MetricsCollector
from repro.runtime.retry import RetryPolicy
from repro.runtime.rng import SimRandom
from repro.runtime.transport import Network

__all__ = ["RealtimeClock", "RealtimeHandle", "RealtimeRuntime", "TaskExecutor"]


class RealtimeHandle:
    """A cancellable reference to a scheduled wall-clock callback."""

    __slots__ = ("_clock", "_timer", "action", "cancelled", "time")

    def __init__(self, clock: "RealtimeClock", timer: asyncio.TimerHandle,
                 time: float, action: Callable[..., Any]):
        self._clock = clock
        self._timer = timer
        self.time = time
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self._timer.cancel()
        clock = self._clock
        if clock is not None:
            self._clock = None
            clock._on_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.action, "__name__", repr(self.action))
        return f"<RealtimeHandle t={self.time:.3f} {name} {state}>"


class RealtimeClock:
    """Monotonic wall clock over the asyncio event loop.

    Satisfies :class:`repro.runtime.protocols.Clock`.  ``now`` is seconds
    since :meth:`start`; callbacks are real ``call_later`` timers.  The
    clock keeps the same observability surface as the simulated kernel
    (``events_processed``, ``event_hook``, ``profile``, ``pending``) so
    the engines' obs wiring works unchanged under both substrates.

    There is deliberately no synchronous ``run()``: the asyncio loop is
    the driver.  Use :meth:`join` to await quiescence.
    """

    def __init__(self) -> None:
        self._loop: asyncio.AbstractEventLoop | None = None
        self._epoch = 0.0
        self._pending = 0
        self._idle: asyncio.Event | None = None
        self.events_processed = 0
        self._last_fire = 0.0
        #: Observability hook called as ``hook(time, pending)`` before each
        #: callback fires — same shape as the simulated kernel's.
        self.event_hook: Callable[[float, int], None] | None = None
        #: Duck-typed profiler (see :class:`repro.obs.profile.Profiler`),
        #: same slot the simulated kernel exposes.  When installed, every
        #: fired callback runs inside a named subsystem frame credited
        #: with the wall-clock advance since the previous event (the
        #: realtime analogue of the kernel's sim-dt credit).
        self.profile = None

    # -- lifecycle ---------------------------------------------------------

    def start(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        """Bind to ``loop`` (default: the running loop) and zero the clock."""
        if self._loop is not None:
            return
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._epoch = self._loop.time()
        self._idle = asyncio.Event()
        self._idle.set()

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            try:
                self.start()
            except RuntimeError:
                raise SimulationError(
                    "RealtimeClock is not bound to an event loop; call "
                    "start() inside a running loop (or run under "
                    "asyncio.run) before scheduling"
                ) from None
        return self._loop

    # -- Clock protocol ----------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds since :meth:`start` (0.0 before the clock is bound)."""
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._epoch

    def schedule(
        self, delay: float, action: Callable[..., Any], *args: Any
    ) -> RealtimeHandle:
        """Run ``action(*args)`` ``delay`` real seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        loop = self._require_loop()
        handle: RealtimeHandle
        fire_at = self.now + delay

        def fire() -> None:
            if handle.cancelled:
                # A cancel raced the loop's ready queue: asyncio skips
                # cancelled TimerHandles before calling them, so this
                # branch is belt-and-braces — cancel() already released
                # the pending slot, firing now would double-count.
                return  # pragma: no cover - asyncio guards this upstream
            handle._clock = None  # a late cancel is a pure no-op
            self._pending -= 1
            self.events_processed += 1
            now = self.now
            if self.event_hook is not None:
                self.event_hook(now, self._pending)
            profile = self.profile
            if profile is not None:
                profile.begin_event(action, now, now - self._last_fire,
                                    self._pending)
                self._last_fire = now
            try:
                action(*args)
            finally:
                if profile is not None:
                    profile.end_event()
                if self._pending == 0 and self._idle is not None:
                    self._idle.set()

        timer = loop.call_later(delay, fire)
        handle = RealtimeHandle(self, timer, fire_at, action)
        self._pending += 1
        if self._idle is not None:
            self._idle.clear()
        return handle

    def schedule_at(
        self, time: float, action: Callable[..., Any], *args: Any
    ) -> RealtimeHandle:
        """Run ``action(*args)`` at absolute clock time ``time``."""
        now = self.now
        if time < now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={now})"
            )
        return self.schedule(time - now, action, *args)

    def _on_cancel(self) -> None:
        self._pending -= 1
        if self._pending == 0 and self._idle is not None:
            self._idle.set()

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unfired callbacks."""
        return self._pending

    # -- quiescence --------------------------------------------------------

    async def join(self, timeout: float | None = None) -> bool:
        """Wait until no callbacks are pending; ``False`` on timeout."""
        if self._idle is None:
            return self._pending == 0
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RealtimeClock now={self.now:.3f} pending={self._pending}>"


class _TaskHandle:
    """Cancellable wrapper over one executor task."""

    __slots__ = ("_task", "cancelled")

    def __init__(self, task: "asyncio.Task[Any]"):
        self._task = task
        self.cancelled = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self._task.cancel()


class TaskExecutor:
    """Task-based step execution with retry-on-transient-failure.

    ``submit(delay, fn, *args)`` spawns a real asyncio task that sleeps
    the service time, then calls ``fn``.  A raising ``fn`` is retried on
    the runtime's :class:`~repro.runtime.retry.RetryPolicy` backoff (with
    the jitter drawn from a seeded stream so retry pacing is at least
    *replayable* in logs); once the budget is exhausted the failure is
    recorded in :attr:`failures` instead of killing the event loop.
    """

    def __init__(self, clock: RealtimeClock, retry: RetryPolicy | None = None,
                 rng: SimRandom | None = None):
        self.clock = clock
        self.retry = retry if retry is not None else RetryPolicy()
        self._jitter = (rng if rng is not None else SimRandom(0)).stream(
            "executor:retry"
        )
        #: Optional fault injector (see :class:`repro.runtime.faults.
        #: FaultInjector`), set by :meth:`RealtimeRuntime.install_faults`.
        #: When present, each submission consults it for an injected
        #: pre-run stall and each attempt for an injected failure.
        self.faults = None
        self._tasks: set[asyncio.Task[Any]] = set()
        self.submitted = 0
        self.retries = 0
        #: ``(callable qualname, repr(exception))`` of budget-exhausted work.
        self.failures: list[tuple[str, str]] = []
        #: Duck-typed observability hooks (``obs`` sits above ``runtime``
        #: in the layering contract, so the owning service injects these
        #: rather than the executor importing a logger/registry):
        #: ``on_retry(fn, name, exc, attempt, backoff)`` after each failed
        #: attempt that will be retried, ``on_give_up(fn, name, exc,
        #: attempts)`` once the budget is exhausted.  Hook exceptions are
        #: swallowed — observability must never kill the worker task.
        self.on_retry: Callable[..., None] | None = None
        self.on_give_up: Callable[..., None] | None = None

    def submit(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> _TaskHandle:
        """Run ``fn(*args)`` after ``delay`` seconds in a real task."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        loop = self.clock._require_loop()
        self.submitted += 1
        task = loop.create_task(self._run(delay, fn, args))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return _TaskHandle(task)

    async def _run(self, delay: float, fn: Callable[..., Any], args: tuple) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        faults = self.faults
        name = getattr(fn, "__qualname__", repr(fn))
        if faults is not None:
            stall = faults.executor_stall(name)
            if stall > 0:
                await asyncio.sleep(stall)
        attempt = 0
        while True:
            try:
                if faults is not None and faults.executor_should_fail(
                    name, attempt + 1
                ):
                    raise InjectedFault(f"injected executor failure in {name}")
                fn(*args)
                return
            except asyncio.CancelledError:  # pragma: no cover - defensive
                raise
            except Exception as exc:
                attempt += 1
                backoff = self.retry.backoff(attempt, self._jitter)
                if backoff is None:
                    self.failures.append((name, repr(exc)))
                    self._notify(self.on_give_up, fn, name, exc, attempt)
                    return
                self.retries += 1
                self._notify(self.on_retry, fn, name, exc, attempt, backoff)
                await asyncio.sleep(backoff)

    @staticmethod
    def _notify(hook: Callable[..., None] | None, *args: Any) -> None:
        if hook is None:
            return
        try:
            hook(*args)
        except Exception:  # pragma: no cover - defensive
            pass

    @property
    def inflight(self) -> int:
        """Tasks submitted but not yet finished."""
        return len(self._tasks)

    async def join(self, timeout: float | None = None) -> bool:
        """Wait for all in-flight tasks; ``False`` on timeout."""
        if not self._tasks:
            return True
        __, pending = await asyncio.wait(set(self._tasks), timeout=timeout)
        return not pending


class RealtimeRuntime:
    """Asyncio substrate bundle: wall clock + shared transport + tasks.

    Satisfies :class:`repro.runtime.protocols.Runtime`.  The transport is
    the same :class:`~repro.runtime.transport.Network` the simulation
    uses, constructed over the wall clock; the default latency model is
    ``FixedLatency(0.0)`` (undelayed in-process delivery — pass a model
    to rehearse network pacing).
    """

    name = "asyncio"

    def __init__(
        self,
        metrics: MetricsCollector | None = None,
        latency: LatencyModel | None = None,
        retry: RetryPolicy | None = None,
        rng: SimRandom | None = None,
    ):
        self.clock = RealtimeClock()
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.transport = Network(
            self.clock, self.metrics,
            latency if latency is not None else FixedLatency(0.0),
        )
        self.executor = TaskExecutor(self.clock, retry=retry, rng=rng)
        self.transport.executor = self.executor
        #: The installed fault injector, if any.
        self.faults = None

    def start(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        """Bind the clock to a running loop (lazy on first schedule)."""
        self.clock.start(loop)

    # -- fault injection ---------------------------------------------------

    def supports_faults(self) -> bool:
        return True

    def install_faults(self, plan: Any, rng: Any, retry: Any) -> Any:
        """Install a seeded :class:`~repro.runtime.faults.FaultInjector`.

        Same contract as the simulated backend: ``rng`` is a dedicated
        child seed space (callers spawn ``rng.spawn("faults")``) so the
        injector's decision streams replay from ``(seed, plan)``; crash /
        stall / outage times in the plan are wall-clock seconds since the
        runtime started.  Returns the installed injector.
        """
        from repro.runtime.faults import FaultInjector

        if self.faults is not None:
            raise WorkloadError("fault injector already installed")
        injector = FaultInjector(plan, rng, retry=retry)
        injector.install(self.transport)
        injector.arm(self.clock)
        self.executor.faults = injector
        self.faults = injector
        return injector

    # -- quiescence --------------------------------------------------------

    async def join(self, timeout: float | None = None) -> bool:
        """Wait until the clock and the executor are both idle.

        Work can ping-pong between the two (a timer spawns a task which
        schedules a timer), so the join loops until a pass observes both
        idle, or the timeout budget runs out.
        """
        loop = self.clock._require_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while True:
            remaining = None if deadline is None else deadline - loop.time()
            if remaining is not None and remaining <= 0:
                return False
            if not await self.clock.join(remaining):
                return False
            remaining = None if deadline is None else deadline - loop.time()
            if not await self.executor.join(remaining):
                return False
            if self.clock.pending == 0 and self.executor.inflight == 0:
                return True
