"""Seeded, named random streams for reproducible simulations.

Every stochastic decision in the simulator (step failures, latencies,
workload arrivals, conflict draws) pulls from a *named* stream derived
from one master seed.  Named streams decouple the consumers: adding a new
random decision to one subsystem does not perturb the draws seen by any
other subsystem, so experiment results stay comparable across versions.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["SimRandom"]


class SimRandom:
    """A factory of deterministic, independently-seeded random streams.

    Example::

        rng = SimRandom(seed=42)
        failures = rng.stream("failures")
        latency = rng.stream("latency")
        # the two streams never interleave draws
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        derived = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF
        stream = random.Random(derived)
        self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "SimRandom":
        """Derive a child :class:`SimRandom` with an independent seed space."""
        derived = (self.seed * 0x85EBCA6B + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF
        return SimRandom(derived)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimRandom seed={self.seed} streams={sorted(self._streams)}>"
