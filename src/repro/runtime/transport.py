"""Reliable in-process message transport between nodes — clock-agnostic.

The paper assumes "messages are reliably delivered between agents using
tools/techniques as discussed in [AAE+95]" (persistent message queues, as
in Exotica/FMQM).  The transport therefore never drops a message: if the
destination node is down, the message is parked in a persistent queue and
delivered when the node recovers.

:class:`Network` implements the :class:`repro.runtime.protocols.Transport`
protocol over *any* :class:`~repro.runtime.protocols.Clock`: under the
discrete-event :class:`repro.sim.kernel.Simulator` a delivery is a
virtual-time event, under :class:`repro.runtime.realtime.RealtimeClock`
it is an asyncio ``call_later`` — the protocol logic, per-mechanism
accounting and fault hooks are identical either way.

Every message carries the :class:`~repro.runtime.metrics.Mechanism` that
caused it, so the benchmark harness can regenerate the per-mechanism
message rows of Tables 4-6 directly from the transport layer.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import SimulationError
from repro.runtime.latency import FixedLatency, LatencyModel, UniformLatency
from repro.runtime.messages import Message
from repro.runtime.metrics import Mechanism, MetricsCollector
from repro.runtime.protocols import Clock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.node import Node

__all__ = ["LatencyModel", "Message", "Network", "UniformLatency", "FixedLatency"]


class Network:
    """Reliable, latency-modelled transport with per-mechanism accounting.

    Nodes register themselves under a unique name.  ``send`` counts the
    message, applies the latency model, and schedules delivery.  Messages
    to a node that is down are queued durably and flushed (in send order)
    when the node comes back up.
    """

    def __init__(
        self,
        simulator: Clock,
        metrics: MetricsCollector | None = None,
        latency: LatencyModel | None = None,
    ):
        #: The clock deliveries are scheduled on.  Named ``simulator`` for
        #: historical reasons; any :class:`~repro.runtime.protocols.Clock`
        #: works (the realtime runtime passes its wall clock here).
        self.simulator = simulator
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.latency = latency if latency is not None else FixedLatency(1.0)
        #: Optional observability registry; when set (by the owning
        #: control system, before nodes are constructed) every node feeds
        #: per-node message/load/crash instruments into it.
        self.registry = None
        #: Optional causal message tracer (duck-typed, see
        #: :class:`repro.obs.causal.MessageTracer`).  Set by the owning
        #: control system before nodes are constructed; ``send`` then
        #: stamps every message with a sender-side message span.
        self.causal = None
        #: Optional flight-recorder hooks: ``flight_factory(name)`` builds
        #: a per-node bounded ring of transport events and
        #: ``flight_sink(time, node, reason, events, **detail)`` persists a
        #: snapshot of it (into the trace) on crash or step failure.  Both
        #: are injected by the owning control system, like ``registry``.
        self.flight_factory = None
        self.flight_sink = None
        #: Optional step executor (see :class:`repro.runtime.protocols.
        #: Executor`), injected by the owning :class:`Runtime` before nodes
        #: are constructed.  Nodes route deferred service-time work
        #: (``schedule_causal``) through it; when ``None`` they fall back
        #: to scheduling directly on the clock.
        self.executor = None
        #: Optional fault injector (see :mod:`repro.sim.faults`), installed
        #: by ``FaultInjector.install``.  When set, every send routes
        #: through its fault pipeline and every delivery through its
        #: duplicate-suppression guard; when ``None`` (the default) the
        #: transport keeps its reliable persistent-queue semantics with a
        #: single ``is None`` branch on the hot path.
        self.faults = None
        #: Optional duck-typed profiler (see :class:`repro.obs.profile.
        #: Profiler`), installed by ``Profiler.install``.  When set,
        #: every ``send`` runs inside a ``transport.send`` frame and
        #: counts toward the messages-per-tick gauge; when ``None`` the
        #: hot path pays one ``is None`` branch (held to the
        #: ``bench_obs_overhead.py`` <5% gate).
        self.profile = None
        self._nodes: dict[str, "Node"] = {}
        self._parked: dict[str, list[Message]] = {}
        self._msg_ids = itertools.count(1)
        self.delivered = 0

    # -- membership ---------------------------------------------------------

    def register(self, node: "Node") -> None:
        if node.name in self._nodes:
            raise SimulationError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._parked.setdefault(node.name, [])

    def node(self, name: str) -> "Node":
        try:
            return self._nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    def is_up(self, name: str) -> bool:
        """Whether a node is currently able to process messages."""
        return self.node(name).is_up

    # -- transport ----------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        interface: str,
        payload: Mapping[str, Any],
        mechanism: Mechanism,
        src_node: "Node | None" = None,
    ) -> Message:
        """Send one physical message; returns the in-flight message object.

        Local self-sends (``src == dst``) are *not* physical messages under
        the paper's accounting — use a direct call for those.  The network
        rejects them to keep the counters honest.

        ``src_node`` lets :meth:`Node.send` pass itself and skip the name
        lookup on the hot path; callers using plain names can omit it.
        """
        # Profiling bracket kept inline: the disabled path must stay one
        # ``is None`` branch each side (no extra call) for the <5% gate.
        profile = self.profile
        if profile is not None:
            profile.messages += 1
            profile.push("transport.send")
        try:
            if src == dst:
                raise SimulationError(
                    f"self-send {src!r}->{dst!r} would corrupt message "
                    "accounting; use a local call instead"
                )
            if dst not in self._nodes:
                raise SimulationError(f"send to unknown node {dst!r}")
            if src_node is None:
                src_node = self._nodes.get(src)
            lamport = 0
            if src_node is not None:
                lamport = src_node.lamport_clock + 1
                src_node.lamport_clock = lamport
            msg_id = next(self._msg_ids)
            send_span = None
            if self.causal is not None and src_node is not None:
                send_span = self.causal.on_send(
                    src_node, dst, msg_id, interface, mechanism, lamport,
                    payload, self.simulator.now,
                )
            message = Message(msg_id, src, dst, interface, mechanism,
                              dict(payload), self.simulator.now, lamport,
                              send_span)
            self.metrics.record_message(mechanism, interface)
            delay = self.latency.delay(src, dst)
            if self.faults is None:
                self.simulator.schedule(delay, self._arrive, message)
            else:
                self.faults.dispatch(message, delay)
            return message
        finally:
            if profile is not None:
                profile.pop()

    def _arrive(self, message: Message) -> None:
        node = self._nodes[message.dst]
        if not node.is_up:
            # Durable queue semantics: park until the node recovers.
            self._parked[message.dst].append(message)
            return
        if self.faults is not None and self.faults.suppress(message):
            return
        self.delivered += 1
        node.receive(message)

    def flush_parked(self, name: str) -> int:
        """Deliver messages parked while ``name`` was down; returns the
        number actually delivered (injected duplicates are suppressed)."""
        node = self._nodes[name]
        if not node.is_up:
            raise SimulationError(f"cannot flush parked messages to down node {name!r}")
        parked = self._parked[name]
        self._parked[name] = []
        # Redeliver in original *send* order: arrival order diverges from
        # send order as soon as per-message latency varies (fault-injected
        # delays, retransmissions, uniform latency), and msg_id is the
        # global send sequence.
        parked.sort(key=lambda message: message.msg_id)
        delivered = 0
        for message in parked:
            if self.faults is not None and self.faults.suppress(message):
                continue
            self.delivered += 1
            node.receive(message)
            delivered += 1
        return delivered

    def parked_count(self, name: str) -> int:
        return len(self._parked.get(name, []))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Network nodes={len(self._nodes)} delivered={self.delivered}>"
