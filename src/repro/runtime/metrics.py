"""Metric accounting matching the paper's evaluation methodology.

Section 6 of the paper reports, for each control architecture, two numbers
per *mechanism*:

* **load at a node** — "the estimated number of steps or other actions that
  would be performed at the engine ... [or] at an agent", expressed in
  multiples of ``l``, the "navigation and other load per step
  (# of instructions)" (Table 3);
* **physical messages exchanged** — counted per instance and split by the
  mechanism that caused them.

The five mechanisms are the row labels of Tables 4-6:
normal execution, workflow input change, workflow abort, failure handling
and coordinated execution.  :class:`Mechanism` encodes them; every message
sent through :mod:`repro.runtime.transport` and every unit of load charged
on a :class:`repro.runtime.node.Node` carries one — identically under the
simulated and wall-clock runtimes.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

__all__ = ["Mechanism", "MetricsCollector", "MetricsSnapshot"]


class Mechanism(enum.Enum):
    """The five cost-attribution categories of the paper's Tables 4-6."""

    NORMAL = "normal_execution"
    INPUT_CHANGE = "workflow_input_change"
    ABORT = "workflow_abort"
    FAILURE = "failure_handling"
    COORDINATION = "coordinated_execution"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable copy of the collector state, for before/after diffing."""

    messages: Counter
    messages_by_interface: Counter
    load: Counter

    def messages_for(self, mechanism: Mechanism) -> int:
        return self.messages.get(mechanism, 0)

    def load_for(self, node: str, mechanism: Mechanism) -> float:
        return self.load.get((node, mechanism), 0.0)


class MetricsCollector:
    """Accumulates message and load counters during a simulation run.

    Messages are attributed ``(mechanism, interface)``; load is attributed
    ``(node, mechanism)`` in units of ``l`` (the per-step navigation load of
    Table 3).  Benchmarks normalize by the number of completed instances to
    obtain the paper's "per instance" rows.
    """

    def __init__(self) -> None:
        self.messages: Counter = Counter()
        self.messages_by_interface: Counter = Counter()
        self.load: Counter = Counter()
        #: Program work units by (node, kind) with kind in
        #: {"execute", "compensate"} — the OCR-savings benchmark's currency.
        self.work: Counter = Counter()
        self.instances_started = 0
        self.instances_committed = 0
        self.instances_aborted = 0

    # -- recording ---------------------------------------------------------

    def record_message(self, mechanism: Mechanism, interface: str) -> None:
        """Count one physical message attributed to ``mechanism``."""
        self.messages[mechanism] += 1
        self.messages_by_interface[(mechanism, interface)] += 1

    def record_load(self, node: str, mechanism: Mechanism, units: float) -> None:
        """Charge ``units`` of navigation load (multiples of ``l``) to a node."""
        self.load[(node, mechanism)] += units

    def record_work(self, node: str, kind: str, units: float) -> None:
        """Charge program work (step execution or compensation cost)."""
        self.work[(node, kind)] += units

    def total_work(self, kind: str | None = None) -> float:
        if kind is None:
            return sum(self.work.values())
        return sum(v for (__, k), v in self.work.items() if k == kind)

    # -- queries -----------------------------------------------------------

    def total_messages(self, mechanism: Mechanism | None = None) -> int:
        if mechanism is None:
            return sum(self.messages.values())
        return self.messages.get(mechanism, 0)

    def interface_messages(self, interface: str) -> int:
        """Total messages sent through a given workflow interface."""
        return sum(
            count
            for (__, iface), count in self.messages_by_interface.items()
            if iface == interface
        )

    def node_load(self, node: str, mechanism: Mechanism | None = None) -> float:
        if mechanism is None:
            return sum(v for (n, __), v in self.load.items() if n == node)
        return self.load.get((node, mechanism), 0.0)

    def nodes(self) -> list[str]:
        """All nodes that have been charged any load, sorted."""
        return sorted({node for (node, __) in self.load})

    def max_node_load(self, mechanism: Mechanism, nodes: Iterable[str] | None = None) -> float:
        """The heaviest per-node load for a mechanism (the paper's 'load at engine')."""
        pool = list(nodes) if nodes is not None else self.nodes()
        if not pool:
            return 0.0
        return max(self.node_load(node, mechanism) for node in pool)

    def mean_node_load(self, mechanism: Mechanism, nodes: Iterable[str]) -> float:
        """Average per-node load over ``nodes`` for a mechanism."""
        pool = list(nodes)
        if not pool:
            return 0.0
        return sum(self.node_load(node, mechanism) for node in pool) / len(pool)

    # -- combination -------------------------------------------------------

    def merge(self, other: "MetricsCollector") -> "MetricsCollector":
        """Fold another collector's counts into this one (in place).

        The distributed engine keeps one logical collector today, but
        per-node collectors (e.g. sharded simulations, or registries
        rebuilt from per-agent WALs) combine into a single report with
        ``fleet = MetricsCollector(); fleet.merge(a).merge(b)``.
        Returns ``self`` for chaining.
        """
        self.messages.update(other.messages)
        self.messages_by_interface.update(other.messages_by_interface)
        self.load.update(other.load)
        self.work.update(other.work)
        self.instances_started += other.instances_started
        self.instances_committed += other.instances_committed
        self.instances_aborted += other.instances_aborted
        return self

    # -- lifecycle ---------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            messages=Counter(self.messages),
            messages_by_interface=Counter(self.messages_by_interface),
            load=Counter(self.load),
        )

    def reset(self) -> None:
        self.messages.clear()
        self.messages_by_interface.clear()
        self.load.clear()
        self.work.clear()
        self.instances_started = 0
        self.instances_committed = 0
        self.instances_aborted = 0

    def per_instance_messages(self, mechanism: Mechanism) -> float:
        """Messages per *started* instance — the unit used by Tables 4-6."""
        if self.instances_started == 0:
            return 0.0
        return self.messages.get(mechanism, 0) / self.instances_started

    def per_instance_load(self, mechanism: Mechanism, nodes: Iterable[str]) -> float:
        """Mean per-node load per started instance, in units of ``l``."""
        if self.instances_started == 0:
            return 0.0
        return self.mean_node_load(mechanism, nodes) / self.instances_started

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsCollector msgs={self.total_messages()} "
            f"instances={self.instances_started}/{self.instances_committed}>"
        )
