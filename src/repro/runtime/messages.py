"""The physical-message record shared by every transport backend.

A :class:`Message` is runtime-neutral: the simulated transport and the
wall-clock asyncio transport exchange the same frozen record, so protocol
code (and the per-mechanism accounting behind the paper's Tables 4-6)
never notices which substrate delivered it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.runtime.metrics import Mechanism

__all__ = ["Message"]


@dataclass(frozen=True)
class Message:
    """One physical message between two nodes.

    ``interface`` is the workflow-interface (WI) name from Table 1 of the
    paper (e.g. ``"StepExecute"``) or an internal protocol verb; ``payload``
    is an arbitrary read-only mapping.

    ``lamport`` is the sender's Lamport clock after its send tick, and
    ``send_span`` the span id of the sender-side message span (``None``
    when causal tracing is off) — together they let the receiver stitch
    the cross-node causal chain back together.
    """

    msg_id: int
    src: str
    dst: str
    interface: str
    mechanism: Mechanism
    payload: Mapping[str, Any]
    sent_at: float
    lamport: int = 0
    send_span: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message #{self.msg_id} {self.src}->{self.dst} "
            f"{self.interface}/{self.mechanism.value}>"
        )
