"""Latency models: how long a message takes from ``send`` to ``_arrive``.

The same strategy objects drive both substrates: under simulation the
delay advances virtual time deterministically; under the asyncio runtime
it becomes a real ``call_later`` interval (``FixedLatency(0.0)`` for an
undelayed in-process service, a positive value to rehearse WAN pacing).

Constructor parameters are validated eagerly with :class:`ParameterError`
(a ``ValueError``): a negative or inverted latency window would otherwise
surface far downstream as a "cannot schedule into the past" kernel error
— or, worse, as silently mis-ordered deliveries.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

__all__ = ["FixedLatency", "LatencyModel", "UniformLatency"]


def _check_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise ParameterError(f"{name} must be finite, got {value!r}")


class LatencyModel:
    """Strategy object producing a delivery delay for each message."""

    def delay(self, src: str, dst: str) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Every message takes exactly ``latency`` time units."""

    def __init__(self, latency: float = 1.0):
        _check_finite("latency", latency)
        if latency < 0:
            raise ParameterError(
                f"latency must be non-negative, got {latency!r}"
            )
        self.latency = latency

    def delay(self, src: str, dst: str) -> float:
        return self.latency


class UniformLatency(LatencyModel):
    """Delivery delay drawn uniformly from ``[low, high]`` per message."""

    def __init__(self, rng, low: float = 0.5, high: float = 1.5):
        _check_finite("low", low)
        _check_finite("high", high)
        if low < 0:
            raise ParameterError(
                f"latency lower bound must be non-negative, got {low!r}"
            )
        if low > high:
            raise ParameterError(
                f"inverted latency bounds: low={low!r} > high={high!r}"
            )
        self._rng = rng
        self.low = low
        self.high = high

    def delay(self, src: str, dst: str) -> float:
        return self._rng.uniform(self.low, self.high)
