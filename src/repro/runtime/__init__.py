"""Pluggable runtime layer: one engine stack, many execution substrates.

The CREW engines are written against three protocol seams —
:class:`~repro.runtime.protocols.Clock`,
:class:`~repro.runtime.protocols.Transport` and
:class:`~repro.runtime.protocols.Executor` (bundled by
:class:`~repro.runtime.protocols.Runtime`) — plus the runtime-neutral
building blocks that live here: the :class:`~repro.runtime.messages.
Message` record, :class:`~repro.runtime.latency.LatencyModel` strategies,
the clock-agnostic :class:`~repro.runtime.transport.Network` transport,
the :class:`~repro.runtime.node.Node` base class, per-mechanism
:class:`~repro.runtime.metrics.MetricsCollector` accounting, seeded
:class:`~repro.runtime.rng.SimRandom` streams, the structured
:class:`~repro.runtime.trace.Trace` log and the
:class:`~repro.runtime.retry.RetryPolicy` backoff.

Backends resolve by name through :func:`~repro.runtime.factory.
build_runtime`: ``"sim"`` is the deterministic discrete-event kernel
(:mod:`repro.sim`), ``"asyncio"`` the wall-clock backend
(:mod:`repro.runtime.realtime`) behind ``repro serve``.  The AST
import-layering contract keeps the seam honest: ``repro.engines.*`` may
import this package but never ``repro.sim``.
"""

from repro.runtime.executor import ClockExecutor
from repro.runtime.factory import (
    available_runtimes,
    build_runtime,
    register_runtime,
)
from repro.runtime.latency import FixedLatency, LatencyModel, UniformLatency
from repro.runtime.messages import Message
from repro.runtime.metrics import Mechanism, MetricsCollector, MetricsSnapshot
from repro.runtime.node import Node
from repro.runtime.protocols import (
    Cancellable,
    Clock,
    Executor,
    Runtime,
    Transport,
)
from repro.runtime.retry import RetryPolicy
from repro.runtime.rng import SimRandom
from repro.runtime.trace import Trace, TraceRecord
from repro.runtime.transport import Network

__all__ = [
    "Cancellable",
    "Clock",
    "ClockExecutor",
    "Executor",
    "FixedLatency",
    "LatencyModel",
    "Mechanism",
    "Message",
    "MetricsCollector",
    "MetricsSnapshot",
    "Network",
    "Node",
    "RetryPolicy",
    "Runtime",
    "SimRandom",
    "Trace",
    "TraceRecord",
    "Transport",
    "UniformLatency",
    "available_runtimes",
    "build_runtime",
    "register_runtime",
]
