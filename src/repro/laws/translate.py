"""Translation from parsed LAWS documents to runnable model objects.

"Requirements expressed in LAWS are converted into rules" — here the
conversion goes LAWS AST -> :class:`~repro.model.builder.SchemaBuilder`
calls -> validated :class:`~repro.model.schema.WorkflowSchema` (whose
compilation yields the rule templates) plus the coordination spec objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LawsSemanticError
from repro.laws.ast import CrDecl, LawsDocument, WorkflowDecl
from repro.laws.parser import parse_laws
from repro.model.builder import SchemaBuilder
from repro.model.coordination_spec import (
    CoordinationSpec,
    MutualExclusionSpec,
    RelativeOrderSpec,
    RollbackDependencySpec,
)
from repro.model.policies import (
    AlwaysReexecute,
    ConditionPolicy,
    CRPolicy,
    IncrementalIfInputsChanged,
    ReuseIfInputsUnchanged,
)
from repro.model.schema import ControlArc, WorkflowSchema

__all__ = ["TranslatedDocument", "load_laws", "translate"]


@dataclass
class TranslatedDocument:
    """Everything a control system needs from one LAWS source file."""

    schemas: list[WorkflowSchema] = field(default_factory=list)
    specs: list[CoordinationSpec] = field(default_factory=list)

    def install(self, system) -> None:
        """Register the schemas and specs into a control system."""
        for schema in self.schemas:
            system.register_schema(schema)
        for spec in self.specs:
            system.add_coordination(spec)


def _policy_for(decl: CrDecl) -> CRPolicy:
    if decl.policy == "always":
        return AlwaysReexecute()
    if decl.policy == "reuse_if_unchanged":
        return ReuseIfInputsUnchanged()
    if decl.policy == "incremental":
        return IncrementalIfInputsChanged(decl.fraction or 0.3)
    if decl.policy == "condition":
        return ConditionPolicy(
            reuse_when=decl.reuse_when,
            incremental_when=decl.incremental_when,
            incremental_fraction=decl.fraction or 0.3,
        )
    raise LawsSemanticError(f"unknown CR policy {decl.policy!r}")


def _translate_workflow(decl: WorkflowDecl) -> WorkflowSchema:
    builder = SchemaBuilder(decl.name, inputs=decl.inputs)
    cr_policies = {cr.step: cr for cr in decl.cr_decls}
    declared = {step.name for step in decl.steps}

    for cr in decl.cr_decls:
        if cr.step not in declared:
            raise LawsSemanticError(
                f"workflow {decl.name!r}: cr declaration for unknown step "
                f"{cr.step!r} (line {cr.line})"
            )

    for step in decl.steps:
        kwargs = dict(
            program=step.program or "noop",
            step_type=step.step_type,
            inputs=step.reads,
            outputs=step.writes,
            resources=step.resources,
            compensable=step.compensable,
            compensation_program=step.compensation_program,
            compensation_cost=step.compensation_cost,
            join=step.join,
            subworkflow=step.subworkflow,
        )
        if step.cost is not None:
            kwargs["cost"] = step.cost
        cr = cr_policies.get(step.name)
        if cr is not None:
            kwargs["cr_policy"] = _policy_for(cr)
        builder.step(step.name, **kwargs)

    for arc in decl.arcs:
        if arc.is_else:
            builder._arcs.append(ControlArc(arc.src, arc.dst, is_else=True))
        else:
            builder.arc(arc.src, arc.dst, condition=arc.condition)
    for branch in decl.branches:
        builder.branch(branch.src, list(branch.conditional), otherwise=branch.otherwise)
    for parallel in decl.parallels:
        builder.parallel(parallel.src, list(parallel.branches))
    for join in decl.joins:
        builder.join(join.dst, list(join.sources), kind=join.kind)
    for loop in decl.loops:
        builder.loop(loop.src, loop.dst, while_condition=loop.condition)
    for rollback in decl.rollbacks:
        builder.rollback_point(rollback.failed_step, rollback.origin)
    for comp_set in decl.compensation_sets:
        builder.compensation_set(*comp_set.members)
    for abort in decl.abort_compensate:
        builder.abort_compensation(*abort.steps)
    for output in decl.outputs:
        builder.output(output.name, output.ref)
    return builder.build()


def translate(document: LawsDocument) -> TranslatedDocument:
    """Translate a parsed LAWS document; validates every schema."""
    result = TranslatedDocument()
    names = set()
    for workflow in document.workflows:
        if workflow.name in names:
            raise LawsSemanticError(f"duplicate workflow {workflow.name!r}")
        names.add(workflow.name)
        result.schemas.append(_translate_workflow(workflow))

    def check_schema(schema_name: str, context: str) -> WorkflowSchema:
        for schema in result.schemas:
            if schema.name == schema_name:
                return schema
        raise LawsSemanticError(f"{context}: unknown workflow {schema_name!r}")

    def check_step(schema: WorkflowSchema, step: str, context: str) -> None:
        if step not in schema.steps:
            raise LawsSemanticError(
                f"{context}: workflow {schema.name!r} has no step {step!r}"
            )

    for order in document.orders:
        context = f"order {order.name!r}"
        schema_a = check_schema(order.schema_a, context)
        schema_b = check_schema(order.schema_b, context)
        for step in order.steps_a:
            check_step(schema_a, step, context)
        for step in order.steps_b:
            check_step(schema_b, step, context)
        result.specs.append(RelativeOrderSpec(
            name=order.name,
            schema_a=order.schema_a,
            schema_b=order.schema_b,
            steps_a=order.steps_a,
            steps_b=order.steps_b,
            conflict_key=order.conflict_key,
        ))

    for mutex in document.mutexes:
        context = f"mutex {mutex.name!r}"
        schema_a = check_schema(mutex.schema_a, context)
        schema_b = check_schema(mutex.schema_b, context)
        for step in mutex.region_a:
            check_step(schema_a, step, context)
        for step in mutex.region_b:
            check_step(schema_b, step, context)
        result.specs.append(MutualExclusionSpec(
            name=mutex.name,
            schema_a=mutex.schema_a,
            schema_b=mutex.schema_b,
            region_a=mutex.region_a,
            region_b=mutex.region_b,
            conflict_key=mutex.conflict_key,
        ))

    for dependency in document.rollback_dependencies:
        context = f"rollback_dependency {dependency.name!r}"
        schema_a = check_schema(dependency.schema_a, context)
        schema_b = check_schema(dependency.schema_b, context)
        check_step(schema_a, dependency.trigger_step_a, context)
        check_step(schema_b, dependency.rollback_to_b, context)
        result.specs.append(RollbackDependencySpec(
            name=dependency.name,
            schema_a=dependency.schema_a,
            schema_b=dependency.schema_b,
            trigger_step_a=dependency.trigger_step_a,
            rollback_to_b=dependency.rollback_to_b,
            conflict_key=dependency.conflict_key,
        ))

    return result


def load_laws(text: str) -> TranslatedDocument:
    """Parse + translate LAWS source text in one call."""
    return translate(parse_laws(text))
