"""Abstract syntax of LAWS documents."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ArcDecl",
    "BranchDecl",
    "CompensationSetDecl",
    "CrDecl",
    "JoinDecl",
    "LawsDocument",
    "LoopDecl",
    "MutexDecl",
    "OrderDecl",
    "OutputDecl",
    "ParallelDecl",
    "RollbackDecl",
    "RollbackDependencyDecl",
    "AbortCompensateDecl",
    "StepDecl",
    "WorkflowDecl",
]


@dataclass
class StepDecl:
    name: str
    program: str | None = None
    step_type: str = "update"
    cost: float | None = None
    resources: tuple[str, ...] = ()
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    compensation_program: str | None = None
    compensation_cost: float | None = None
    compensable: bool = True
    join: str = "none"
    subworkflow: str | None = None
    line: int = 0


@dataclass
class ArcDecl:
    src: str
    dst: str
    condition: str | None = None
    is_else: bool = False
    line: int = 0


@dataclass
class BranchDecl:
    src: str
    conditional: tuple[tuple[str, str], ...] = ()
    otherwise: str | None = None
    line: int = 0


@dataclass
class ParallelDecl:
    src: str
    branches: tuple[str, ...] = ()
    line: int = 0


@dataclass
class JoinDecl:
    dst: str
    sources: tuple[str, ...] = ()
    kind: str = "and"
    line: int = 0


@dataclass
class LoopDecl:
    src: str
    dst: str
    condition: str = "True"
    line: int = 0


@dataclass
class RollbackDecl:
    failed_step: str
    origin: str
    line: int = 0


@dataclass
class CompensationSetDecl:
    members: tuple[str, ...] = ()
    line: int = 0


@dataclass
class AbortCompensateDecl:
    steps: tuple[str, ...] = ()
    line: int = 0


@dataclass
class CrDecl:
    step: str
    policy: str = "reuse_if_unchanged"  # always | reuse_if_unchanged | incremental | condition
    fraction: float | None = None
    reuse_when: str | None = None
    incremental_when: str | None = None
    line: int = 0


@dataclass
class OutputDecl:
    name: str
    ref: str
    line: int = 0


@dataclass
class WorkflowDecl:
    name: str
    inputs: tuple[str, ...] = ()
    steps: list[StepDecl] = field(default_factory=list)
    arcs: list[ArcDecl] = field(default_factory=list)
    branches: list[BranchDecl] = field(default_factory=list)
    parallels: list[ParallelDecl] = field(default_factory=list)
    joins: list[JoinDecl] = field(default_factory=list)
    loops: list[LoopDecl] = field(default_factory=list)
    rollbacks: list[RollbackDecl] = field(default_factory=list)
    compensation_sets: list[CompensationSetDecl] = field(default_factory=list)
    abort_compensate: list[AbortCompensateDecl] = field(default_factory=list)
    cr_decls: list[CrDecl] = field(default_factory=list)
    outputs: list[OutputDecl] = field(default_factory=list)
    line: int = 0


@dataclass
class OrderDecl:
    """``order NAME between A(s1, s2) and B(t1, t2) [on KEY];``"""

    name: str
    schema_a: str
    steps_a: tuple[str, ...]
    schema_b: str
    steps_b: tuple[str, ...]
    conflict_key: str | None = None
    line: int = 0


@dataclass
class MutexDecl:
    """``mutex NAME between A[first..last] and B[first..last] [on KEY];``"""

    name: str
    schema_a: str
    region_a: tuple[str, str]
    schema_b: str
    region_b: tuple[str, str]
    conflict_key: str | None = None
    line: int = 0


@dataclass
class RollbackDependencyDecl:
    """``rollback_dependency NAME when A.S rolls back force B to T [on KEY];``"""

    name: str
    schema_a: str
    trigger_step_a: str
    schema_b: str
    rollback_to_b: str
    conflict_key: str | None = None
    line: int = 0


@dataclass
class LawsDocument:
    workflows: list[WorkflowDecl] = field(default_factory=list)
    orders: list[OrderDecl] = field(default_factory=list)
    mutexes: list[MutexDecl] = field(default_factory=list)
    rollback_dependencies: list[RollbackDependencyDecl] = field(default_factory=list)
