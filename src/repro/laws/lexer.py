"""Tokenizer for the LAWS workflow specification language.

The paper: "a workflow specification language called LAWS has been
developed which allows the specification of failure handling and
coordinated execution requirements."  The published text gives no grammar,
so this module implements a faithful-in-spirit reconstruction (documented
in DESIGN.md): a small declarative language covering schemas, control
structures, rollback points, compensation dependent sets, CR conditions
and the three coordination building blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LawsSyntaxError

__all__ = ["Token", "tokenize"]

KEYWORDS = {
    "workflow", "inputs", "step", "arc", "join", "loop", "parallel", "branch",
    "when", "otherwise", "while", "from", "kind", "program", "type", "cost",
    "resources", "reads", "writes", "compensation", "noncompensable",
    "subworkflow", "on", "failure", "of", "rollback", "to", "set", "abort",
    "compensate", "cr", "always", "reuse_if_unchanged", "incremental",
    "reuse", "fraction", "output", "order", "between", "and", "mutex",
    "rollback_dependency", "rolls", "back", "force", "query", "update",
    "xor", "none",
}

PUNCT = {
    "{", "}", ";", ",", "(", ")", "[", "]", "=", "->", "..",
}


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' | 'name' | 'number' | 'string' | 'punct' | 'eof'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_name_char(ch: str) -> bool:
    # Dotted names are allowed (program names like ``order.check`` and data
    # references like ``WF.part``); ``..`` is handled before names.
    return ch.isalnum() or ch in "_."


def tokenize(text: str) -> list[Token]:
    """Tokenize LAWS source text.  Comments run from ``#`` to end of line."""
    tokens: list[Token] = []
    line, column = 1, 1
    index = 0
    length = len(text)

    def error(message: str) -> LawsSyntaxError:
        return LawsSyntaxError(message, line, column)

    while index < length:
        ch = text[index]
        if ch == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        if ch == "#":
            while index < length and text[index] != "\n":
                index += 1
            continue
        if text.startswith("->", index):
            tokens.append(Token("punct", "->", line, column))
            index += 2
            column += 2
            continue
        if text.startswith("..", index):
            tokens.append(Token("punct", "..", line, column))
            index += 2
            column += 2
            continue
        if ch in "{};,()[]=":
            tokens.append(Token("punct", ch, line, column))
            index += 1
            column += 1
            continue
        if ch == '"' or ch == "'":
            quote = ch
            start_col = column
            index += 1
            column += 1
            chars: list[str] = []
            while index < length and text[index] != quote:
                if text[index] == "\n":
                    raise error("unterminated string literal")
                chars.append(text[index])
                index += 1
                column += 1
            if index >= length:
                raise error("unterminated string literal")
            index += 1
            column += 1
            tokens.append(Token("string", "".join(chars), line, start_col))
            continue
        if ch.isdigit() or (ch == "." and index + 1 < length and text[index + 1].isdigit()):
            start = index
            start_col = column
            seen_dot = False
            while index < length and (
                text[index].isdigit()
                or (text[index] == "." and not seen_dot
                    and not text.startswith("..", index))
            ):
                if text[index] == ".":
                    seen_dot = True
                index += 1
                column += 1
            tokens.append(Token("number", text[start:index], line, start_col))
            continue
        if _is_name_start(ch):
            start = index
            start_col = column
            while index < length and _is_name_char(text[index]):
                if text.startswith("..", index):
                    break
                index += 1
                column += 1
            word = text[start:index]
            kind = "keyword" if word in KEYWORDS else "name"
            tokens.append(Token(kind, word, line, start_col))
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", line, column))
    return tokens
