"""LAWS: the paper's workflow specification language (reconstruction).

Parse and translate LAWS text into schemas and coordination specs::

    from repro.laws import load_laws
    doc = load_laws(source_text)
    doc.install(control_system)
"""

from repro.laws.ast import LawsDocument
from repro.laws.lexer import Token, tokenize
from repro.laws.parser import parse_laws
from repro.laws.translate import TranslatedDocument, load_laws, translate

__all__ = [
    "LawsDocument",
    "Token",
    "TranslatedDocument",
    "load_laws",
    "parse_laws",
    "tokenize",
    "translate",
]
