"""Recursive-descent parser for LAWS documents.

Grammar sketch (see DESIGN.md for the full reconstruction rationale)::

    document   := (workflow | order | mutex | rollback_dep)*
    workflow   := 'workflow' NAME '{' clause* '}'
    clause     := inputs | step | arc | branch | parallel | join | loop
                | rollback | compset | abortcomp | cr | output
    inputs     := 'inputs' NAME (',' NAME)* ';'
    step       := 'step' NAME attr* ';'
    attr       := 'program' NAME | 'type' ('query'|'update') | 'cost' NUM
                | 'resources' NAME (',' NAME)* | 'reads' REF (',' REF)*
                | 'writes' NAME (',' NAME)*
                | 'compensation' ('program' NAME | 'cost' NUM)
                | 'noncompensable' | 'join' ('and'|'xor') | 'subworkflow' NAME
    arc        := 'arc' NAME '->' NAME [('when' STRING) | 'otherwise'] ';'
    branch     := 'branch' NAME '->' NAME 'when' STRING
                  (',' NAME 'when' STRING)* [',' NAME 'otherwise'] ';'
    parallel   := 'parallel' NAME '->' NAME (',' NAME)+ ';'
    join       := 'join' NAME 'from' NAME (',' NAME)+ ['kind' ('and'|'xor')] ';'
    loop       := 'loop' NAME '->' NAME 'while' STRING ';'
    rollback   := 'on' 'failure' 'of' NAME 'rollback' 'to' NAME ';'
    compset    := 'compensation' 'set' '{' NAME (',' NAME)+ '}' ';'
    abortcomp  := 'on' 'abort' 'compensate' NAME (',' NAME)* ';'
    cr         := 'cr' NAME ('always' | 'reuse_if_unchanged'
                | 'incremental' NUM
                | 'reuse' 'when' STRING ['incremental' 'when' STRING]
                  ['fraction' NUM]) ';'
    output     := 'output' NAME '=' REF ';'
    order      := 'order' NAME 'between' NAME '(' names ')'
                  'and' NAME '(' names ')' ['on' REF] ';'
    mutex      := 'mutex' NAME 'between' NAME '[' NAME '..' NAME ']'
                  'and' NAME '[' NAME '..' NAME ']' ['on' REF] ';'
    rollback_dep := 'rollback_dependency' NAME 'when' NAME '.' NAME
                  'rolls' 'back' 'force' NAME 'to' NAME ['on' REF] ';'
"""

from __future__ import annotations

from repro.errors import LawsSyntaxError
from repro.laws.ast import (
    AbortCompensateDecl,
    ArcDecl,
    BranchDecl,
    CompensationSetDecl,
    CrDecl,
    JoinDecl,
    LawsDocument,
    LoopDecl,
    MutexDecl,
    OrderDecl,
    OutputDecl,
    ParallelDecl,
    RollbackDecl,
    RollbackDependencyDecl,
    StepDecl,
    WorkflowDecl,
)
from repro.laws.lexer import Token, tokenize

__all__ = ["parse_laws"]


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def error(self, message: str) -> LawsSyntaxError:
        token = self.current
        return LawsSyntaxError(
            f"{message} (found {token.kind} {token.value!r})",
            token.line,
            token.column,
        )

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self.current
        if token.kind != kind:
            return None
        if value is not None and token.value != value:
            return None
        return self.advance()

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            wanted = value if value is not None else kind
            raise self.error(f"expected {wanted!r}")
        return token

    def keyword(self, word: str) -> Token:
        return self.expect("keyword", word)

    def name(self) -> str:
        token = self.current
        # Keywords double as step names where unambiguous is NOT allowed;
        # names must be plain identifiers (possibly dotted).
        if token.kind in ("name",):
            return self.advance().value
        raise self.error("expected a name")

    def name_list(self) -> list[str]:
        names = [self.name()]
        while self.accept("punct", ","):
            names.append(self.name())
        return names

    def number(self) -> float:
        token = self.expect("number")
        return float(token.value)

    def string(self) -> str:
        return self.expect("string").value

    # -- document --------------------------------------------------------------------

    def document(self) -> LawsDocument:
        doc = LawsDocument()
        while self.current.kind != "eof":
            if self.accept("keyword", "workflow"):
                doc.workflows.append(self.workflow())
            elif self.accept("keyword", "order"):
                doc.orders.append(self.order())
            elif self.accept("keyword", "mutex"):
                doc.mutexes.append(self.mutex())
            elif self.accept("keyword", "rollback_dependency"):
                doc.rollback_dependencies.append(self.rollback_dependency())
            else:
                raise self.error(
                    "expected 'workflow', 'order', 'mutex' or "
                    "'rollback_dependency'"
                )
        return doc

    # -- workflow body ------------------------------------------------------------------

    def workflow(self) -> WorkflowDecl:
        line = self.current.line
        decl = WorkflowDecl(name=self.name(), line=line)
        self.expect("punct", "{")
        while not self.accept("punct", "}"):
            self.workflow_clause(decl)
        return decl

    def workflow_clause(self, decl: WorkflowDecl) -> None:
        token = self.current
        if self.accept("keyword", "inputs"):
            decl.inputs = decl.inputs + tuple(self.name_list())
            self.expect("punct", ";")
        elif self.accept("keyword", "step"):
            decl.steps.append(self.step(token.line))
        elif self.accept("keyword", "arc"):
            decl.arcs.append(self.arc(token.line))
        elif self.accept("keyword", "branch"):
            decl.branches.append(self.branch(token.line))
        elif self.accept("keyword", "parallel"):
            decl.parallels.append(self.parallel(token.line))
        elif self.accept("keyword", "join"):
            decl.joins.append(self.join(token.line))
        elif self.accept("keyword", "loop"):
            decl.loops.append(self.loop(token.line))
        elif self.accept("keyword", "on"):
            if self.accept("keyword", "failure"):
                self.keyword("of")
                failed = self.name()
                self.keyword("rollback")
                self.keyword("to")
                origin = self.name()
                self.expect("punct", ";")
                decl.rollbacks.append(RollbackDecl(failed, origin, token.line))
            elif self.accept("keyword", "abort"):
                self.keyword("compensate")
                steps = tuple(self.name_list())
                self.expect("punct", ";")
                decl.abort_compensate.append(AbortCompensateDecl(steps, token.line))
            else:
                raise self.error("expected 'failure' or 'abort' after 'on'")
        elif self.accept("keyword", "compensation"):
            self.keyword("set")
            self.expect("punct", "{")
            members = tuple(self.name_list())
            self.expect("punct", "}")
            self.expect("punct", ";")
            decl.compensation_sets.append(CompensationSetDecl(members, token.line))
        elif self.accept("keyword", "cr"):
            decl.cr_decls.append(self.cr(token.line))
        elif self.accept("keyword", "output"):
            name = self.name()
            self.expect("punct", "=")
            ref = self.name()
            self.expect("punct", ";")
            decl.outputs.append(OutputDecl(name, ref, token.line))
        else:
            raise self.error("unexpected clause in workflow body")

    def step(self, line: int) -> StepDecl:
        decl = StepDecl(name=self.name(), line=line)
        while self.current.kind != "punct" or self.current.value != ";":
            if self.accept("keyword", "program"):
                decl.program = self.name()
            elif self.accept("keyword", "type"):
                kind = self.advance()
                if kind.value not in ("query", "update"):
                    raise self.error("step type must be 'query' or 'update'")
                decl.step_type = kind.value
            elif self.accept("keyword", "cost"):
                decl.cost = self.number()
            elif self.accept("keyword", "resources"):
                decl.resources = decl.resources + tuple(self.name_list())
            elif self.accept("keyword", "reads"):
                decl.reads = decl.reads + tuple(self.name_list())
            elif self.accept("keyword", "writes"):
                decl.writes = decl.writes + tuple(self.name_list())
            elif self.accept("keyword", "compensation"):
                if self.accept("keyword", "program"):
                    decl.compensation_program = self.name()
                elif self.accept("keyword", "cost"):
                    decl.compensation_cost = self.number()
                else:
                    raise self.error("expected 'program' or 'cost' after 'compensation'")
            elif self.accept("keyword", "noncompensable"):
                decl.compensable = False
            elif self.accept("keyword", "join"):
                kind = self.advance()
                if kind.value not in ("and", "xor", "none"):
                    raise self.error("join kind must be 'and', 'xor' or 'none'")
                decl.join = kind.value
            elif self.accept("keyword", "subworkflow"):
                decl.subworkflow = self.name()
            else:
                raise self.error("unexpected step attribute")
        self.expect("punct", ";")
        return decl

    def arc(self, line: int) -> ArcDecl:
        src = self.name()
        self.expect("punct", "->")
        dst = self.name()
        condition: str | None = None
        is_else = False
        if self.accept("keyword", "when"):
            condition = self.string()
        elif self.accept("keyword", "otherwise"):
            is_else = True
        self.expect("punct", ";")
        return ArcDecl(src, dst, condition, is_else, line)

    def branch(self, line: int) -> BranchDecl:
        src = self.name()
        self.expect("punct", "->")
        conditional: list[tuple[str, str]] = []
        otherwise: str | None = None
        while True:
            dst = self.name()
            if self.accept("keyword", "when"):
                conditional.append((dst, self.string()))
            elif self.accept("keyword", "otherwise"):
                otherwise = dst
            else:
                raise self.error("branch arm needs 'when \"cond\"' or 'otherwise'")
            if not self.accept("punct", ","):
                break
        self.expect("punct", ";")
        return BranchDecl(src, tuple(conditional), otherwise, line)

    def parallel(self, line: int) -> ParallelDecl:
        src = self.name()
        self.expect("punct", "->")
        branches = tuple(self.name_list())
        self.expect("punct", ";")
        return ParallelDecl(src, branches, line)

    def join(self, line: int) -> JoinDecl:
        dst = self.name()
        self.keyword("from")
        sources = tuple(self.name_list())
        kind = "and"
        if self.accept("keyword", "kind"):
            token = self.advance()
            if token.value not in ("and", "xor"):
                raise self.error("join kind must be 'and' or 'xor'")
            kind = token.value
        self.expect("punct", ";")
        return JoinDecl(dst, sources, kind, line)

    def loop(self, line: int) -> LoopDecl:
        src = self.name()
        self.expect("punct", "->")
        dst = self.name()
        self.keyword("while")
        condition = self.string()
        self.expect("punct", ";")
        return LoopDecl(src, dst, condition, line)

    def cr(self, line: int) -> CrDecl:
        step = self.name()
        decl = CrDecl(step=step, line=line)
        if self.accept("keyword", "always"):
            decl.policy = "always"
        elif self.accept("keyword", "reuse_if_unchanged"):
            decl.policy = "reuse_if_unchanged"
        elif self.accept("keyword", "incremental"):
            decl.policy = "incremental"
            decl.fraction = self.number()
        elif self.accept("keyword", "reuse"):
            self.keyword("when")
            decl.policy = "condition"
            decl.reuse_when = self.string()
            if self.accept("keyword", "incremental"):
                self.keyword("when")
                decl.incremental_when = self.string()
            if self.accept("keyword", "fraction"):
                decl.fraction = self.number()
        else:
            raise self.error(
                "expected 'always', 'reuse_if_unchanged', 'incremental N' or "
                "'reuse when \"...\"'"
            )
        self.expect("punct", ";")
        return decl

    # -- coordination declarations --------------------------------------------------------

    def _schema_steps(self) -> tuple[str, tuple[str, ...]]:
        schema = self.name()
        self.expect("punct", "(")
        steps = tuple(self.name_list())
        self.expect("punct", ")")
        return schema, steps

    def _schema_region(self) -> tuple[str, tuple[str, str]]:
        schema = self.name()
        self.expect("punct", "[")
        first = self.name()
        self.expect("punct", "..")
        last = self.name()
        self.expect("punct", "]")
        return schema, (first, last)

    def _optional_key(self) -> str | None:
        if self.accept("keyword", "on"):
            return self.name()
        return None

    def order(self) -> OrderDecl:
        line = self.current.line
        name = self.name()
        self.keyword("between")
        schema_a, steps_a = self._schema_steps()
        self.keyword("and")
        schema_b, steps_b = self._schema_steps()
        key = self._optional_key()
        self.expect("punct", ";")
        return OrderDecl(name, schema_a, steps_a, schema_b, steps_b, key, line)

    def mutex(self) -> MutexDecl:
        line = self.current.line
        name = self.name()
        self.keyword("between")
        schema_a, region_a = self._schema_region()
        self.keyword("and")
        schema_b, region_b = self._schema_region()
        key = self._optional_key()
        self.expect("punct", ";")
        return MutexDecl(name, schema_a, region_a, schema_b, region_b, key, line)

    def rollback_dependency(self) -> RollbackDependencyDecl:
        line = self.current.line
        name = self.name()
        self.keyword("when")
        qualified = self.name()  # Schema.Step (dotted name)
        if "." not in qualified:
            raise self.error("expected Schema.Step after 'when'")
        schema_a, __, trigger = qualified.partition(".")
        self.keyword("rolls")
        self.keyword("back")
        self.keyword("force")
        schema_b = self.name()
        self.keyword("to")
        target = self.name()
        key = self._optional_key()
        self.expect("punct", ";")
        return RollbackDependencyDecl(
            name, schema_a, trigger, schema_b, target, key, line
        )


def parse_laws(text: str) -> LawsDocument:
    """Parse LAWS source text into a :class:`LawsDocument`."""
    return _Parser(tokenize(text)).document()
