"""Opportunistic compensation and re-execution (OCR) — paper Figure 5.

OCR is the paper's failure-handling contribution: when a partially rolled
back workflow re-executes, each already-executed step is handled by its
compensation/re-execution (CR) condition instead of being blindly
compensated and redone:

    "instead of immediately executing the step, the compensation and
    re-execution condition is checked first to determine the exact course
    of action, i.e., whether the step is to be partially compensated and
    incrementally re-executed or whether a complete compensation and
    re-execution is needed. ... If a re-execution is not necessary then a
    step.done event is generated, else the step is compensated and then
    re-executed."

Compensation dependent sets add an ordering constraint: "a compensation
dependent set is to be compensated only in the reverse execution order of
its member steps", realized in distributed control by the CompensateSet()
chain.

This module is pure logic — no messaging, no clocks — so the central,
parallel and distributed engines all share one OCR implementation and the
property-based tests can drive it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import RecoveryError
from repro.model.policies import CRDecision, CRPolicy
from repro.model.schema import StepDef
from repro.storage.tables import InstanceState, StepRecord, StepStatus

__all__ = [
    "OCRPlan",
    "compensation_set_order",
    "compensation_set_order_from_events",
    "plan_step_action",
    "stale_compensation_chain",
]


@dataclass(frozen=True)
class OCRPlan:
    """What to do when a step is (re)triggered.

    ``decision`` is ``None`` on a first execution (no OCR involvement).
    Costs are in step-cost units, already scaled for partial/incremental
    handling; the engines charge them as program work.
    """

    step: str
    first_execution: bool
    decision: CRDecision | None
    compensate: bool
    compensation_kind: str | None  # "complete" | "partial"
    compensation_cost: float
    reexecute: bool
    execution_kind: str | None  # "complete" | "incremental"
    execution_cost: float
    reuse_outputs: bool

    @property
    def total_cost(self) -> float:
        return self.compensation_cost + self.execution_cost

    def span_attrs(self) -> dict[str, Any]:
        """Observability attributes for rollback/re-execution spans.

        Flat, JSON-safe key/value pairs so every engine annotates its
        recovery and step spans identically — what the OCR condition
        decided, how it will be realized and what it costs.
        """
        return {
            "ocr.step": self.step,
            "ocr.first_execution": self.first_execution,
            "ocr.decision": self.decision.name if self.decision else "NONE",
            "ocr.compensation": self.compensation_kind or "none",
            "ocr.execution": self.execution_kind or "none",
            "ocr.reuse": self.reuse_outputs,
            "ocr.cost": self.total_cost,
        }


def plan_step_action(
    step_def: StepDef,
    record: StepRecord,
    new_inputs: Mapping[str, Any],
    policy: CRPolicy,
) -> OCRPlan:
    """Evaluate the CR condition for one (re)triggered step.

    ``record`` is the step-status row (including the previous execution's
    inputs/outputs, which the OCR scheme requires the node to retain);
    ``new_inputs`` are the input values the step would see now.
    """
    if record.status in (StepStatus.NOT_STARTED, StepStatus.COMPENSATED):
        return OCRPlan(
            step=step_def.name,
            first_execution=record.executions == 0,
            decision=None,
            compensate=False,
            compensation_kind=None,
            compensation_cost=0.0,
            reexecute=True,
            execution_kind="complete",
            execution_cost=step_def.cost,
            reuse_outputs=False,
        )

    if record.status is StepStatus.FAILED:
        # A failed step left no effects to undo; simply execute again.
        return OCRPlan(
            step=step_def.name,
            first_execution=False,
            decision=None,
            compensate=False,
            compensation_kind=None,
            compensation_cost=0.0,
            reexecute=True,
            execution_kind="complete",
            execution_cost=step_def.cost,
            reuse_outputs=False,
        )

    if record.status is StepStatus.RUNNING:
        raise RecoveryError(
            f"step {step_def.name!r} re-triggered while still running — the "
            "thread was not quiesced before re-execution"
        )

    # Previously DONE: consult the CR condition.
    decision = policy.decide(record.last_inputs, new_inputs, record.last_outputs)
    if decision is CRDecision.REUSE:
        return OCRPlan(
            step=step_def.name,
            first_execution=False,
            decision=decision,
            compensate=False,
            compensation_kind=None,
            compensation_cost=0.0,
            reexecute=False,
            execution_kind=None,
            execution_cost=0.0,
            reuse_outputs=True,
        )

    if decision is CRDecision.INCREMENTAL:
        fraction = policy.incremental_fraction
        can_compensate = step_def.compensable
        return OCRPlan(
            step=step_def.name,
            first_execution=False,
            decision=decision,
            compensate=can_compensate,
            compensation_kind="partial" if can_compensate else None,
            compensation_cost=(
                step_def.effective_compensation_cost * fraction if can_compensate else 0.0
            ),
            reexecute=True,
            execution_kind="incremental",
            execution_cost=step_def.cost * fraction,
            reuse_outputs=False,
        )

    # COMPLETE
    can_compensate = step_def.compensable
    return OCRPlan(
        step=step_def.name,
        first_execution=False,
        decision=decision,
        compensate=can_compensate,
        compensation_kind="complete" if can_compensate else None,
        compensation_cost=step_def.effective_compensation_cost if can_compensate else 0.0,
        reexecute=True,
        execution_kind="complete",
        execution_cost=step_def.cost,
        reuse_outputs=False,
    )


def compensation_set_order(
    members: frozenset[str], state: InstanceState, up_to: str | None = None
) -> list[str]:
    """Reverse-execution-order compensation list for a dependent set.

    Returns the *executed* members of ``members``, latest execution first
    (the paper's StepList for the CompensateSet() chain).  When ``up_to``
    is given, the list stops at (and includes) that step: members executed
    *before* it keep their effects — only steps executed after the
    re-executing member, plus the member itself, must be undone.
    """
    executed = [
        state.steps[m]
        for m in members
        if m in state.steps and state.steps[m].status is StepStatus.DONE
    ]
    ordered = sorted(executed, key=lambda r: r.exec_seq or 0, reverse=True)
    result = [r.step for r in ordered]
    if up_to is not None:
        if up_to not in result:
            raise RecoveryError(
                f"step {up_to!r} is not an executed member of the compensation set"
            )
        result = result[: result.index(up_to) + 1]
    return result


def compensation_set_order_from_events(
    members: frozenset[str],
    done_times: Mapping[str, float],
    up_to: str | None = None,
) -> list[str]:
    """Distributed-control variant of :func:`compensation_set_order`.

    An agent's fragment only holds step records for steps executed locally;
    the *event table* (assembled from workflow packets) holds ``step.done``
    times for everything upstream, so the CompensateSet StepList is derived
    from those.  ``done_times`` maps step name -> done-event time.
    """
    executed = [(time, step) for step, time in done_times.items() if step in members]
    executed.sort(key=lambda pair: (-pair[0], pair[1]))
    result = [step for __, step in executed]
    if up_to is not None:
        if up_to not in result:
            raise RecoveryError(
                f"step {up_to!r} has no valid done event among the set members"
            )
        result = result[: result.index(up_to) + 1]
    return result


def stale_compensation_chain(
    members: frozenset[str],
    stale_done_times: Mapping[str, float],
    initiator: str,
) -> list[str]:
    """The CompensateSet StepList for a re-triggered set member.

    ``stale_done_times`` maps members to the done-times of their *rolled
    back* (invalidated) executions — members whose current done event is
    valid were already re-established and must not be compensated.  Per the
    paper, "the other members of the set that executed after the step are
    also compensated in the reverse execution order before the step is
    compensated and re-executed": the chain is the stale members executed
    at-or-after the initiator, latest first, ending with the initiator
    itself.
    """
    cutoff = stale_done_times.get(initiator, float("-inf"))
    later = [
        m
        for m in members
        if m != initiator and m in stale_done_times and stale_done_times[m] >= cutoff
    ]
    later.sort(key=lambda m: (-stale_done_times[m], m))
    return [*later, initiator]
