"""The Workflow Interfaces (WIs) of distributed workflow control.

Table 1 of the paper enumerates the interfaces agents support; Table 2
maps each to the mechanism (normal execution, failure handling or
coordinated execution) whose cost rows it contributes to.  Every physical
message in this library names one of these interfaces (plus a handful of
protocol-internal verbs), so the per-mechanism message accounting of the
benchmark harness is driven directly off this table.

``CompensateThread`` appears in the paper's Section 5.2 prose (abandoned
if-then-else branches) although it is missing from Table 1; it is included
here with a note.
"""

from __future__ import annotations

import enum

from repro.runtime.metrics import Mechanism

__all__ = ["WI", "default_mechanism", "SUPPORTED_BY", "INVOKED_BY"]


class WI(enum.Enum):
    """Workflow interface names (message verbs)."""

    # -- front-end facing (coordination agent / engine) --
    WORKFLOW_START = "WorkflowStart"
    WORKFLOW_CHANGE_INPUTS = "WorkflowChangeInputs"
    WORKFLOW_ABORT = "WorkflowAbort"
    WORKFLOW_STATUS = "WorkflowStatus"
    # -- agent-to-agent --
    INPUTS_CHANGED = "InputsChanged"
    STEP_EXECUTE = "StepExecute"
    STEP_COMPENSATE = "StepCompensate"
    STEP_COMPLETED = "StepCompleted"
    STEP_STATUS = "StepStatus"
    WORKFLOW_ROLLBACK = "WorkflowRollback"
    HALT_THREAD = "HaltThread"
    COMPENSATE_SET = "CompensateSet"
    STATE_INFORMATION = "StateInformation"
    ADD_RULE = "AddRule"
    ADD_EVENT = "AddEvent"
    ADD_PRECONDITION = "AddPrecondition"
    # -- Section 5.2 prose (not in Table 1) --
    COMPENSATE_THREAD = "CompensateThread"

    def __str__(self) -> str:
        return self.value


#: Default mechanism attribution per Table 2 of the paper.  Call sites may
#: override (e.g. a StepExecute carrying a re-execution packet after a
#: rollback is attributed to FAILURE, and StepCompensate issued for a
#: user abort is attributed to ABORT).
_DEFAULT_MECHANISM: dict[WI, Mechanism] = {
    WI.WORKFLOW_START: Mechanism.NORMAL,
    WI.WORKFLOW_CHANGE_INPUTS: Mechanism.INPUT_CHANGE,
    WI.WORKFLOW_ABORT: Mechanism.ABORT,
    WI.WORKFLOW_STATUS: Mechanism.NORMAL,
    WI.INPUTS_CHANGED: Mechanism.INPUT_CHANGE,
    WI.STEP_EXECUTE: Mechanism.NORMAL,
    WI.STEP_COMPENSATE: Mechanism.FAILURE,
    WI.STEP_COMPLETED: Mechanism.NORMAL,
    WI.STEP_STATUS: Mechanism.FAILURE,
    WI.WORKFLOW_ROLLBACK: Mechanism.FAILURE,
    WI.HALT_THREAD: Mechanism.FAILURE,
    WI.COMPENSATE_SET: Mechanism.FAILURE,
    WI.STATE_INFORMATION: Mechanism.NORMAL,
    WI.ADD_RULE: Mechanism.COORDINATION,
    WI.ADD_EVENT: Mechanism.COORDINATION,
    WI.ADD_PRECONDITION: Mechanism.COORDINATION,
    WI.COMPENSATE_THREAD: Mechanism.FAILURE,
}

#: Which node type supports each WI (paper Table 1, "Supported By").
SUPPORTED_BY: dict[WI, str] = {
    WI.WORKFLOW_START: "coordination",
    WI.WORKFLOW_CHANGE_INPUTS: "coordination",
    WI.WORKFLOW_ABORT: "coordination",
    WI.WORKFLOW_STATUS: "coordination",
    WI.INPUTS_CHANGED: "execution",
    WI.STEP_EXECUTE: "execution",
    WI.STEP_COMPENSATE: "execution",
    WI.STEP_COMPLETED: "coordination",
    WI.STEP_STATUS: "execution",
    WI.WORKFLOW_ROLLBACK: "execution",
    WI.HALT_THREAD: "execution",
    WI.COMPENSATE_SET: "execution",
    WI.STATE_INFORMATION: "execution",
    WI.ADD_RULE: "execution",
    WI.ADD_EVENT: "execution",
    WI.ADD_PRECONDITION: "execution",
    WI.COMPENSATE_THREAD: "execution",
}

#: Who invokes each WI (paper Table 1, "Invoked By").
INVOKED_BY: dict[WI, str] = {
    WI.WORKFLOW_START: "front-end",
    WI.WORKFLOW_CHANGE_INPUTS: "front-end",
    WI.WORKFLOW_ABORT: "front-end",
    WI.WORKFLOW_STATUS: "front-end",
    WI.INPUTS_CHANGED: "coordination-agent",
    WI.STEP_EXECUTE: "coordination/execution-agent",
    WI.STEP_COMPENSATE: "agent",
    WI.STEP_COMPLETED: "termination-agent",
    WI.STEP_STATUS: "execution-agent",
    WI.WORKFLOW_ROLLBACK: "execution-agent",
    WI.HALT_THREAD: "execution-agent",
    WI.COMPENSATE_SET: "execution-agent",
    WI.STATE_INFORMATION: "execution-agent",
    WI.ADD_RULE: "execution-agent",
    WI.ADD_EVENT: "execution-agent",
    WI.ADD_PRECONDITION: "execution-agent",
    WI.COMPENSATE_THREAD: "execution-agent",
}


def default_mechanism(wi: WI) -> Mechanism:
    """Table 2's mechanism attribution for a workflow interface."""
    return _DEFAULT_MECHANISM[wi]
