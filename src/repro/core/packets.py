"""Workflow packets — the state carrier of distributed control.

"After the execution of a step, an agent has to communicate the entire
state information of the workflow that it is aware of to the agent
responsible for executing the next step.  This information is communicated
via a workflow packet. ... the contents of a workflow packet includes the
contents of the workflow packet received by the agent (request for
performing that step) and the output produced by the execution of the step
at the agent."  (paper, Section 4.1; sample packet in Figure 7)

A packet carries:

* identity: schema name, instance id, the action/target step;
* the **data items** the sender knows (accumulated data table);
* the **events** the sender knows (accumulated valid event tokens with
  occurrence times) — "the workflow packet thus also contains event
  information required for the rule based navigation";
* **invalidations** — tokens invalidated by a rollback or loop re-entry,
  with cutoff times so a receiver never invalidates a *newer* re-execution
  of the same event (race-condition avoidance);
* recovery bookkeeping (epoch + last rollback origin) so stale messages
  from an older recovery round are recognizable;
* relative-ordering piggyback info ("R.O. Leading / R.O. Lagging" in
  Figure 7);
* the assigned executor, chosen by the sender among eligible agents.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.runtime.metrics import Mechanism

__all__ = ["WorkflowPacket"]


@dataclass(frozen=True)
class WorkflowPacket:
    """One workflow packet (immutable; derive successors via ``evolve``)."""

    schema_name: str
    instance_id: str
    action: str  # "execute"
    target_step: str
    data: Mapping[str, Any] = field(default_factory=dict)
    events: Mapping[str, float] = field(default_factory=dict)
    invalidations: Mapping[str, float] = field(default_factory=dict)
    recovery_epoch: int = 0
    recovery_origin: str | None = None
    #: Mechanism the enclosing message is attributed to (a re-execution
    #: packet after a rollback counts under FAILURE, etc.).
    mechanism: Mechanism = Mechanism.NORMAL
    #: (spec name, leading instance id, lagging instance id) triples the
    #: sender knows about — the Figure 7 "R.O." lines.
    ro_info: tuple[tuple[str, str, str], ...] = ()
    #: step -> agent that executed it, accumulated as the packet travels;
    #: backs the AGDB's "information about agents responsible for running
    #: the steps" used by CompensateSet chains and StepStatus polling.
    executors: Mapping[str, str] = field(default_factory=dict)
    assigned_agent: str | None = None
    #: For nested workflows: (parent instance id, parent step) so the child
    #: coordination agent can report back on commit.
    parent_link: tuple[str, str] | None = None

    def evolve(self, **changes: Any) -> "WorkflowPacket":
        return replace(self, **changes)

    def to_payload(self) -> dict[str, Any]:
        """Serialize for a network message payload."""
        return {
            "schema_name": self.schema_name,
            "instance_id": self.instance_id,
            "action": self.action,
            "target_step": self.target_step,
            "data": dict(self.data),
            "events": dict(self.events),
            "invalidations": dict(self.invalidations),
            "recovery_epoch": self.recovery_epoch,
            "recovery_origin": self.recovery_origin,
            "mechanism": self.mechanism.value,
            "ro_info": list(self.ro_info),
            "executors": dict(self.executors),
            "assigned_agent": self.assigned_agent,
            "parent_link": list(self.parent_link) if self.parent_link else None,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "WorkflowPacket":
        parent_link = payload.get("parent_link")
        return cls(
            schema_name=payload["schema_name"],
            instance_id=payload["instance_id"],
            action=payload["action"],
            target_step=payload["target_step"],
            data=dict(payload["data"]),
            events=dict(payload["events"]),
            invalidations=dict(payload.get("invalidations", {})),
            recovery_epoch=payload.get("recovery_epoch", 0),
            recovery_origin=payload.get("recovery_origin"),
            mechanism=Mechanism(payload.get("mechanism", Mechanism.NORMAL.value)),
            ro_info=tuple(tuple(item) for item in payload.get("ro_info", ())),
            executors=dict(payload.get("executors", {})),
            assigned_agent=payload.get("assigned_agent"),
            parent_link=tuple(parent_link) if parent_link else None,
        )

    def describe(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"packet[{self.schema_name}/{self.instance_id} -> {self.target_step} "
            f"epoch={self.recovery_epoch} events={sorted(self.events)}]"
        )
