"""Shared rollback/halt/invalidation helpers.

The paper's recovery procedure is "two pronged": probes halt the affected
threads, and the ``step.done`` events of steps downstream of the rollback
origin are invalidated so that "incorrect rules will not be fired".  The
helpers here compute *what* to halt/invalidate; the engines decide *how*
(locally in centralized control, via HaltThread()/CompensateSet() message
chains in distributed control).
"""

from __future__ import annotations

from typing import Iterable

from repro.model.compiler import CompiledSchema
from repro.rules.events import step_done, step_fail
from repro.storage.tables import InstanceState, StepStatus

__all__ = [
    "RecoveryTokens",
    "abandoned_branch_compensation",
    "invalidation_tokens",
    "steps_to_invalidate",
]


def steps_to_invalidate(compiled: CompiledSchema, origin: str) -> frozenset[str]:
    """The rollback origin and every forward descendant of it."""
    return compiled.invalidation_set(origin)


def invalidation_tokens(steps: Iterable[str]) -> frozenset[str]:
    """Event tokens to invalidate for the given rolled-back steps.

    Both completion and failure events are invalidated: a re-executed
    thread must not observe stale ``step.fail`` occurrences either.
    """
    tokens: set[str] = set()
    for step in steps:
        tokens.add(step_done(step))
        tokens.add(step_fail(step))
    return frozenset(tokens)


class RecoveryTokens:
    """Convenience bundle: steps + tokens affected by one rollback."""

    def __init__(self, compiled: CompiledSchema, origin: str):
        self.origin = origin
        self.steps = steps_to_invalidate(compiled, origin)
        self.tokens = invalidation_tokens(self.steps)


def abandoned_branch_compensation(
    compiled: CompiledSchema,
    state: InstanceState,
    split: str,
    taken_first: str,
) -> list[str]:
    """Steps of the now-abandoned if-then-else branch needing compensation.

    "If a branch different from the previous execution is taken, steps of
    the previously executed branch have to be compensated."  Returns the
    *executed, compensable, not already compensated* exclusive members of
    the other branches, in reverse execution order (latest first).
    """
    candidates = compiled.abandoned_branch_members(split, taken_first)
    executed = []
    for step in candidates:
        record = state.steps.get(step)
        if record is None or record.status is not StepStatus.DONE:
            continue
        if not compiled.schema.steps[step].compensable:
            continue
        executed.append(record)
    executed.sort(key=lambda r: r.exec_seq or 0, reverse=True)
    return [r.step for r in executed]
