"""Step programs: the "black boxes" agents execute to perform steps.

"A step is performed by typically executing a program that accesses a
database.  The program associated with a step and the data that is
accessed by the step are not known to the WFMS" — so the enactment layers
only see this narrow interface: a program consumes the step's resolved
input values and yields a :class:`StepResult` (success/failure + outputs).

The library ships composable synthetic programs used by examples, tests
and workloads: constant/function programs, failure injectors (for the
paper's *logical* step failures), and a default no-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import WorkloadError
from repro.storage.tables import StepRecord

__all__ = [
    "ConstantProgram",
    "ExecutionContext",
    "FailEveryNth",
    "FailWithProbability",
    "FunctionProgram",
    "NoopProgram",
    "ProgramRegistry",
    "StepProgram",
    "StepResult",
]


@dataclass(frozen=True)
class StepResult:
    """Outcome of one program execution."""

    success: bool
    outputs: dict[str, Any] = field(default_factory=dict)
    error: str | None = None


@dataclass(frozen=True)
class ExecutionContext:
    """What a program may observe about its invocation.

    ``attempt`` counts executions of this step within this instance
    (1-based), letting synthetic programs fail the first attempt and
    succeed on re-execution — the canonical rollback test scenario.
    ``rng`` is a dedicated deterministic random stream.
    """

    schema_name: str
    instance_id: str
    step: str
    attempt: int
    now: float
    node: str
    rng: Any = None


class StepProgram:
    """Interface every step program implements."""

    def execute(
        self, inputs: Mapping[str, Any], ctx: ExecutionContext
    ) -> StepResult:  # pragma: no cover - interface
        raise NotImplementedError

    def compensate(self, record: StepRecord, ctx: ExecutionContext) -> None:
        """Undo a previous execution.  Effects are symbolic in the
        simulation; the default is a no-op hook."""


class NoopProgram(StepProgram):
    """Succeeds and produces a deterministic marker for each output."""

    def __init__(self, outputs: tuple[str, ...] = ()):
        self._outputs = outputs

    def execute(self, inputs: Mapping[str, Any], ctx: ExecutionContext) -> StepResult:
        return StepResult(
            success=True,
            outputs={name: f"{ctx.step}.{name}@{ctx.attempt}" for name in self._outputs},
        )


class ConstantProgram(StepProgram):
    """Always succeeds with fixed outputs (handy in unit tests)."""

    def __init__(self, outputs: Mapping[str, Any] | None = None):
        self._outputs = dict(outputs or {})

    def execute(self, inputs: Mapping[str, Any], ctx: ExecutionContext) -> StepResult:
        return StepResult(success=True, outputs=dict(self._outputs))


class FunctionProgram(StepProgram):
    """Wraps ``fn(inputs, ctx) -> dict`` as a program; exceptions fail the step."""

    def __init__(
        self,
        fn: Callable[[Mapping[str, Any], ExecutionContext], Mapping[str, Any]],
        compensate_fn: Callable[[StepRecord, ExecutionContext], None] | None = None,
    ):
        self._fn = fn
        self._compensate_fn = compensate_fn

    def execute(self, inputs: Mapping[str, Any], ctx: ExecutionContext) -> StepResult:
        try:
            outputs = self._fn(inputs, ctx)
        except Exception as exc:  # logical step failure
            return StepResult(success=False, error=str(exc))
        return StepResult(success=True, outputs=dict(outputs or {}))

    def compensate(self, record: StepRecord, ctx: ExecutionContext) -> None:
        if self._compensate_fn is not None:
            self._compensate_fn(record, ctx)


class FailEveryNth(StepProgram):
    """Fails on configured attempt numbers, then delegates.

    ``fail_attempts={1}`` yields the paper's Figure 3 scenario: the first
    execution thread fails, the re-executed thread succeeds.
    """

    def __init__(self, inner: StepProgram, fail_attempts: frozenset[int] | set[int]):
        self._inner = inner
        self._fail_attempts = frozenset(fail_attempts)

    def execute(self, inputs: Mapping[str, Any], ctx: ExecutionContext) -> StepResult:
        if ctx.attempt in self._fail_attempts:
            return StepResult(
                success=False, error=f"injected failure (attempt {ctx.attempt})"
            )
        return self._inner.execute(inputs, ctx)

    def compensate(self, record: StepRecord, ctx: ExecutionContext) -> None:
        self._inner.compensate(record, ctx)


class FailWithProbability(StepProgram):
    """Fails with probability ``pf`` per attempt (Table 3's logical-failure
    probability), drawing from the context's deterministic stream."""

    def __init__(self, inner: StepProgram, pf: float, max_failures: int | None = None):
        if not 0.0 <= pf <= 1.0:
            raise WorkloadError(f"failure probability {pf} outside [0, 1]")
        self._inner = inner
        self._pf = pf
        self._max_failures = max_failures
        self._failures: dict[tuple[str, str], int] = {}

    def execute(self, inputs: Mapping[str, Any], ctx: ExecutionContext) -> StepResult:
        key = (ctx.instance_id, ctx.step)
        failed_so_far = self._failures.get(key, 0)
        budget_ok = self._max_failures is None or failed_so_far < self._max_failures
        if budget_ok and ctx.rng is not None and ctx.rng.random() < self._pf:
            self._failures[key] = failed_so_far + 1
            return StepResult(success=False, error="probabilistic logical failure")
        return self._inner.execute(inputs, ctx)

    def compensate(self, record: StepRecord, ctx: ExecutionContext) -> None:
        self._inner.compensate(record, ctx)


class ProgramRegistry:
    """Name -> program lookup shared by every node of a control system."""

    def __init__(self) -> None:
        self._programs: dict[str, StepProgram] = {}

    def register(self, name: str, program: StepProgram) -> None:
        self._programs[name] = program

    def get(self, name: str, outputs: tuple[str, ...] = ()) -> StepProgram:
        """Resolve a program; unknown names fall back to a no-op producing
        the declared outputs (steps are black boxes — a missing program is
        a workload convenience, not an error)."""
        program = self._programs.get(name)
        if program is None:
            # Not cached: the fallback depends on the declared outputs of
            # the *step*, and several steps may share one program name.
            return NoopProgram(outputs)
        return program

    def has(self, name: str) -> bool:
        return name in self._programs
