"""Core machinery: packets, workflow interfaces, OCR, recovery, coordination.

This package holds the paper's primary contributions in
architecture-neutral form; :mod:`repro.engines` binds them to the three
control architectures.
"""

from repro.core.coordination import (
    ClearanceGrant,
    MutualExclusionAuthority,
    RelativeOrderAuthority,
    RollbackDependencyAuthority,
    mx_clearance_token,
    ro_clearance_token,
)
from repro.core.interfaces import INVOKED_BY, SUPPORTED_BY, WI, default_mechanism
from repro.core.ocr import (
    OCRPlan,
    compensation_set_order,
    compensation_set_order_from_events,
    plan_step_action,
)
from repro.core.packets import WorkflowPacket
from repro.core.programs import (
    ConstantProgram,
    ExecutionContext,
    FailEveryNth,
    FailWithProbability,
    FunctionProgram,
    NoopProgram,
    ProgramRegistry,
    StepProgram,
    StepResult,
)
from repro.core.recovery import (
    RecoveryTokens,
    abandoned_branch_compensation,
    invalidation_tokens,
    steps_to_invalidate,
)

__all__ = [
    "ClearanceGrant",
    "ConstantProgram",
    "ExecutionContext",
    "FailEveryNth",
    "FailWithProbability",
    "FunctionProgram",
    "INVOKED_BY",
    "MutualExclusionAuthority",
    "NoopProgram",
    "OCRPlan",
    "ProgramRegistry",
    "RecoveryTokens",
    "RelativeOrderAuthority",
    "RollbackDependencyAuthority",
    "SUPPORTED_BY",
    "StepProgram",
    "StepResult",
    "WI",
    "WorkflowPacket",
    "abandoned_branch_compensation",
    "compensation_set_order",
    "compensation_set_order_from_events",
    "default_mechanism",
    "invalidation_tokens",
    "mx_clearance_token",
    "plan_step_action",
    "ro_clearance_token",
    "steps_to_invalidate",
]
