"""Run-time cores for the coordinated-execution building blocks.

Section 3 of the paper introduces three building blocks — *relative
ordering*, *mutual exclusion* and *rollback dependency* — enforced at run
time through the ``AddRule()`` / ``AddEvent()`` / ``AddPrecondition()``
primitives.  In centralized control the enforcement state lives inside the
engine; in distributed control it lives at a deterministic *authority*
agent ("the first pair of conflicting steps is established by the agents
via the AddRule() workflow interface", Figure 4), and clearances flow back
to waiting agents as ``AddEvent()`` calls.

The classes here are transport-free state machines.  Engines wire them up:

* a **governed step** completion is *reported* to the authority;
* before executing a governed step, the executor adds a precondition event
  to the step's rule and *requests clearance*; the authority grants it
  immediately or when the blocking condition clears;
* instance abort/withdrawal releases whatever the instance held.

Conflict binding follows :mod:`repro.model.coordination_spec`: two
instances conflict when their ``conflict_key`` data item values are equal
(or always, when the spec has no key).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Hashable

from repro.errors import CoordinationError
from repro.model.coordination_spec import (
    MutualExclusionSpec,
    RelativeOrderSpec,
    RollbackDependencySpec,
)
from repro.rules.events import external_event

__all__ = [
    "MutualExclusionAuthority",
    "RelativeOrderAuthority",
    "RollbackDependencyAuthority",
    "mx_clearance_token",
    "ro_clearance_token",
]


def ro_clearance_token(spec_name: str, pair_index: int, instance_id: str) -> str:
    """Precondition event granting instance ``instance_id`` pair ``pair_index``."""
    return external_event(f"RO.{spec_name}.{pair_index}.{instance_id}")


def mx_clearance_token(spec_name: str, instance_id: str) -> str:
    """Precondition event granting the mutual-exclusion region."""
    return external_event(f"MX.{spec_name}.{instance_id}")


def _conflicts(key_a: Hashable | None, key_b: Hashable | None) -> bool:
    """Key-based conflict binding; a ``None`` key conflicts with everything."""
    if key_a is None or key_b is None:
        return True
    return key_a == key_b


@dataclass(frozen=True)
class _Registration:
    schema: str
    instance: str
    key: Hashable | None
    #: Ordering key: an auto-incremented int in single-authority mode, or an
    #: externally supplied totally-ordered key (e.g. ``(time, instance)``)
    #: in replicated mode so every replica derives the same leading/lagging
    #: relation.
    seq: Any


@dataclass(frozen=True)
class ClearanceGrant:
    """A clearance the transport layer must now deliver."""

    schema: str
    instance: str
    pair_index: int
    token: str


class RelativeOrderAuthority:
    """Serialization point for one :class:`RelativeOrderSpec`.

    Protocol (mirrors the paper's Figure 4 exchange):

    1. When an instance completes its *first* governed pair step, the
       executing agent reports it (:meth:`report_completion` with pair
       index 0).  Registration order establishes leading/lagging between
       conflicting instances: earlier registrant leads.
    2. Before executing pair step ``k >= 1``, the executor requests
       clearance.  It is granted once every conflicting *leader* has
       completed its own pair-``k`` step.
    3. Completions of pair ``k`` steps are reported; the authority returns
       the clearances that become grantable.
    """

    def __init__(self, spec: RelativeOrderSpec):
        self.spec = spec
        self._seq = 0
        self._registrations: dict[str, _Registration] = {}
        self._completions: set[tuple[str, int]] = set()
        self._pending: list[ClearanceGrant] = []

    # -- spec geometry ------------------------------------------------------------

    def pair_index(self, schema: str, step: str) -> int | None:
        """Index of ``step`` within the spec's governed pairs (None if not
        governed for that schema)."""
        for side_schema, steps in (
            (self.spec.schema_a, self.spec.steps_a),
            (self.spec.schema_b, self.spec.steps_b),
        ):
            if schema == side_schema and step in steps:
                return steps.index(step)
        return None

    # -- protocol ------------------------------------------------------------------

    def _register(
        self,
        schema: str,
        instance: str,
        key: Hashable | None,
        order_key: Any = None,
    ) -> None:
        if instance in self._registrations:
            return
        if order_key is None:
            self._seq += 1
            order_key = self._seq
        self._registrations[instance] = _Registration(schema, instance, key, order_key)

    def leaders_of(self, schema: str, instance: str) -> list[_Registration]:
        """Conflicting instances registered before ``instance``."""
        mine = self._registrations.get(instance)
        if mine is None:
            raise CoordinationError(
                f"instance {instance!r} requested ordering before registering "
                f"its first governed step under spec {self.spec.name!r}"
            )
        leaders = []
        for other in self._registrations.values():
            if other.instance == instance:
                continue
            if other.seq >= mine.seq:
                continue
            if self.spec.schema_a != self.spec.schema_b and other.schema == schema:
                continue  # ordering binds instances across the two schemas
            if _conflicts(other.key, mine.key):
                leaders.append(other)
        return sorted(leaders, key=lambda r: r.seq)

    def report_completion(
        self,
        schema: str,
        instance: str,
        pair_index: int,
        key: Hashable | None,
        order_key: Any = None,
    ) -> list[ClearanceGrant]:
        """Record a governed-step completion; returns newly-grantable
        clearances (including, possibly, ones for other instances)."""
        if pair_index == 0:
            self._register(schema, instance, key, order_key)
        self._completions.add((instance, pair_index))
        return self._drain_grantable()

    def request_clearance(
        self, schema: str, instance: str, pair_index: int, key: Hashable | None
    ) -> ClearanceGrant | None:
        """Ask to execute pair step ``pair_index``; returns the grant if it
        can proceed now, otherwise records it as pending."""
        if pair_index == 0:
            # First pair executes freely; order is established by its completion.
            return ClearanceGrant(
                schema, instance, pair_index, ro_clearance_token(self.spec.name, 0, instance)
            )
        grant = ClearanceGrant(
            schema,
            instance,
            pair_index,
            ro_clearance_token(self.spec.name, pair_index, instance),
        )
        if self._cleared(schema, instance, pair_index):
            return grant
        self._pending.append(grant)
        return None

    def withdraw(self, instance: str) -> list[ClearanceGrant]:
        """Remove an aborted instance; may unblock lagging instances."""
        self._registrations.pop(instance, None)
        self._completions = {c for c in self._completions if c[0] != instance}
        self._pending = [g for g in self._pending if g.instance != instance]
        return self._drain_grantable()

    # -- internals ------------------------------------------------------------------------

    def _cleared(self, schema: str, instance: str, pair_index: int) -> bool:
        return all(
            (leader.instance, pair_index) in self._completions
            for leader in self.leaders_of(schema, instance)
        )

    def _drain_grantable(self) -> list[ClearanceGrant]:
        granted, still_pending = [], []
        for grant in self._pending:
            if self._cleared(grant.schema, grant.instance, grant.pair_index):
                granted.append(grant)
            else:
                still_pending.append(grant)
        self._pending = still_pending
        return granted

    # -- introspection ----------------------------------------------------------------------

    def is_leading(self, instance: str, other: str) -> bool | None:
        """True if ``instance`` leads ``other`` (None when undetermined)."""
        a = self._registrations.get(instance)
        b = self._registrations.get(other)
        if a is None or b is None:
            return None
        return a.seq < b.seq

    def established_pairs(self) -> list[tuple[str, str]]:
        """All (leading, lagging) conflicting instance pairs so far."""
        regs = sorted(self._registrations.values(), key=lambda r: r.seq)
        pairs = []
        for i, lead in enumerate(regs):
            for lag in regs[i + 1 :]:
                cross = self.spec.schema_a == self.spec.schema_b or lead.schema != lag.schema
                if cross and _conflicts(lead.key, lag.key):
                    pairs.append((lead.instance, lag.instance))
        return pairs


class MutualExclusionAuthority:
    """FIFO region lock manager for one :class:`MutualExclusionSpec`."""

    def __init__(self, spec: MutualExclusionSpec):
        self.spec = spec
        self._holders: dict[Hashable, tuple[str, str]] = {}
        self._queues: dict[Hashable, deque[tuple[str, str]]] = {}

    @staticmethod
    def _lock_key(key: Hashable | None) -> Hashable:
        return key if key is not None else "__ANY__"

    def acquire(self, schema: str, instance: str, key: Hashable | None) -> bool:
        """Request the region lock; True when granted immediately.

        Re-acquisition by the current holder (re-execution after rollback)
        is granted idempotently.
        """
        lock = self._lock_key(key)
        holder = self._holders.get(lock)
        if holder is None:
            self._holders[lock] = (schema, instance)
            return True
        if holder == (schema, instance):
            return True
        queue = self._queues.setdefault(lock, deque())
        if (schema, instance) not in queue:
            queue.append((schema, instance))
        return False

    def release(self, schema: str, instance: str, key: Hashable | None) -> tuple[str, str] | None:
        """Release the lock; returns the next grantee, if any.

        Releasing a lock one doesn't hold (e.g. a rolled back region that
        never acquired it) silently drops any queued request instead.
        """
        lock = self._lock_key(key)
        if self._holders.get(lock) != (schema, instance):
            queue = self._queues.get(lock)
            if queue and (schema, instance) in queue:
                queue.remove((schema, instance))
            return None
        queue = self._queues.get(lock)
        if queue:
            grantee = queue.popleft()
            self._holders[lock] = grantee
            return grantee
        del self._holders[lock]
        return None

    def holder(self, key: Hashable | None) -> tuple[str, str] | None:
        return self._holders.get(self._lock_key(key))

    def queue_length(self, key: Hashable | None) -> int:
        return len(self._queues.get(self._lock_key(key), ()))


class RollbackDependencyAuthority:
    """Tracks which instances must roll back when a trigger fires."""

    def __init__(self, spec: RollbackDependencySpec):
        self.spec = spec
        self._targets: dict[str, Hashable | None] = {}

    def report_target_executed(self, instance: str, key: Hashable | None) -> None:
        """Instance of ``schema_b`` completed ``rollback_to_b``."""
        self._targets[instance] = key

    def withdraw(self, instance: str) -> None:
        self._targets.pop(instance, None)

    def dependents_of(self, trigger_instance: str, key: Hashable | None) -> list[str]:
        """Conflicting instances to roll back when the trigger fires."""
        return sorted(
            inst
            for inst, inst_key in self._targets.items()
            if inst != trigger_instance and _conflicts(inst_key, key)
        )
