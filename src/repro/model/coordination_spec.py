"""Coordinated-execution building blocks (inter-workflow requirements).

Section 3 of the paper identifies "high level building blocks ... that
express mutual-exclusion and complex ordering requirements across workflow
steps, and rollback dependency across workflow instances".  A spec relates
*two schemas*; at run time it binds pairs of concurrent *instances* that
conflict.

Conflict binding
----------------
The WFMS treats steps as black boxes, so whether two instances actually
conflict (e.g. two orders for the same part) is declared, not inferred.
``conflict_key`` names a data item; two instances conflict when the item
has equal values in both (the order-processing motivation: same part
number).  ``conflict_key=None`` means every instance pair of the two
schemas conflicts — convenient for tests and worst-case benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CoordinationError

__all__ = [
    "CoordinationSpec",
    "MutualExclusionSpec",
    "RelativeOrderSpec",
    "RollbackDependencySpec",
]


@dataclass(frozen=True)
class CoordinationSpec:
    """Base class for the three building blocks.

    ``schema_a``/``schema_b`` name the two related workflow schemas (they
    may be the same schema for intra-class coordination, e.g. ordering all
    order-processing instances).
    """

    name: str
    schema_a: str
    schema_b: str
    conflict_key: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CoordinationError("coordination spec needs a name")

    def schemas(self) -> tuple[str, str]:
        return (self.schema_a, self.schema_b)

    def involves(self, schema: str) -> bool:
        return schema in (self.schema_a, self.schema_b)


@dataclass(frozen=True)
class RelativeOrderSpec(CoordinationSpec):
    """Relative ordering of conflicting step pairs (paper Figure 2).

    ``steps_a[i]`` conflicts with ``steps_b[i]``; whichever instance
    executes the *first* pair's step first becomes the **leading**
    workflow, and every subsequent pair must then execute in the same
    relative order ("if S12 executes before S23 then S14 has to execute
    before S25").
    """

    steps_a: tuple[str, ...] = ()
    steps_b: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.steps_a) != len(self.steps_b):
            raise CoordinationError(
                f"relative order {self.name!r}: step lists must pair up "
                f"({len(self.steps_a)} vs {len(self.steps_b)})"
            )
        if not self.steps_a:
            raise CoordinationError(f"relative order {self.name!r} has no step pairs")

    @property
    def pairs(self) -> tuple[tuple[str, str], ...]:
        return tuple(zip(self.steps_a, self.steps_b))

    def ordered_steps(self, schema: str) -> tuple[str, ...]:
        """The steps of ``schema`` governed by this spec."""
        if schema == self.schema_a:
            return self.steps_a
        if schema == self.schema_b:
            return self.steps_b
        raise CoordinationError(f"schema {schema!r} not part of spec {self.name!r}")


@dataclass(frozen=True)
class MutualExclusionSpec(CoordinationSpec):
    """Step regions of conflicting instances must not interleave.

    ``region_a``/``region_b`` are ``(first_step, last_step)``: the lock is
    acquired before ``first_step`` starts and released after ``last_step``
    completes (or after the region is rolled back/compensated).
    """

    region_a: tuple[str, str] = ("", "")
    region_b: tuple[str, str] = ("", "")

    def __post_init__(self) -> None:
        super().__post_init__()
        for label, region in (("region_a", self.region_a), ("region_b", self.region_b)):
            if len(region) != 2 or not region[0] or not region[1]:
                raise CoordinationError(
                    f"mutual exclusion {self.name!r}: {label} must be (first, last)"
                )

    def region_of(self, schema: str) -> tuple[str, str]:
        if schema == self.schema_a:
            return self.region_a
        if schema == self.schema_b:
            return self.region_b
        raise CoordinationError(f"schema {schema!r} not part of spec {self.name!r}")


@dataclass(frozen=True)
class RollbackDependencySpec(CoordinationSpec):
    """Rollback in one instance forces a rollback in conflicting instances.

    When an instance of ``schema_a`` rolls back to (or past)
    ``trigger_step_a``, every conflicting instance of ``schema_b`` that has
    started ``rollback_to_b`` is rolled back to ``rollback_to_b``.
    """

    trigger_step_a: str = ""
    rollback_to_b: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.trigger_step_a or not self.rollback_to_b:
            raise CoordinationError(
                f"rollback dependency {self.name!r} needs trigger_step_a and rollback_to_b"
            )
