"""Control-flow graph analysis over workflow schemas.

Shared by schema validation and compilation.  All analyses operate on the
*forward* arcs (loop back-arcs are handled separately because the forward
graph must be acyclic for topological reasoning).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

from repro.errors import SchemaError
from repro.model.schema import ControlArc, WorkflowSchema

__all__ = ["BranchInfo", "SchemaGraph", "SplitKind"]


class SplitKind(enum.Enum):
    """Classification of a step's outgoing forward arcs."""

    NONE = "none"  # zero or one outgoing arc
    PARALLEL = "parallel"  # several unconditional arcs (AND-split)
    XOR = "xor"  # conditional arcs (+ optional else) — if-then-else


@dataclass(frozen=True)
class BranchInfo:
    """One branch of an XOR split."""

    split: str
    arc: ControlArc
    #: Steps reachable only through this branch (what CompensateThread
    #: must undo when re-execution abandons the branch).
    exclusive_members: frozenset[str]


class SchemaGraph:
    """Derived adjacency/reachability structure for one schema."""

    def __init__(self, schema: WorkflowSchema):
        self.schema = schema
        steps = tuple(schema.steps)
        self._succs: dict[str, list[str]] = {s: [] for s in steps}
        self._preds: dict[str, list[str]] = {s: [] for s in steps}
        for arc in schema.forward_arcs():
            if arc.src not in schema.steps or arc.dst not in schema.steps:
                raise SchemaError(
                    f"arc {arc.src}->{arc.dst} references an undefined step"
                )
            self._succs[arc.src].append(arc.dst)
            self._preds[arc.dst].append(arc.src)

    # -- basic structure ---------------------------------------------------------

    def successors(self, step: str) -> tuple[str, ...]:
        return tuple(self._succs[step])

    def predecessors(self, step: str) -> tuple[str, ...]:
        return tuple(self._preds[step])

    @cached_property
    def start_steps(self) -> tuple[str, ...]:
        return tuple(s for s in self.schema.steps if not self._preds[s])

    @cached_property
    def terminal_steps(self) -> tuple[str, ...]:
        return tuple(s for s in self.schema.steps if not self._succs[s])

    @cached_property
    def topo_order(self) -> tuple[str, ...]:
        """Topological order of the forward graph; raises on a cycle."""
        in_degree = {s: len(self._preds[s]) for s in self.schema.steps}
        frontier = [s for s in self.schema.steps if in_degree[s] == 0]
        order: list[str] = []
        while frontier:
            step = frontier.pop(0)
            order.append(step)
            for succ in self._succs[step]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    frontier.append(succ)
        if len(order) != len(self.schema.steps):
            cyclic = sorted(s for s, d in in_degree.items() if d > 0)
            raise SchemaError(
                f"workflow {self.schema.name!r}: forward arcs contain a cycle "
                f"involving {cyclic} (mark back-arcs with loop=True)"
            )
        return tuple(order)

    @cached_property
    def _topo_index(self) -> dict[str, int]:
        return {step: i for i, step in enumerate(self.topo_order)}

    def topo_index(self, step: str) -> int:
        return self._topo_index[step]

    # -- reachability --------------------------------------------------------------

    @cached_property
    def descendants_map(self) -> dict[str, frozenset[str]]:
        """step -> all strict descendants in the forward graph."""
        result: dict[str, frozenset[str]] = {}
        for step in reversed(self.topo_order):
            acc: set[str] = set()
            for succ in self._succs[step]:
                acc.add(succ)
                acc.update(result[succ])
            result[step] = frozenset(acc)
        return result

    @cached_property
    def ancestors_map(self) -> dict[str, frozenset[str]]:
        """step -> all strict ancestors in the forward graph."""
        result: dict[str, frozenset[str]] = {}
        for step in self.topo_order:
            acc: set[str] = set()
            for pred in self._preds[step]:
                acc.add(pred)
                acc.update(result[pred])
            result[step] = frozenset(acc)
        return result

    def descendants(self, step: str) -> frozenset[str]:
        return self.descendants_map[step]

    def ancestors(self, step: str) -> frozenset[str]:
        return self.ancestors_map[step]

    def invalidation_set(self, origin: str) -> frozenset[str]:
        """Steps whose effects a rollback to ``origin`` invalidates.

        Per the paper, a HaltThread/rollback "invalidates the step.done
        events corresponding to steps that are successors of the
        OriginStep"; the origin itself re-executes, so it is included.
        """
        return self.descendants_map[origin] | {origin}

    # -- splits and branches ----------------------------------------------------------

    def split_kind(self, step: str) -> SplitKind:
        arcs = self.schema.out_arcs(step)
        if len(arcs) <= 1:
            return SplitKind.NONE
        if any(arc.condition is not None or arc.is_else for arc in arcs):
            return SplitKind.XOR
        return SplitKind.PARALLEL

    @cached_property
    def xor_splits(self) -> dict[str, tuple[BranchInfo, ...]]:
        """All XOR splits with per-branch exclusive-member sets."""
        splits: dict[str, tuple[BranchInfo, ...]] = {}
        for step in self.schema.steps:
            if self.split_kind(step) is not SplitKind.XOR:
                continue
            arcs = self.schema.out_arcs(step)
            reach: dict[ControlArc, frozenset[str]] = {
                arc: self.descendants_map[arc.dst] | {arc.dst} for arc in arcs
            }
            branches = []
            for arc in arcs:
                others: set[str] = set()
                for other_arc in arcs:
                    if other_arc is not arc:
                        others.update(reach[other_arc])
                branches.append(
                    BranchInfo(
                        split=step,
                        arc=arc,
                        exclusive_members=frozenset(reach[arc] - others),
                    )
                )
            splits[step] = tuple(branches)
        return splits

    @cached_property
    def parallel_splits(self) -> frozenset[str]:
        return frozenset(
            s for s in self.schema.steps if self.split_kind(s) is SplitKind.PARALLEL
        )

    def are_exclusive(self, a: str, b: str) -> bool:
        """Whether two steps lie on different branches of some XOR split
        (and therefore can never both execute in one forward pass)."""
        if a == b:
            return False
        for branches in self.xor_splits.values():
            branch_of: dict[str, int] = {}
            for idx, info in enumerate(branches):
                for member in info.exclusive_members:
                    branch_of[member] = idx
            if a in branch_of and b in branch_of and branch_of[a] != branch_of[b]:
                return True
        return False

    # -- loops -----------------------------------------------------------------------

    def loop_body(self, arc: ControlArc) -> frozenset[str]:
        """Steps re-executed when loop arc ``src -> dst`` is taken.

        The body is every step lying on a forward path from the loop
        target to the loop source, inclusive.
        """
        if not arc.loop:
            raise SchemaError(f"{arc.describe()} is not a loop arc")
        src, dst = arc.src, arc.dst
        if dst != src and dst not in self.ancestors_map[src]:
            raise SchemaError(
                f"loop arc {src}->{dst}: target must be an ancestor of the source"
            )
        on_path = (self.descendants_map[dst] | {dst}) & (self.ancestors_map[src] | {src})
        return frozenset(on_path)
