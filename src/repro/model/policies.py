"""Compensation/re-execution (CR) policies for the OCR scheme.

The paper's *opportunistic compensation and re-execution* (OCR) strategy
lets a workflow designer customize, per step, what happens when a rolled
back workflow re-reaches a step that was already executed:

* **reuse** — "results from the previous execution of the steps can be
  re-used rather than compensating and re-executing the step again";
* **partial compensation + incremental re-execution** — "in cases where
  the previous execution of the step is useful";
* **complete compensation + complete re-execution** — "if the previous
  execution of the step is useless in the current context".

A :class:`CRPolicy` encodes the paper's "compensation and re-execution
condition": it inspects the previous execution record and the new inputs
and returns a :class:`CRDecision`.  Policies are attached to steps in the
workflow schema and consulted by :mod:`repro.core.ocr`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping

from repro.rules.conditions import Condition

__all__ = [
    "CRDecision",
    "CRPolicy",
    "AlwaysReexecute",
    "ReuseIfInputsUnchanged",
    "IncrementalIfInputsChanged",
    "ConditionPolicy",
    "DEFAULT_POLICY",
]


class CRDecision(enum.Enum):
    """Outcome of evaluating a step's compensation/re-execution condition."""

    REUSE = "reuse"
    #: Partial compensation followed by incremental re-execution.
    INCREMENTAL = "incremental"
    #: Complete compensation followed by complete re-execution.
    COMPLETE = "complete"


class CRPolicy:
    """Base class: decide how a previously-executed step is re-executed."""

    #: Fraction of the full execution/compensation cost paid on the
    #: INCREMENTAL path.  Subclasses may override per instance.
    incremental_fraction: float = 0.3

    def decide(
        self,
        prev_inputs: Mapping[str, Any],
        new_inputs: Mapping[str, Any],
        prev_outputs: Mapping[str, Any],
    ) -> CRDecision:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AlwaysReexecute(CRPolicy):
    """Saga-like baseline: always fully compensate and fully re-execute.

    This models the "extended transaction model (Sagas) based approach"
    that the paper calls "an overkill in several practical scenarios"; the
    OCR benchmark uses it as the comparison baseline.
    """

    def decide(self, prev_inputs, new_inputs, prev_outputs) -> CRDecision:
        return CRDecision.COMPLETE


class ReuseIfInputsUnchanged(CRPolicy):
    """Reuse previous results when the step would see identical inputs.

    This is the library default: a deterministic step fed the same inputs
    "does not produce any new results", so the previous results suffice.
    """

    def decide(self, prev_inputs, new_inputs, prev_outputs) -> CRDecision:
        if dict(prev_inputs) == dict(new_inputs):
            return CRDecision.REUSE
        return CRDecision.COMPLETE


class IncrementalIfInputsChanged(CRPolicy):
    """Reuse on identical inputs; otherwise repair incrementally.

    Models steps where prior work remains mostly valid under new inputs
    (e.g. a partially-picked inventory order): changed inputs trigger a
    partial compensation and an incremental re-execution at
    ``incremental_fraction`` of the full cost.
    """

    def __init__(self, incremental_fraction: float = 0.3):
        if not 0.0 < incremental_fraction <= 1.0:
            raise ValueError("incremental_fraction must be in (0, 1]")
        self.incremental_fraction = incremental_fraction

    def decide(self, prev_inputs, new_inputs, prev_outputs) -> CRDecision:
        if dict(prev_inputs) == dict(new_inputs):
            return CRDecision.REUSE
        return CRDecision.INCREMENTAL


@dataclass
class ConditionPolicy(CRPolicy):
    """Designer-supplied CR condition written in the condition language.

    ``reuse_when`` and ``incremental_when`` are evaluated over an
    environment exposing the previous inputs as ``prev.<name>``, the new
    inputs as ``new.<name>`` and previous outputs as ``out.<name>``.  The
    first matching condition wins; the fallback is COMPLETE.
    """

    reuse_when: str | None = None
    incremental_when: str | None = None
    incremental_fraction: float = 0.3

    def __post_init__(self) -> None:
        self._reuse = Condition(self.reuse_when) if self.reuse_when else None
        self._incremental = (
            Condition(self.incremental_when) if self.incremental_when else None
        )

    @staticmethod
    def _environment(prev_inputs, new_inputs, prev_outputs) -> dict[str, Any]:
        env: dict[str, Any] = {}
        for ref, value in prev_inputs.items():
            env[f"prev.{ref}"] = value
        for ref, value in new_inputs.items():
            env[f"new.{ref}"] = value
        for ref, value in prev_outputs.items():
            env[f"out.{ref}"] = value
        return env

    def decide(self, prev_inputs, new_inputs, prev_outputs) -> CRDecision:
        env = self._environment(prev_inputs, new_inputs, prev_outputs)
        if self._reuse is not None and self._reuse.evaluate(env):
            return CRDecision.REUSE
        if self._incremental is not None and self._incremental.evaluate(env):
            return CRDecision.INCREMENTAL
        return CRDecision.COMPLETE


#: Library-wide default CR policy.
DEFAULT_POLICY = ReuseIfInputsUnchanged()
