"""Workflow schema model: steps, arcs, builder, validation, compiler.

Public surface::

    from repro.model import (
        SchemaBuilder, WorkflowSchema, StepDef, ControlArc, StepType,
        JoinKind, compile_schema, CompiledSchema, validate_schema,
        RelativeOrderSpec, MutualExclusionSpec, RollbackDependencySpec,
        CRDecision, CRPolicy, ReuseIfInputsUnchanged, AlwaysReexecute,
        IncrementalIfInputsChanged, ConditionPolicy,
    )
"""

from repro.model.builder import SchemaBuilder
from repro.model.compiler import CompiledSchema, RuleTemplate, compile_schema
from repro.model.export import schema_summary, to_dot
from repro.model.coordination_spec import (
    CoordinationSpec,
    MutualExclusionSpec,
    RelativeOrderSpec,
    RollbackDependencySpec,
)
from repro.model.graph import BranchInfo, SchemaGraph, SplitKind
from repro.model.policies import (
    DEFAULT_POLICY,
    AlwaysReexecute,
    ConditionPolicy,
    CRDecision,
    CRPolicy,
    IncrementalIfInputsChanged,
    ReuseIfInputsUnchanged,
)
from repro.model.schema import (
    ControlArc,
    JoinKind,
    StepDef,
    StepType,
    WorkflowSchema,
    split_ref,
    step_output_ref,
    workflow_input_ref,
)
from repro.model.validation import validate_schema

__all__ = [
    "AlwaysReexecute",
    "BranchInfo",
    "CompiledSchema",
    "ConditionPolicy",
    "ControlArc",
    "CoordinationSpec",
    "CRDecision",
    "CRPolicy",
    "DEFAULT_POLICY",
    "IncrementalIfInputsChanged",
    "JoinKind",
    "MutualExclusionSpec",
    "RelativeOrderSpec",
    "ReuseIfInputsUnchanged",
    "RollbackDependencySpec",
    "RuleTemplate",
    "SchemaBuilder",
    "SchemaGraph",
    "SplitKind",
    "StepDef",
    "StepType",
    "WorkflowSchema",
    "compile_schema",
    "schema_summary",
    "split_ref",
    "to_dot",
    "step_output_ref",
    "validate_schema",
    "workflow_input_ref",
]
