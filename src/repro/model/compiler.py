"""Schema compilation: from workflow graphs to ECA rule templates.

"Requirements expressed in LAWS are converted into rules which are tuples
containing an event, condition and action part" (paper, Section 1).  The
compiler derives, for every step, the rule(s) that trigger it:

* the start step fires on ``workflow.start``;
* a sequential step fires on its predecessor's ``step.done`` — plus the
  ``step.done`` events of every step it consumes data from ("the rule may
  require other step.done events depending on which of the steps it gets
  its input data from");
* an AND-join fires when *all* incoming branches are done;
* an XOR-join gets one rule per incoming arc;
* if-then-else branch rules get mutually-exclusivized conditions so that
  "only one of the rules will fire based on which branching condition
  evaluates to true";
* loop-back arcs compile to a ``loop`` rule guarded by the continue
  condition, and the forward continuation is guarded by its negation.

The compiler also precomputes the navigation metadata every control
architecture needs: terminal steps, invalidation sets for rollback, XOR
branch membership for CompensateThread, and *terminal profiles* used by
the distributed commit protocol to know which terminal-step completion
messages to expect given the branch decisions observed so far.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable

from repro.errors import CompilationError
from repro.model.graph import BranchInfo, SchemaGraph
from repro.model.schema import JoinKind, WorkflowSchema
from repro.model.validation import validate_schema
from repro.rules.conditions import Condition
from repro.rules.events import WF_START, step_done

__all__ = ["CompiledSchema", "RuleTemplate", "compile_schema"]


@dataclass(frozen=True)
class RuleTemplate:
    """An architecture-neutral ECA rule derived from the schema.

    ``kind`` is ``"execute"`` (fire the step) or ``"loop"`` (re-enter the
    loop body at ``loop_target``).  ``events`` are the tokens that must all
    be valid; ``condition_text`` (if any) must evaluate true over the data
    table at firing time.
    """

    rule_id: str
    kind: str
    step: str
    events: frozenset[str]
    condition_text: str | None = None
    loop_target: str | None = None
    loop_body: frozenset[str] = frozenset()


def _negate(text: str) -> str:
    return f"not ({text})"


def _conjoin(parts: list[str]) -> str | None:
    parts = [p for p in parts if p]
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return " and ".join(f"({p})" for p in parts)


def _exclusivized_conditions(branches: tuple[BranchInfo, ...]) -> dict[str, str]:
    """Per-branch (keyed by branch-first step) mutually exclusive conditions.

    Arc ``i``'s effective condition is ``c_i and not c_1 ... and not
    c_{i-1}``; the else-arc's is the negation of all conditions.  This
    guarantees exactly one branch rule can fire regardless of how the
    designer wrote the raw conditions.
    """
    out: dict[str, str] = {}
    prior: list[str] = []
    conditional = [b for b in branches if b.arc.condition is not None]
    elses = [b for b in branches if b.arc.is_else]
    for info in conditional:
        assert info.arc.condition is not None
        effective = _conjoin([info.arc.condition] + [_negate(c) for c in prior])
        assert effective is not None
        out[info.arc.dst] = effective
        prior.append(info.arc.condition)
    for info in elses:
        if not prior:
            raise CompilationError(
                f"else-arc out of {info.split!r} without any conditional arcs"
            )
        out[info.arc.dst] = _conjoin([_negate(c) for c in prior]) or "True"
    return out


@dataclass
class CompiledSchema:
    """A validated schema plus everything the run-time needs to enact it."""

    schema: WorkflowSchema
    graph: SchemaGraph
    start_step: str
    terminal_steps: tuple[str, ...]
    rule_templates: tuple[RuleTemplate, ...]
    conditions: dict[str, Condition]
    #: terminal step -> {xor split step -> branch-first step} decisions
    #: required for that terminal to be reachable.
    terminal_profiles: dict[str, dict[str, str]]

    # -- navigation helpers --------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @cached_property
    def templates_by_step(self) -> dict[str, tuple[RuleTemplate, ...]]:
        by_step: dict[str, list[RuleTemplate]] = {}
        for template in self.rule_templates:
            by_step.setdefault(template.step, []).append(template)
        return {step: tuple(templates) for step, templates in by_step.items()}

    def templates_for(self, step: str) -> tuple[RuleTemplate, ...]:
        return self.templates_by_step.get(step, ())

    def condition_for(self, rule_id: str) -> Condition | None:
        return self.conditions.get(rule_id)

    def invalidation_set(self, origin: str) -> frozenset[str]:
        """Steps whose ``step.done`` a rollback to ``origin`` invalidates."""
        return self.graph.invalidation_set(origin)

    def affected_terminals(self, origin: str) -> frozenset[str]:
        return frozenset(self.terminal_steps) & self.invalidation_set(origin)

    def affected_splits(self, origin: str) -> frozenset[str]:
        return frozenset(self.graph.xor_splits) & self.invalidation_set(origin)

    def xor_branches(self, split: str) -> tuple[BranchInfo, ...]:
        return self.graph.xor_splits[split]

    def abandoned_branch_members(self, split: str, taken_first: str) -> frozenset[str]:
        """Exclusive members of every branch of ``split`` other than the one
        whose first step is ``taken_first`` (CompensateThread targets)."""
        members: set[str] = set()
        for info in self.graph.xor_splits[split]:
            if info.arc.dst != taken_first:
                members.update(info.exclusive_members)
        return frozenset(members)

    def profile_consistent(self, terminal: str, decisions: dict[str, str]) -> bool:
        """Is ``terminal`` still reachable given the observed XOR decisions?"""
        profile = self.terminal_profiles[terminal]
        for split, branch_first in profile.items():
            chosen = decisions.get(split)
            if chosen is not None and chosen != branch_first:
                return False
        return True

    def commit_ready(self, reported: Iterable[str]) -> bool:
        """Commit condition: every terminal step has either reported
        completion or is unreachable given the XOR decisions implied by the
        reported terminals.

        This is the coordination agent's test — "the coordination agent
        waits for the arrival of such messages from all the agents that are
        responsible for executing the final steps along all active paths".
        """
        reported_set = set(reported)
        if not reported_set:
            return False
        decisions: dict[str, str] = {}
        for terminal in reported_set:
            decisions.update(self.terminal_profiles[terminal])
        for terminal in self.terminal_steps:
            if terminal in reported_set:
                continue
            if self.profile_consistent(terminal, decisions):
                return False
        return True

    @cached_property
    def branch_first_map(self) -> dict[str, str]:
        """branch-first step -> its XOR split (for CompensateThread)."""
        mapping: dict[str, str] = {}
        for split, branches in self.graph.xor_splits.items():
            for info in branches:
                mapping[info.arc.dst] = split
        return mapping

    def loop_templates_for(self, step: str) -> tuple[RuleTemplate, ...]:
        return tuple(
            t for t in self.rule_templates if t.kind == "loop" and t.step == step
        )


def compile_schema(schema: WorkflowSchema) -> CompiledSchema:
    """Validate and compile a workflow schema."""
    graph = validate_schema(schema)
    templates: list[RuleTemplate] = []
    conditions: dict[str, Condition] = {}

    def register(template: RuleTemplate) -> None:
        templates.append(template)
        if template.condition_text is not None:
            conditions[template.rule_id] = Condition(template.condition_text)

    # Effective (mutually exclusivized) branch conditions per XOR split,
    # keyed (split, branch-first-step).
    branch_condition: dict[tuple[str, str], str] = {}
    for split, branches in graph.xor_splits.items():
        for first, text in _exclusivized_conditions(branches).items():
            branch_condition[(split, first)] = text

    # Loop continue-conditions by loop source, for guarding forward arcs.
    loop_conditions: dict[str, list[str]] = {}
    for arc in schema.loop_arcs():
        loop_conditions.setdefault(arc.src, []).append(arc.condition or "True")

    start = graph.start_steps[0]

    for step_name, definition in schema.steps.items():
        producers = sorted(definition.input_producer_steps())
        producer_events = {step_done(p) for p in producers}
        in_arcs = schema.in_arcs(step_name)

        if not in_arcs:
            register(
                RuleTemplate(
                    rule_id=f"r:{step_name}:start",
                    kind="execute",
                    step=step_name,
                    events=frozenset({WF_START} | producer_events),
                )
            )
            continue

        if definition.join is JoinKind.AND or (
            definition.join is JoinKind.NONE and len(in_arcs) == 1
        ):
            events = {step_done(arc.src) for arc in in_arcs} | producer_events
            guards: list[str] = []
            for arc in in_arcs:
                key = (arc.src, step_name)
                if key in branch_condition:
                    guards.append(branch_condition[key])
                # Forward continuation out of a loop source is guarded by
                # the negated continue-condition(s).
                for loop_text in loop_conditions.get(arc.src, ()):
                    guards.append(_negate(loop_text))
            register(
                RuleTemplate(
                    rule_id=f"r:{step_name}:0",
                    kind="execute",
                    step=step_name,
                    events=frozenset(events),
                    condition_text=_conjoin(guards),
                )
            )
        else:  # XOR join: one rule per incoming arc.
            for idx, arc in enumerate(in_arcs):
                guards = []
                key = (arc.src, step_name)
                if key in branch_condition:
                    guards.append(branch_condition[key])
                for loop_text in loop_conditions.get(arc.src, ()):
                    guards.append(_negate(loop_text))
                register(
                    RuleTemplate(
                        rule_id=f"r:{step_name}:{idx}",
                        kind="execute",
                        step=step_name,
                        events=frozenset({step_done(arc.src)} | producer_events),
                        condition_text=_conjoin(guards),
                    )
                )

    for arc in schema.loop_arcs():
        body = graph.loop_body(arc)
        register(
            RuleTemplate(
                rule_id=f"loop:{arc.src}->{arc.dst}",
                kind="loop",
                step=arc.src,
                events=frozenset({step_done(arc.src)}),
                condition_text=arc.condition,
                loop_target=arc.dst,
                loop_body=body,
            )
        )

    terminal_profiles: dict[str, dict[str, str]] = {}
    for terminal in graph.terminal_steps:
        profile: dict[str, str] = {}
        for split, branches in graph.xor_splits.items():
            for info in branches:
                if terminal in info.exclusive_members:
                    profile[split] = info.arc.dst
        terminal_profiles[terminal] = profile

    return CompiledSchema(
        schema=schema,
        graph=graph,
        start_step=start,
        terminal_steps=graph.terminal_steps,
        rule_templates=tuple(templates),
        conditions=conditions,
        terminal_profiles=terminal_profiles,
    )
