"""Fluent construction of workflow schemas.

:class:`SchemaBuilder` is the primary public entry point for defining
workflows in code (the LAWS language in :mod:`repro.laws` compiles to
builder calls).  ``build()`` assembles an immutable
:class:`~repro.model.schema.WorkflowSchema` and runs full validation.

Example::

    from repro.model import SchemaBuilder

    b = SchemaBuilder("OrderProcessing", inputs=["qty", "part"])
    b.step("S1", program="check_stock", inputs=["WF.qty"], outputs=["avail"])
    b.step("S2", program="reserve", inputs=["S1.avail"], outputs=["rsv"])
    b.step("S3", program="expedite")
    b.step("S4", program="confirm", join="xor")
    b.arc("S1", "S2")
    b.branch("S2", [("S3", "S1.avail < 5")], otherwise="S4")
    b.arc("S3", "S4")
    b.rollback_point("S2", "S1")
    b.compensation_set("S1", "S2")
    schema = b.build()
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import SchemaError
from repro.model.policies import CRPolicy, DEFAULT_POLICY
from repro.model.schema import ControlArc, JoinKind, StepDef, StepType, WorkflowSchema
from repro.model.validation import validate_schema

__all__ = ["SchemaBuilder"]


def _as_join(value: JoinKind | str) -> JoinKind:
    if isinstance(value, JoinKind):
        return value
    try:
        return JoinKind(value)
    except ValueError:
        raise SchemaError(f"unknown join kind {value!r} (use 'and'/'xor'/'none')") from None


def _as_step_type(value: StepType | str) -> StepType:
    if isinstance(value, StepType):
        return value
    try:
        return StepType(value)
    except ValueError:
        raise SchemaError(f"unknown step type {value!r} (use 'query'/'update')") from None


class SchemaBuilder:
    """Accumulates steps/arcs/annotations and produces a validated schema."""

    def __init__(self, name: str, inputs: Sequence[str] = (), version: int = 1):
        self.name = name
        self.inputs = tuple(inputs)
        self.version = version
        self._steps: dict[str, StepDef] = {}
        self._arcs: list[ControlArc] = []
        self._compensation_sets: list[frozenset[str]] = []
        self._rollback_points: dict[str, str] = {}
        self._cr_policies: dict[str, CRPolicy] = {}
        self._abort_compensation: list[str] = []
        self._outputs: dict[str, str] = {}

    # -- steps -----------------------------------------------------------------

    def step(
        self,
        name: str,
        program: str = "noop",
        *,
        step_type: StepType | str = StepType.UPDATE,
        inputs: Sequence[str] = (),
        outputs: Sequence[str] = (),
        resources: Iterable[str] = (),
        cost: float = 1.0,
        compensable: bool = True,
        compensation_program: str | None = None,
        compensation_cost: float | None = None,
        join: JoinKind | str = JoinKind.NONE,
        subworkflow: str | None = None,
        cr_policy: CRPolicy | None = None,
    ) -> "SchemaBuilder":
        """Add one step definition.  Returns ``self`` for chaining."""
        if name in self._steps:
            raise SchemaError(f"duplicate step {name!r} in workflow {self.name!r}")
        self._steps[name] = StepDef(
            name=name,
            program=program,
            step_type=_as_step_type(step_type),
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            resources=frozenset(resources),
            cost=cost,
            compensable=compensable,
            compensation_program=compensation_program,
            compensation_cost=compensation_cost,
            join=_as_join(join),
            subworkflow=subworkflow,
        )
        if cr_policy is not None:
            self._cr_policies[name] = cr_policy
        return self

    # -- arcs ------------------------------------------------------------------

    def arc(self, src: str, dst: str, condition: str | None = None) -> "SchemaBuilder":
        """Add a (possibly conditional) forward control arc."""
        self._arcs.append(ControlArc(src, dst, condition=condition))
        return self

    def sequence(self, *steps: str) -> "SchemaBuilder":
        """Chain ``steps`` with unconditional arcs: S1 -> S2 -> ... -> Sn."""
        if len(steps) < 2:
            raise SchemaError("sequence() needs at least two steps")
        for src, dst in zip(steps, steps[1:]):
            self.arc(src, dst)
        return self

    def parallel(self, src: str, branches: Sequence[str]) -> "SchemaBuilder":
        """AND-split: unconditional arcs from ``src`` to each branch head."""
        if len(branches) < 2:
            raise SchemaError("parallel() needs at least two branch heads")
        for dst in branches:
            self.arc(src, dst)
        return self

    def branch(
        self,
        src: str,
        conditional: Sequence[tuple[str, str]],
        otherwise: str | None = None,
    ) -> "SchemaBuilder":
        """XOR-split: conditional arcs plus an optional else-arc.

        ``conditional`` is a sequence of ``(dst, condition)`` pairs,
        evaluated in order; ``otherwise`` is taken when none holds.
        """
        if not conditional:
            raise SchemaError("branch() needs at least one conditional arc")
        for dst, condition in conditional:
            if condition is None:
                raise SchemaError(
                    f"branch arc {src}->{dst} must carry a condition "
                    "(use `otherwise=` for the fallback)"
                )
            self._arcs.append(ControlArc(src, dst, condition=condition))
        if otherwise is not None:
            self._arcs.append(ControlArc(src, otherwise, is_else=True))
        return self

    def join(
        self, dst: str, sources: Sequence[str], kind: JoinKind | str = JoinKind.AND
    ) -> "SchemaBuilder":
        """Declare a confluence step fed by ``sources``.

        A convenience over separate :meth:`arc` calls; also (re)declares
        the step's join kind, so the step must already exist.
        """
        if dst not in self._steps:
            raise SchemaError(f"join target {dst!r} must be declared before join()")
        if len(sources) < 2:
            raise SchemaError("join() needs at least two sources")
        for src in sources:
            self.arc(src, dst)
        current = self._steps[dst]
        if current.join is JoinKind.NONE:
            self._steps[dst] = StepDef(
                **{**_stepdef_kwargs(current), "join": _as_join(kind)}
            )
        return self

    def loop(self, src: str, dst: str, while_condition: str) -> "SchemaBuilder":
        """Loop-back arc: when ``while_condition`` holds after ``src`` is
        done, control returns to ``dst`` and the loop body re-executes."""
        self._arcs.append(ControlArc(src, dst, condition=while_condition, loop=True))
        return self

    # -- failure-handling annotations -------------------------------------------

    def rollback_point(self, failed_step: str, origin: str) -> "SchemaBuilder":
        """On failure of ``failed_step``, roll back to ``origin`` and re-execute."""
        self._rollback_points[failed_step] = origin
        return self

    def compensation_set(self, *members: str) -> "SchemaBuilder":
        """Declare a compensation dependent set (reverse-order compensation)."""
        if len(members) < 2:
            raise SchemaError("a compensation dependent set needs at least two members")
        self._compensation_sets.append(frozenset(members))
        return self

    def cr_policy(self, step: str, policy: CRPolicy) -> "SchemaBuilder":
        """Attach a compensation/re-execution condition to a step."""
        self._cr_policies[step] = policy
        return self

    def abort_compensation(self, *steps: str) -> "SchemaBuilder":
        """Steps to compensate on a user-initiated workflow abort."""
        self._abort_compensation.extend(steps)
        return self

    def output(self, name: str, ref: str) -> "SchemaBuilder":
        """Expose a data item as a workflow-level output."""
        self._outputs[name] = ref
        return self

    # -- assembly -----------------------------------------------------------------

    def build(self, validate: bool = True) -> WorkflowSchema:
        """Produce the immutable schema; runs full validation by default."""
        schema = WorkflowSchema(
            name=self.name,
            inputs=self.inputs,
            steps=dict(self._steps),
            arcs=tuple(self._arcs),
            compensation_sets=tuple(self._compensation_sets),
            rollback_points=dict(self._rollback_points),
            cr_policies={
                step: self._cr_policies.get(step, DEFAULT_POLICY) for step in self._steps
            },
            abort_compensation_steps=tuple(self._abort_compensation),
            outputs=dict(self._outputs),
            version=self.version,
        )
        if validate:
            validate_schema(schema)
        return schema


def _stepdef_kwargs(step: StepDef) -> dict:
    """Decompose a StepDef into constructor kwargs (for copy-with-change)."""
    return {
        "name": step.name,
        "program": step.program,
        "step_type": step.step_type,
        "inputs": step.inputs,
        "outputs": step.outputs,
        "resources": step.resources,
        "cost": step.cost,
        "compensable": step.compensable,
        "compensation_program": step.compensation_program,
        "compensation_cost": step.compensation_cost,
        "join": step.join,
        "subworkflow": step.subworkflow,
    }
