"""Full structural validation of workflow schemas.

``validate_schema`` collects *all* problems before raising, so a designer
sees every issue in one pass.  The checks encode the assumptions the rest
of the library (compiler, engines, recovery machinery) relies on:

* exactly one start step (the coordination agent of distributed control is
  "typically the agent responsible for executing the first step");
* the forward graph is acyclic, loops go to ancestors;
* split/join structure is consistent and joins are declared;
* data references resolve and never cross exclusive XOR branches;
* failure-handling annotations (rollback points, compensation sets, abort
  compensation lists) reference real steps with sane relationships.
"""

from __future__ import annotations

from repro.errors import ConditionError, ValidationError
from repro.model.graph import SchemaGraph
from repro.model.schema import JoinKind, WorkflowSchema, split_ref
from repro.rules.conditions import Condition

__all__ = ["validate_schema"]


def validate_schema(schema: WorkflowSchema) -> SchemaGraph:
    """Validate ``schema``; returns its :class:`SchemaGraph` on success.

    Raises :class:`~repro.errors.ValidationError` whose message lists every
    detected problem, one per line.
    """
    problems: list[str] = []
    graph = SchemaGraph(schema)

    _check_structure(schema, graph, problems)
    if not problems:
        # Reachability/branch analyses need an acyclic forward graph, so
        # they run only once the basic structure is sound.
        _check_splits_and_joins(schema, graph, problems)
        _check_data_flow(schema, graph, problems)
        _check_loops(schema, graph, problems)
        _check_failure_annotations(schema, graph, problems)
        _check_conditions(schema, problems)
        _check_outputs(schema, problems)

    if problems:
        details = "\n  - ".join(problems)
        raise ValidationError(
            f"workflow {schema.name!r} failed validation:\n  - {details}"
        )
    return graph


def _check_structure(schema: WorkflowSchema, graph: SchemaGraph, problems: list[str]) -> None:
    for arc in schema.arcs:
        if arc.src not in schema.steps:
            problems.append(f"{arc.describe()}: unknown source step")
        if arc.dst not in schema.steps:
            problems.append(f"{arc.describe()}: unknown destination step")
    seen: set[tuple[str, str, bool]] = set()
    for arc in schema.arcs:
        key = (arc.src, arc.dst, arc.loop)
        if key in seen:
            problems.append(f"duplicate arc {arc.src}->{arc.dst}")
        seen.add(key)
    if problems:
        return
    try:
        graph.topo_order
    except Exception as exc:  # SchemaError carries the cycle detail
        problems.append(str(exc))
        return
    starts = graph.start_steps
    if len(starts) != 1:
        problems.append(
            f"expected exactly one start step, found {list(starts) or 'none'}"
        )


def _check_splits_and_joins(
    schema: WorkflowSchema, graph: SchemaGraph, problems: list[str]
) -> None:
    for step in schema.steps:
        arcs = schema.out_arcs(step)
        if len(arcs) <= 1:
            continue
        conditional = [a for a in arcs if a.condition is not None]
        elses = [a for a in arcs if a.is_else]
        plain = [a for a in arcs if a.condition is None and not a.is_else]
        if conditional:
            if plain:
                problems.append(
                    f"split at {step!r} mixes conditional and unconditional arcs"
                )
            if len(elses) > 1:
                problems.append(f"split at {step!r} has multiple else-arcs")
        elif elses:
            problems.append(f"split at {step!r} has an else-arc but no conditions")

    for step, definition in schema.steps.items():
        in_degree = len(schema.in_arcs(step))
        if in_degree > 1 and definition.join is JoinKind.NONE:
            problems.append(
                f"step {step!r} has {in_degree} incoming arcs but no declared "
                "join kind (declare join='and' or join='xor')"
            )
        if in_degree <= 1 and definition.join is not JoinKind.NONE:
            problems.append(
                f"step {step!r} declares join={definition.join.value!r} but has "
                f"{in_degree} incoming arc(s)"
            )


def _check_data_flow(schema: WorkflowSchema, graph: SchemaGraph, problems: list[str]) -> None:
    for step in schema.steps.values():
        for ref in step.inputs:
            scope, item = split_ref(ref)
            if scope == "WF":
                if item not in schema.inputs:
                    problems.append(
                        f"step {step.name!r} reads {ref!r} but the workflow has "
                        f"no input {item!r}"
                    )
                continue
            if scope not in schema.steps:
                problems.append(
                    f"step {step.name!r} reads {ref!r} from an undefined step"
                )
                continue
            producer = schema.steps[scope]
            if item not in producer.outputs:
                problems.append(
                    f"step {step.name!r} reads {ref!r} but step {scope!r} "
                    f"does not produce {item!r}"
                )
                continue
            if scope == step.name:
                problems.append(f"step {step.name!r} reads its own output {ref!r}")
                continue
            if scope in graph.descendants_map[step.name]:
                problems.append(
                    f"step {step.name!r} reads {ref!r} produced by a downstream step"
                )
                continue
            if graph.are_exclusive(step.name, scope):
                problems.append(
                    f"step {step.name!r} reads {ref!r} from step {scope!r} on an "
                    "exclusive if-then-else branch — the item may never be produced"
                )


def _check_loops(schema: WorkflowSchema, graph: SchemaGraph, problems: list[str]) -> None:
    for arc in schema.loop_arcs():
        if arc.src not in schema.steps or arc.dst not in schema.steps:
            continue  # already reported by _check_structure
        if arc.condition is None:
            problems.append(f"{arc.describe()}: loop arcs need a continue-condition")
        if arc.dst != arc.src and arc.dst not in graph.ancestors_map[arc.src]:
            problems.append(
                f"{arc.describe()}: loop target must be an ancestor of the source"
            )


def _check_failure_annotations(
    schema: WorkflowSchema, graph: SchemaGraph, problems: list[str]
) -> None:
    for failed, origin in schema.rollback_points.items():
        if failed not in schema.steps:
            problems.append(f"rollback point for unknown step {failed!r}")
            continue
        if origin not in schema.steps:
            problems.append(f"rollback point {failed!r} -> unknown origin {origin!r}")
            continue
        if origin != failed and origin not in graph.ancestors_map[failed]:
            problems.append(
                f"rollback origin {origin!r} is not an ancestor of {failed!r}"
            )

    claimed: dict[str, int] = {}
    for idx, members in enumerate(schema.compensation_sets):
        for member in members:
            if member not in schema.steps:
                problems.append(
                    f"compensation set #{idx} references unknown step {member!r}"
                )
                continue
            if member in claimed:
                problems.append(
                    f"step {member!r} belongs to two compensation dependent sets "
                    f"(#{claimed[member]} and #{idx})"
                )
            claimed[member] = idx
            if not schema.steps[member].compensable:
                problems.append(
                    f"compensation set #{idx} includes non-compensable step {member!r}"
                )

    for step in schema.abort_compensation_steps:
        if step not in schema.steps:
            problems.append(f"abort compensation references unknown step {step!r}")
        elif not schema.steps[step].compensable:
            problems.append(
                f"abort compensation includes non-compensable step {step!r}"
            )


def _check_conditions(schema: WorkflowSchema, problems: list[str]) -> None:
    for arc in schema.arcs:
        if arc.condition is None:
            continue
        try:
            Condition(arc.condition)
        except ConditionError as exc:
            problems.append(f"{arc.describe()}: {exc}")


def _check_outputs(schema: WorkflowSchema, problems: list[str]) -> None:
    for name, ref in schema.outputs.items():
        try:
            scope, item = split_ref(ref)
        except Exception:
            problems.append(f"workflow output {name!r} has malformed reference {ref!r}")
            continue
        if scope == "WF":
            if item not in schema.inputs:
                problems.append(
                    f"workflow output {name!r} references unknown input {ref!r}"
                )
        elif scope not in schema.steps:
            problems.append(f"workflow output {name!r} references unknown step {ref!r}")
        elif item not in schema.steps[scope].outputs:
            problems.append(
                f"workflow output {name!r}: step {scope!r} does not produce {item!r}"
            )
