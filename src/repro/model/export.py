"""Schema exports: Graphviz DOT and a structural summary dict.

``to_dot`` renders a workflow schema the way the paper draws them
(Figures 2, 3): steps as boxes, control arcs as edges labelled with their
branch conditions, loop arcs dashed, rollback points as red dotted edges
from the failing step back to its origin, and compensation dependent sets
as clustered annotations.
"""

from __future__ import annotations

from typing import Any

from repro.model.compiler import compile_schema
from repro.model.schema import JoinKind, StepType, WorkflowSchema

__all__ = ["schema_summary", "to_dot"]


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(schema: WorkflowSchema, name: str | None = None) -> str:
    """Render a schema as Graphviz DOT text."""
    compiled = compile_schema(schema)
    lines = [f'digraph "{_escape(name or schema.name)}" {{',
             "  rankdir=LR;",
             '  node [shape=box, fontname="Helvetica"];']
    for step in schema.steps.values():
        attributes = []
        if step.name == compiled.start_step:
            attributes.append("peripheries=2")
        if step.name in compiled.terminal_steps:
            attributes.append("style=bold")
        if step.join is JoinKind.AND:
            attributes.append('xlabel="AND-join"')
        elif step.join is JoinKind.XOR:
            attributes.append('xlabel="XOR-join"')
        if step.step_type is StepType.QUERY:
            attributes.append('color=gray40')
        if step.subworkflow:
            attributes.append('shape=box3d')
        label = step.name
        if step.subworkflow:
            label = f"{step.name}\\n[{step.subworkflow}]"
        attrs = ", ".join([f'label="{_escape(label)}"'] + attributes)
        lines.append(f'  "{_escape(step.name)}" [{attrs}];')
    for arc in schema.arcs:
        attributes = []
        if arc.loop:
            attributes.append("style=dashed")
            attributes.append(f'label="while {_escape(arc.condition or "")}"')
        elif arc.condition is not None:
            attributes.append(f'label="{_escape(arc.condition)}"')
        elif arc.is_else:
            attributes.append('label="otherwise"')
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f'  "{_escape(arc.src)}" -> "{_escape(arc.dst)}"{suffix};')
    for failed, origin in schema.rollback_points.items():
        lines.append(
            f'  "{_escape(failed)}" -> "{_escape(origin)}" '
            '[style=dotted, color=red, label="rollback"];'
        )
    for index, members in enumerate(schema.compensation_sets):
        joined = ", ".join(sorted(members))
        lines.append(
            f'  "compset{index}" [shape=note, label="compensation set: '
            f'{_escape(joined)}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def schema_summary(schema: WorkflowSchema) -> dict[str, Any]:
    """A structural summary (used by tooling and the CLI ``check`` output)."""
    compiled = compile_schema(schema)
    return {
        "name": schema.name,
        "steps": len(schema.steps),
        "arcs": len(schema.arcs),
        "loops": len(schema.loop_arcs()),
        "start": compiled.start_step,
        "terminals": sorted(compiled.terminal_steps),
        "xor_splits": sorted(compiled.graph.xor_splits),
        "parallel_splits": sorted(compiled.graph.parallel_splits),
        "rules": len(compiled.rule_templates),
        "rollback_points": dict(schema.rollback_points),
        "compensation_sets": [sorted(m) for m in schema.compensation_sets],
        "outputs": dict(schema.outputs),
    }
