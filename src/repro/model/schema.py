"""Workflow schema model.

"A workflow schema is essentially a directed graph with nodes representing
the steps to be performed ... The arcs connecting the steps are of two
types: data and control arcs."  (paper, Section 2)

This module defines the immutable schema objects:

* :class:`StepDef` — a step ("black box" program) with declared inputs,
  outputs, resource set, cost and compensation information;
* :class:`ControlArc` — ordering between two steps, optionally conditional
  (if-then-else branch) or a loop-back arc;
* :class:`WorkflowSchema` — the graph plus the failure-handling annotations
  of the paper: per-step rollback points, compensation dependent sets and
  compensation/re-execution (CR) policies.

Data arcs are represented implicitly: a step's ``inputs`` tuple names the
data items it consumes (``"WF.I1"`` for workflow inputs, ``"S2.O1"`` for
step outputs), which both defines the data flow and lets the compiler add
the corresponding ``step.done`` events to the step's triggering rule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import SchemaError
from repro.model.policies import CRPolicy

__all__ = [
    "ControlArc",
    "JoinKind",
    "StepDef",
    "StepType",
    "WorkflowSchema",
    "workflow_input_ref",
    "step_output_ref",
    "split_ref",
]


class StepType(enum.Enum):
    """Whether a step's program updates shared resources or only queries.

    The distinction drives the paper's predecessor-agent failure handling:
    "if the step is performing a query then the successor agent requests
    the execution of that step [at] one of the available predecessor
    agents"; update steps must wait for the failed agent to recover.
    """

    QUERY = "query"
    UPDATE = "update"


class JoinKind(enum.Enum):
    """How a step with several incoming control arcs is triggered."""

    #: Single incoming arc (or start step) — no join semantics.
    NONE = "none"
    #: Confluence of parallel branches: wait for *all* predecessors.
    AND = "and"
    #: Confluence of if-then-else branches: wait for *any one* predecessor.
    XOR = "xor"


def workflow_input_ref(name: str) -> str:
    """Data reference for a workflow-level input item (``WF.I1``)."""
    return f"WF.{name}"


def step_output_ref(step: str, output: str) -> str:
    """Data reference for a step output item (``S2.O1``)."""
    return f"{step}.{output}"


def split_ref(ref: str) -> tuple[str, str]:
    """Split ``"S2.O1"`` into ``("S2", "O1")``; raises on malformed refs."""
    scope, sep, item = ref.partition(".")
    if not sep or not scope or not item:
        raise SchemaError(f"malformed data reference {ref!r} (expected SCOPE.NAME)")
    return scope, item


@dataclass(frozen=True)
class ControlArc:
    """A control-flow arc between two steps.

    ``condition`` makes the arc an if-then-else branch; ``is_else`` marks
    the fallback branch of an if-then-else split.  ``loop`` marks a
    back-arc whose ``condition`` is the *continue* condition: when it holds
    after ``src`` completes, control returns to ``dst`` and the loop body
    re-executes.
    """

    src: str
    dst: str
    condition: str | None = None
    is_else: bool = False
    loop: bool = False

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise SchemaError(f"self-arc on step {self.src!r}")
        if self.is_else and self.condition is not None:
            raise SchemaError(f"else-arc {self.src}->{self.dst} cannot carry a condition")
        if self.loop and self.is_else:
            raise SchemaError(f"loop arc {self.src}->{self.dst} cannot be an else-arc")

    def describe(self) -> str:
        kind = "loop" if self.loop else ("else" if self.is_else else "arc")
        cond = f" when {self.condition!r}" if self.condition else ""
        return f"{kind} {self.src}->{self.dst}{cond}"


@dataclass(frozen=True)
class StepDef:
    """Definition of one workflow step.

    The WFMS treats the program as a black box; everything it needs to
    know — data flow, resource conflicts, costs, compensability — is
    declared here, exactly as the paper requires ("without any additional
    information a WFMS cannot determine if two steps ... accessed the same
    resources").
    """

    name: str
    program: str = "noop"
    step_type: StepType = StepType.UPDATE
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    resources: frozenset[str] = frozenset()
    cost: float = 1.0
    compensable: bool = True
    compensation_program: str | None = None
    compensation_cost: float | None = None
    join: JoinKind = JoinKind.NONE
    subworkflow: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("step name must be non-empty")
        if "." in self.name or self.name == "WF":
            raise SchemaError(f"illegal step name {self.name!r}")
        if self.cost < 0:
            raise SchemaError(f"step {self.name!r} has negative cost")
        for ref in self.inputs:
            split_ref(ref)  # validates shape
        for out in self.outputs:
            if "." in out:
                raise SchemaError(
                    f"step {self.name!r} output {out!r} must be a bare item name"
                )

    @property
    def effective_compensation_cost(self) -> float:
        """Cost of a *complete* compensation (defaults to the step cost)."""
        if self.compensation_cost is not None:
            return self.compensation_cost
        return self.cost

    def output_refs(self) -> tuple[str, ...]:
        """Fully-qualified references of this step's outputs."""
        return tuple(step_output_ref(self.name, out) for out in self.outputs)

    def input_producer_steps(self) -> frozenset[str]:
        """Names of steps whose outputs this step consumes."""
        producers = set()
        for ref in self.inputs:
            scope, __ = split_ref(ref)
            if scope != "WF":
                producers.add(scope)
        return frozenset(producers)


@dataclass(frozen=True)
class WorkflowSchema:
    """An immutable, validated-on-construction workflow definition.

    Use :class:`repro.model.builder.SchemaBuilder` to construct schemas
    fluently; the raw constructor performs only cheap structural checks —
    full validation lives in :mod:`repro.model.validation` and is invoked
    by the builder and by control systems at registration time.

    Attributes mirror the paper's specification surface:

    * ``rollback_points`` — "the agent where a step failure occurred calls
      the WorkflowRollback() WI of the agent responsible for the step to
      which the workflow is rolled back.  This information is static";
    * ``compensation_sets`` — compensation dependent sets, "to be
      compensated only in the reverse execution order of its member steps";
    * ``cr_policies`` — per-step compensation/re-execution conditions for
      the OCR scheme;
    * ``abort_compensation_steps`` — steps compensated on a user-initiated
      workflow abort "as specified in the workflow schema".
    """

    name: str
    inputs: tuple[str, ...] = ()
    steps: Mapping[str, StepDef] = field(default_factory=dict)
    arcs: tuple[ControlArc, ...] = ()
    compensation_sets: tuple[frozenset[str], ...] = ()
    rollback_points: Mapping[str, str] = field(default_factory=dict)
    cr_policies: Mapping[str, CRPolicy] = field(default_factory=dict)
    abort_compensation_steps: tuple[str, ...] = ()
    outputs: Mapping[str, str] = field(default_factory=dict)
    version: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("workflow name must be non-empty")
        if not self.steps:
            raise SchemaError(f"workflow {self.name!r} has no steps")

    # -- queries -------------------------------------------------------------

    def step(self, name: str) -> StepDef:
        try:
            return self.steps[name]
        except KeyError:
            raise SchemaError(f"workflow {self.name!r} has no step {name!r}") from None

    def step_names(self) -> tuple[str, ...]:
        return tuple(self.steps)

    def forward_arcs(self) -> tuple[ControlArc, ...]:
        return tuple(arc for arc in self.arcs if not arc.loop)

    def loop_arcs(self) -> tuple[ControlArc, ...]:
        return tuple(arc for arc in self.arcs if arc.loop)

    def out_arcs(self, step: str) -> tuple[ControlArc, ...]:
        return tuple(arc for arc in self.arcs if arc.src == step and not arc.loop)

    def in_arcs(self, step: str) -> tuple[ControlArc, ...]:
        return tuple(arc for arc in self.arcs if arc.dst == step and not arc.loop)

    def successors(self, step: str) -> tuple[str, ...]:
        return tuple(arc.dst for arc in self.out_arcs(step))

    def predecessors(self, step: str) -> tuple[str, ...]:
        return tuple(arc.src for arc in self.in_arcs(step))

    def input_refs(self) -> tuple[str, ...]:
        """Fully-qualified references of the workflow-level inputs."""
        return tuple(workflow_input_ref(name) for name in self.inputs)

    def compensation_set_of(self, step: str) -> frozenset[str] | None:
        """The compensation dependent set containing ``step``, if any."""
        for members in self.compensation_sets:
            if step in members:
                return members
        return None

    def rollback_origin(self, failed_step: str) -> str | None:
        """The static rollback origin for a failure at ``failed_step``."""
        return self.rollback_points.get(failed_step)

    def describe(self) -> str:
        """Short multi-line human-readable rendering (used by examples)."""
        lines = [f"workflow {self.name} (inputs: {', '.join(self.inputs) or '-'})"]
        for step in self.steps.values():
            marks = []
            if step.join is not JoinKind.NONE:
                marks.append(f"join={step.join.value}")
            if step.subworkflow:
                marks.append(f"nested={step.subworkflow}")
            suffix = f" [{', '.join(marks)}]" if marks else ""
            lines.append(f"  step {step.name} ({step.program}){suffix}")
        for arc in self.arcs:
            lines.append(f"  {arc.describe()}")
        return "\n".join(lines)
