"""The agent database (AGDB) of distributed workflow control.

"Each agent has an agent database (AGDB) (on the same node) in which they
store all relevant persistent information such as the steps that it has
executed and the corresponding results and so forth.  This database also
has information about agents responsible for running the steps of the
various workflows."

The AGDB therefore holds:

* **instance fragments** — the agent's partial view of each workflow
  instance it participates in (assembled from workflow packets);
* the **agent directory** — ``(schema, step) -> eligible agents``, used to
  route packets, halt probes and compensation requests;
* the **coordination summary table** — for instances this agent
  *coordinates*: status rows serving front-end requests;
* **purge bookkeeping** — committed-instance ids broadcast periodically so
  agents "can purge their instance tables".

Everything is WAL-backed; a crashed agent replays the log in
``on_recover`` and resumes (volatile rule engines are rebuilt by the agent
node from the recovered fragments).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import StorageError
from repro.storage.tables import InstanceState, InstanceStatus
from repro.storage.wal import WriteAheadLog

__all__ = ["AgentDatabase"]


class AgentDatabase:
    """Durable per-agent store for distributed workflow control."""

    def __init__(self, agent_name: str):
        self.agent_name = agent_name
        self.wal = WriteAheadLog()
        self._fragments: dict[str, InstanceState] = {}
        self._directory: dict[tuple[str, str], tuple[str, ...]] = {}
        self._summary: dict[str, InstanceStatus] = {}
        self._purged: set[str] = set()
        self._trackers: dict[str, Mapping[str, Any]] = {}

    # -- instance fragments ------------------------------------------------------

    def fragment(self, instance_id: str) -> InstanceState:
        try:
            return self._fragments[instance_id]
        except KeyError:
            raise StorageError(
                f"agent {self.agent_name!r} has no state for instance {instance_id!r}"
            ) from None

    def has_fragment(self, instance_id: str) -> bool:
        return instance_id in self._fragments

    def ensure_fragment(
        self, schema_name: str, instance_id: str, inputs: Mapping[str, Any] | None = None
    ) -> InstanceState:
        state = self._fragments.get(instance_id)
        if state is None:
            state = InstanceState(
                schema_name=schema_name,
                instance_id=instance_id,
                inputs=dict(inputs or {}),
            )
            self._fragments[instance_id] = state
        return state

    def fragments(self) -> tuple[InstanceState, ...]:
        return tuple(self._fragments.values())

    def persist_fragment(self, state: InstanceState) -> None:
        self.wal.append("fragment_snapshot", state.snapshot())

    def purge_instances(self, instance_ids: Iterable[str]) -> int:
        """Drop fragments of committed instances (purge broadcast handler)."""
        purged = 0
        dropped = False
        for instance_id in instance_ids:
            if self._fragments.pop(instance_id, None) is not None:
                purged += 1
            self._purged.add(instance_id)
            if self._trackers.pop(instance_id, None) is not None:
                dropped = True
        if purged or dropped:
            # The purge must be durable whenever it dropped *any* state —
            # fragments or tracker snapshots — or recovery resurrects it.
            self.wal.append("purge", {"instance_ids": sorted(self._purged)})
        return purged

    def was_purged(self, instance_id: str) -> bool:
        return instance_id in self._purged

    # -- agent directory -----------------------------------------------------------

    def set_eligible_agents(
        self, schema_name: str, step: str, agents: Iterable[str]
    ) -> None:
        names = tuple(agents)
        if not names:
            raise StorageError(f"step {schema_name}.{step} needs at least one agent")
        self._directory[(schema_name, step)] = names

    def eligible_agents(self, schema_name: str, step: str) -> tuple[str, ...]:
        try:
            return self._directory[(schema_name, step)]
        except KeyError:
            raise StorageError(
                f"agent {self.agent_name!r}: no eligible agents recorded for "
                f"{schema_name}.{step}"
            ) from None

    def directory_items(self) -> tuple[tuple[tuple[str, str], tuple[str, ...]], ...]:
        return tuple(sorted(self._directory.items()))

    # -- coordination instance summary table ---------------------------------------------

    def set_summary(self, instance_id: str, status: InstanceStatus) -> None:
        self._summary[instance_id] = status
        self.wal.append(
            "summary", {"instance_id": instance_id, "status": status.value}
        )

    def summary(self, instance_id: str) -> InstanceStatus:
        try:
            return self._summary[instance_id]
        except KeyError:
            raise StorageError(
                f"agent {self.agent_name!r} does not coordinate instance "
                f"{instance_id!r}"
            ) from None

    def has_summary(self, instance_id: str) -> bool:
        return instance_id in self._summary

    def coordinated_instances(self) -> tuple[str, ...]:
        return tuple(sorted(self._summary))

    # -- commit trackers ------------------------------------------------------------------

    def set_tracker(self, instance_id: str, snapshot: Mapping[str, Any]) -> None:
        """Persist a coordination-agent commit-tracker snapshot.

        Terminal reports consumed before a coordination-agent crash would
        otherwise be unrecoverable — the reporting agents never re-send —
        so the tracker is part of the "relevant persistent information"
        the AGDB stores.
        """
        self._trackers[instance_id] = snapshot
        self.wal.append("tracker", {"instance_id": instance_id, "tracker": snapshot})

    def recovered_tracker(self, instance_id: str) -> Mapping[str, Any] | None:
        """Latest persisted tracker snapshot (None when never persisted)."""
        return self._trackers.get(instance_id)

    # -- crash recovery ---------------------------------------------------------------------

    def recover(self) -> int:
        """Rebuild fragments, summaries and trackers from the WAL; keeps the
        directory (static routing data installed at deployment time).
        Record checksums are verified — a corrupt log fails loudly."""
        self._fragments.clear()
        self._summary.clear()
        self._purged.clear()
        self._trackers.clear()
        latest: dict[str, Mapping[str, Any]] = {}
        summaries: dict[str, InstanceStatus] = {}
        trackers: dict[str, Mapping[str, Any]] = {}
        purged: set[str] = set()

        def on_fragment(payload: Mapping[str, Any]) -> None:
            latest[payload["instance_id"]] = payload

        def on_summary(payload: Mapping[str, Any]) -> None:
            summaries[payload["instance_id"]] = InstanceStatus(payload["status"])

        def on_tracker(payload: Mapping[str, Any]) -> None:
            trackers[payload["instance_id"]] = payload["tracker"]

        def on_purge(payload: Mapping[str, Any]) -> None:
            purged.update(payload["instance_ids"])

        self.wal.replay(
            {"fragment_snapshot": on_fragment, "summary": on_summary,
             "tracker": on_tracker, "purge": on_purge},
            verify=True,
        )
        for instance_id, payload in latest.items():
            if instance_id not in purged:
                self._fragments[instance_id] = InstanceState.from_snapshot(payload)
        self._summary.update(summaries)
        self._trackers = {
            iid: snap for iid, snap in trackers.items() if iid not in purged
        }
        self._purged = purged
        return len(self._fragments)

    def replay_clone(self) -> "AgentDatabase":
        """A fresh AGDB rebuilt purely from this database's WAL.

        Used by the chaos harness's WAL-convergence check: replaying the
        log into a clean database must reproduce the durable state.  The
        directory is copied (deployment-time static data, never logged).
        """
        clone = AgentDatabase(self.agent_name)
        clone._directory = dict(self._directory)
        clone.wal._records = list(self.wal._records)
        clone.wal._next_lsn = self.wal._next_lsn
        clone.recover()
        return clone
