"""Append-only write-ahead log providing simulated durability.

The paper's WFDB "provides the persistence necessary to facilitate forward
recovery in case of failure of the workflow engine", and each distributed
agent keeps an agent database "in which they store all relevant persistent
information".  In the simulation, durability means *surviving a node
crash*: a crashed node loses its in-memory tables but keeps its WAL, and
``on_recover`` replays the log to rebuild them.

Records are ``(lsn, kind, payload)``; payloads must be plain dict/list/
scalar structures (the stores only write snapshots, never live objects).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

from repro.errors import StorageError

__all__ = ["WalRecord", "WriteAheadLog", "record_checksum"]


def record_checksum(lsn: int, kind: str, payload: Mapping[str, Any]) -> int:
    """Content checksum of one record (crc32 over a canonical JSON form).

    ``default=str`` keeps enum-like payload values hashable; payloads are
    snapshots (never live objects), so the canonical form is stable for
    the record's lifetime.
    """
    blob = json.dumps([lsn, kind, payload], sort_keys=True, default=str)
    return zlib.crc32(blob.encode("utf-8"))


@dataclass(frozen=True)
class WalRecord:
    lsn: int
    kind: str
    payload: Mapping[str, Any]
    checksum: int = 0

    def verify(self) -> bool:
        """Whether the stored checksum matches the record's content."""
        return self.checksum == record_checksum(self.lsn, self.kind, self.payload)


class WriteAheadLog:
    """A durable, append-only sequence of records with checkpoint truncation."""

    #: Optional duck-typed profiler (see :class:`repro.obs.profile.
    #: Profiler`), set per-instance by ``Profiler.install``.  A class
    #: attribute so unprofiled logs pay one ``is None`` check per append.
    profile = None

    def __init__(self) -> None:
        self._records: list[WalRecord] = []
        self._next_lsn = 1
        self.appends = 0

    def append(self, kind: str, payload: Mapping[str, Any]) -> WalRecord:
        profile = self.profile
        if profile is not None:
            profile.push("wal.append")
        try:
            if not isinstance(payload, dict):
                raise StorageError(
                    f"WAL payload must be a dict, got {type(payload).__name__}"
                )
            lsn = self._next_lsn
            record = WalRecord(lsn=lsn, kind=kind, payload=payload,
                               checksum=record_checksum(lsn, kind, payload))
            self._next_lsn += 1
            self._records.append(record)
            self.appends += 1
            return record
        finally:
            if profile is not None:
                profile.pop()

    def verify(self) -> int:
        """Check every record's checksum; returns the count verified.

        Raises :class:`StorageError` naming the first corrupt LSN — a
        loud failure instead of the silent truncation / partial state a
        recovery from a damaged log would otherwise produce.
        """
        for record in self._records:
            if not record.verify():
                raise StorageError(
                    f"WAL corruption detected at lsn {record.lsn} "
                    f"(kind {record.kind!r}): checksum mismatch"
                )
        return len(self._records)

    def replay(
        self,
        handlers: Mapping[str, Callable[[Mapping[str, Any]], None]],
        strict: bool = True,
        verify: bool = False,
    ) -> int:
        """Replay all records through ``handlers`` (keyed by record kind).

        Returns the number of records replayed.  Unknown kinds raise when
        ``strict`` (a recovery that silently skips records is a corruption
        vector), otherwise they are ignored.  ``verify=True`` additionally
        checks each record's checksum before handing it to its handler.
        """
        profile = self.profile
        if profile is not None:
            profile.push("wal.replay")
        try:
            replayed = 0
            for record in self._records:
                if verify and not record.verify():
                    raise StorageError(
                        f"WAL corruption detected at lsn {record.lsn} "
                        f"(kind {record.kind!r}): checksum mismatch"
                    )
                handler = handlers.get(record.kind)
                if handler is None:
                    if strict:
                        raise StorageError(
                            f"no WAL replay handler for kind {record.kind!r}"
                        )
                    continue
                handler(record.payload)
                replayed += 1
            return replayed
        finally:
            if profile is not None:
                profile.pop()

    def checkpoint(self, keep_from_lsn: int) -> int:
        """Drop records with ``lsn < keep_from_lsn``; returns dropped count."""
        before = len(self._records)
        self._records = [r for r in self._records if r.lsn >= keep_from_lsn]
        return before - len(self._records)

    def last_lsn(self) -> int:
        return self._records[-1].lsn if self._records else 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[WalRecord]:
        return iter(self._records)
