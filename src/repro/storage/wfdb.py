"""The workflow database (WFDB) used by central and parallel engines.

"The engine maintains information about the workflows and steps in various
tables in the WFDB for efficient access — workflow class table (for class
definitions), workflow instance table (for instance specific state
information) and step table (for step related information)."

The WFDB owns:

* the **class table**: registered compiled schemas;
* the **instance tables**: one :class:`~repro.storage.tables.InstanceState`
  per live instance, snapshot-logged to the WAL on every transition so a
  crashed engine recovers forward;
* the **instance summary**: id -> status, for WorkflowStatus queries and
  for rejecting aborts of committed workflows.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import StorageError
from repro.model.compiler import CompiledSchema
from repro.storage.tables import InstanceState, InstanceStatus
from repro.storage.wal import WriteAheadLog

__all__ = ["WorkflowDatabase"]


class WorkflowDatabase:
    """Class + instance tables with WAL-backed durability."""

    def __init__(self) -> None:
        self.wal = WriteAheadLog()
        self._classes: dict[str, CompiledSchema] = {}
        self._instances: dict[str, InstanceState] = {}
        self._summary: dict[str, InstanceStatus] = {}

    # -- class table ------------------------------------------------------------

    def register_class(self, compiled: CompiledSchema) -> None:
        if compiled.name in self._classes:
            raise StorageError(f"workflow class {compiled.name!r} already registered")
        self._classes[compiled.name] = compiled

    def workflow_class(self, name: str) -> CompiledSchema:
        try:
            return self._classes[name]
        except KeyError:
            raise StorageError(f"unknown workflow class {name!r}") from None

    def class_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._classes))

    # -- instance tables -----------------------------------------------------------

    def create_instance(
        self, schema_name: str, instance_id: str, inputs: Mapping[str, Any]
    ) -> InstanceState:
        if instance_id in self._instances:
            raise StorageError(f"duplicate instance id {instance_id!r}")
        self.workflow_class(schema_name)  # validates registration
        state = InstanceState(
            schema_name=schema_name, instance_id=instance_id, inputs=dict(inputs)
        )
        self._instances[instance_id] = state
        self._summary[instance_id] = InstanceStatus.RUNNING
        self.persist(state)
        return state

    def instance(self, instance_id: str) -> InstanceState:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise StorageError(f"unknown instance {instance_id!r}") from None

    def has_instance(self, instance_id: str) -> bool:
        return instance_id in self._instances

    def instances(self) -> Iterator[InstanceState]:
        return iter(self._instances.values())

    def status(self, instance_id: str) -> InstanceStatus:
        try:
            return self._summary[instance_id]
        except KeyError:
            raise StorageError(f"unknown instance {instance_id!r}") from None

    def set_status(self, instance_id: str, status: InstanceStatus) -> None:
        state = self.instance(instance_id)
        state.status = status
        self._summary[instance_id] = status
        self.persist(state)

    def persist(self, state: InstanceState) -> None:
        """Snapshot an instance to the WAL (the durability point)."""
        self.wal.append("instance_snapshot", state.snapshot())

    def archive(self, instance_id: str) -> None:
        """Drop a finished instance's table, keeping only the summary row.

        Mirrors the paper: "After a workflow is committed, the instance
        table information is archived".
        """
        status = self.status(instance_id)
        if status is InstanceStatus.RUNNING:
            raise StorageError(f"cannot archive running instance {instance_id!r}")
        self._instances.pop(instance_id, None)

    # -- crash recovery -------------------------------------------------------------

    def recover(self) -> int:
        """Rebuild instance tables from the WAL (forward recovery).

        Returns the number of live instances restored.  Class definitions
        are code, not data — the engine re-registers them on restart, so
        recovery only replays instance snapshots (latest snapshot wins).
        """
        self._instances.clear()
        self._summary.clear()
        latest: dict[str, Mapping[str, Any]] = {}

        def on_snapshot(payload: Mapping[str, Any]) -> None:
            latest[payload["instance_id"]] = payload

        self.wal.replay({"instance_snapshot": on_snapshot})
        for instance_id, payload in latest.items():
            state = InstanceState.from_snapshot(payload)
            self._instances[instance_id] = state
            self._summary[instance_id] = state.status
        return len(self._instances)
