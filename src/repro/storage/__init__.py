"""Persistent state: instance tables, WAL, workflow and agent databases."""

from repro.storage.agdb import AgentDatabase
from repro.storage.tables import InstanceState, InstanceStatus, StepRecord, StepStatus
from repro.storage.wal import WalRecord, WriteAheadLog
from repro.storage.wfdb import WorkflowDatabase

__all__ = [
    "AgentDatabase",
    "InstanceState",
    "InstanceStatus",
    "StepRecord",
    "StepStatus",
    "WalRecord",
    "WorkflowDatabase",
    "WriteAheadLog",
]
