"""Shared runtime state tables.

The paper's engines and agents keep workflow state in tables: "workflow
class table (for class definitions), workflow instance table (for instance
specific state information) and step table (for step related information)".
This module defines the instance-level state shared by every control
architecture:

* :class:`StepRecord` — the step status table row, including the *previous
  execution* data (inputs/outputs) the OCR scheme needs ("maintaining
  additional data that correspond to the previous execution of the steps");
* :class:`InstanceState` — the workflow instance table row: data table,
  step status table and recovery bookkeeping.

Event tables live in :mod:`repro.rules.events`; a node pairs an
:class:`InstanceState` with a rule engine to enact the instance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import StorageError
from repro.model.schema import workflow_input_ref

__all__ = ["InstanceStatus", "InstanceState", "StepRecord", "StepStatus"]


class StepStatus(enum.Enum):
    NOT_STARTED = "not_started"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    COMPENSATED = "compensated"


class InstanceStatus(enum.Enum):
    RUNNING = "running"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class StepRecord:
    """Step status table row for one step of one instance."""

    step: str
    status: StepStatus = StepStatus.NOT_STARTED
    executions: int = 0
    compensations: int = 0
    reuses: int = 0
    last_inputs: dict[str, Any] = field(default_factory=dict)
    last_outputs: dict[str, Any] = field(default_factory=dict)
    done_at: float | None = None
    #: Monotone stamp of the most recent execution; compensation dependent
    #: sets compensate in decreasing exec_seq order (reverse execution order).
    exec_seq: int | None = None
    agent: str | None = None

    def copy(self) -> "StepRecord":
        return StepRecord(
            step=self.step,
            status=self.status,
            executions=self.executions,
            compensations=self.compensations,
            reuses=self.reuses,
            last_inputs=dict(self.last_inputs),
            last_outputs=dict(self.last_outputs),
            done_at=self.done_at,
            exec_seq=self.exec_seq,
            agent=self.agent,
        )


@dataclass
class InstanceState:
    """Workflow instance table row: data + step status + recovery epoch.

    In centralized control the engine holds the single authoritative copy;
    in distributed control each agent holds a *fragment* assembled from the
    workflow packets it has seen — "the state information of a single
    workflow is distributed across agents".
    """

    schema_name: str
    instance_id: str
    inputs: dict[str, Any] = field(default_factory=dict)
    data: dict[str, Any] = field(default_factory=dict)
    steps: dict[str, StepRecord] = field(default_factory=dict)
    status: InstanceStatus = InstanceStatus.RUNNING
    #: Bumped on every WorkflowRollback; lets late messages from an older
    #: recovery round be recognized and discarded.
    recovery_epoch: int = 0
    #: Monotone per-instance counter bumped by every rollback and loop
    #: re-entry; event occurrences are stamped with it and invalidations
    #: only kill occurrences from earlier rounds.
    invalidation_round: int = 0
    #: Durable copy of the valid event tokens (distributed agents persist
    #: it so a crashed agent can rebuild its volatile rule engine).
    events_snapshot: dict = field(default_factory=dict)
    #: token -> invalidation-round high-water marks this node has learned.
    #: Persisted with the fragment so a recovering agent re-applies the
    #: cutoffs instead of transiently reviving invalidated events from a
    #: stale packet or its own events snapshot.
    known_invalidations: dict[str, int] = field(default_factory=dict)
    _exec_counter: int = 0

    def __post_init__(self) -> None:
        for name, value in self.inputs.items():
            self.data.setdefault(workflow_input_ref(name), value)

    # -- step records ----------------------------------------------------------

    def record(self, step: str) -> StepRecord:
        existing = self.steps.get(step)
        if existing is None:
            existing = StepRecord(step=step)
            self.steps[step] = existing
        return existing

    def next_exec_seq(self) -> int:
        self._exec_counter += 1
        return self._exec_counter

    def note_exec_seq(self, seq: int) -> None:
        """Advance the local counter past a remotely-assigned sequence."""
        self._exec_counter = max(self._exec_counter, seq)

    def executed_steps_in_order(self) -> list[str]:
        """Steps currently DONE, in execution (exec_seq) order."""
        done = [
            r for r in self.steps.values() if r.status is StepStatus.DONE and r.exec_seq
        ]
        return [r.step for r in sorted(done, key=lambda r: r.exec_seq or 0)]

    def step_status(self, step: str) -> StepStatus:
        record = self.steps.get(step)
        return record.status if record is not None else StepStatus.NOT_STARTED

    # -- data table ---------------------------------------------------------------

    def bind(self, ref: str, value: Any) -> None:
        self.data[ref] = value

    def bind_outputs(self, step: str, outputs: Mapping[str, Any]) -> None:
        for name, value in outputs.items():
            self.data[f"{step}.{name}"] = value

    def unbind_outputs(self, step: str, output_names: Iterable[str]) -> None:
        for name in output_names:
            self.data.pop(f"{step}.{name}", None)

    def gather_inputs(self, refs: Iterable[str]) -> dict[str, Any]:
        """Resolve a step's declared input references from the data table."""
        values: dict[str, Any] = {}
        for ref in refs:
            if ref not in self.data:
                raise StorageError(
                    f"instance {self.instance_id}: input {ref!r} is unbound"
                )
            values[ref] = self.data[ref]
        return values

    def env(self) -> dict[str, Any]:
        """Condition-evaluation environment (the data table itself)."""
        return self.data

    # -- change-inputs support -------------------------------------------------------

    def apply_input_changes(self, changes: Mapping[str, Any]) -> None:
        for name, value in changes.items():
            if name not in self.inputs:
                raise StorageError(
                    f"instance {self.instance_id}: no workflow input {name!r}"
                )
            self.inputs[name] = value
            self.data[workflow_input_ref(name)] = value

    # -- fragments (distributed control) -------------------------------------------------

    def merge_data(self, data: Mapping[str, Any]) -> None:
        """Fold packet-carried data items into the local fragment."""
        self.data.update(data)

    def snapshot(self) -> dict[str, Any]:
        """A deep-enough copy for WAL persistence and packet payloads."""
        return {
            "schema_name": self.schema_name,
            "instance_id": self.instance_id,
            "inputs": dict(self.inputs),
            "data": dict(self.data),
            "status": self.status.value,
            "recovery_epoch": self.recovery_epoch,
            "invalidation_round": self.invalidation_round,
            "events_snapshot": dict(self.events_snapshot),
            "known_invalidations": dict(self.known_invalidations),
            "exec_counter": self._exec_counter,
            "steps": {
                name: {
                    "status": rec.status.value,
                    "executions": rec.executions,
                    "compensations": rec.compensations,
                    "reuses": rec.reuses,
                    "last_inputs": dict(rec.last_inputs),
                    "last_outputs": dict(rec.last_outputs),
                    "done_at": rec.done_at,
                    "exec_seq": rec.exec_seq,
                    "agent": rec.agent,
                }
                for name, rec in self.steps.items()
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "InstanceState":
        state = cls(
            schema_name=snapshot["schema_name"],
            instance_id=snapshot["instance_id"],
            inputs=dict(snapshot["inputs"]),
            data=dict(snapshot["data"]),
            status=InstanceStatus(snapshot["status"]),
            recovery_epoch=snapshot["recovery_epoch"],
        )
        state.invalidation_round = snapshot.get("invalidation_round", 0)
        state.events_snapshot = dict(snapshot.get("events_snapshot", {}))
        state.known_invalidations = {
            token: int(round)
            for token, round in snapshot.get("known_invalidations", {}).items()
        }
        state._exec_counter = snapshot["exec_counter"]
        for name, rec in snapshot["steps"].items():
            state.steps[name] = StepRecord(
                step=name,
                status=StepStatus(rec["status"]),
                executions=rec["executions"],
                compensations=rec["compensations"],
                reuses=rec["reuses"],
                last_inputs=dict(rec["last_inputs"]),
                last_outputs=dict(rec["last_outputs"]),
                done_at=rec["done_at"],
                exec_seq=rec["exec_seq"],
                agent=rec["agent"],
            )
        return state
