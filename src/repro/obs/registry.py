"""Metrics registry: counters, gauges and fixed-bucket histograms.

Prometheus-shaped but dependency-free.  A metric family is identified by
name; each distinct label set gets its own child instrument, created on
first use::

    registry.counter("crew_messages_total", node="agent-001").inc()
    registry.histogram("crew_step_latency", schema="Figure3").observe(2.4)

Histograms use fixed upper-bound buckets and estimate percentiles by
linear interpolation inside the winning bucket — the standard
``histogram_quantile`` approximation, good enough for p50/p95/p99 tables
and cheap enough (one bisect per observation) for simulation hot paths.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
]

#: Default latency-style buckets in simulated time units.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
    2500.0, 5000.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class CounterMetric:
    """A monotonically increasing value."""

    __slots__ = ("labels", "value")

    kind = "counter"

    def __init__(self, labels: LabelKey):
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class GaugeMetric:
    """A value that can go up and down."""

    __slots__ = ("labels", "value")

    kind = "gauge"

    def __init__(self, labels: LabelKey):
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramMetric:
    """Fixed-bucket histogram with percentile estimation.

    ``bounds`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the overflow.  ``counts[i]`` is the number of observations in
    bucket ``i`` (*not* cumulative; cumulation happens at export time).
    """

    __slots__ = ("bounds", "counts", "labels", "sum", "count", "min", "max")

    kind = "histogram"

    def __init__(self, labels: LabelKey, bounds: tuple[float, ...]):
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]).

        Linearly interpolates within the bucket containing the target
        rank; the overflow bucket reports the largest observed value.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if i >= len(self.bounds):  # overflow bucket
                    return self.max
                lower = self.bounds[i - 1] if i > 0 else min(0.0, self.min)
                upper = self.bounds[i]
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self.max  # pragma: no cover - defensive

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)


class MetricsRegistry:
    """Get-or-create registry of metric families and their children."""

    def __init__(self) -> None:
        #: family name -> (kind, help text, bucket bounds or None)
        self._families: dict[str, tuple[str, str, tuple[float, ...] | None]] = {}
        #: (family name, label key) -> instrument
        self._children: dict[tuple[str, LabelKey], Any] = {}

    # -- instrument accessors ------------------------------------------------

    def counter(self, name: str, help: str = "", **labels: Any) -> CounterMetric:
        return self._child(name, "counter", help, None, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> GaugeMetric:
        return self._child(name, "gauge", help, None, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
        **labels: Any,
    ) -> HistogramMetric:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if any(later <= earlier for later, earlier in zip(bounds[1:], bounds)):
            raise ValueError(f"histogram buckets must be strictly increasing: {bounds}")
        return self._child(name, "histogram", help, bounds, labels)

    def _child(
        self,
        name: str,
        kind: str,
        help: str,
        bounds: tuple[float, ...] | None,
        labels: Mapping[str, Any],
    ) -> Any:
        family = self._families.get(name)
        if family is None:
            self._families[name] = (kind, help, bounds)
        elif family[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family[0]}, not {kind}"
            )
        elif help and not family[1]:
            self._families[name] = (kind, help, family[2])
        key = (name, _label_key(labels))
        child = self._children.get(key)
        if child is None:
            registered_bounds = self._families[name][2]
            if kind == "histogram":
                child = HistogramMetric(key[1], registered_bounds or DEFAULT_BUCKETS)
            elif kind == "counter":
                child = CounterMetric(key[1])
            else:
                child = GaugeMetric(key[1])
            self._children[key] = child
        return child

    # -- introspection -------------------------------------------------------

    def families(self) -> list[str]:
        return sorted(self._families)

    def kind_of(self, name: str) -> str:
        return self._families[name][0]

    def help_of(self, name: str) -> str:
        return self._families[name][1]

    def children(self, name: str) -> list[Any]:
        """All children of a family, in sorted label order."""
        out = [child for (fam, __), child in self._children.items() if fam == name]
        out.sort(key=lambda c: c.labels)
        return out

    def get(self, name: str, **labels: Any) -> Any | None:
        """Existing child or None (never creates)."""
        return self._children.get((name, _label_key(labels)))

    def __iter__(self) -> Iterator[tuple[str, list[Any]]]:
        for name in self.families():
            yield name, self.children(name)

    def __len__(self) -> int:
        return len(self._children)

    # -- combination ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's observations into this one (in place).

        Counters and histogram contents add; gauges take the other
        registry's latest value.  Used to combine per-node registries into
        one fleet-wide report.
        """
        for name, (kind, help, bounds) in other._families.items():
            for child in other.children(name):
                labels = dict(child.labels)
                if kind == "counter":
                    self.counter(name, help, **labels).inc(child.value)
                elif kind == "gauge":
                    self.gauge(name, help, **labels).set(child.value)
                else:
                    mine = self.histogram(name, help, buckets=child.bounds, **labels)
                    if mine.bounds != child.bounds:
                        raise ValueError(
                            f"cannot merge histogram {name!r}: bucket mismatch"
                        )
                    for i, c in enumerate(child.counts):
                        mine.counts[i] += c
                    mine.sum += child.sum
                    mine.count += child.count
                    mine.min = min(mine.min, child.min)
                    mine.max = max(mine.max, child.max)
        return self
