"""Unified observability layer: spans, metrics registry, exporters.

The simulation's :class:`~repro.runtime.trace.Trace` answers *what happened*
as a flat, totally-ordered event log; this package adds the causal and
distributional views the paper's evaluation methodology implies but never
shows:

* :mod:`repro.obs.spans` — span-based tracing (workflow-instance, step,
  recovery-episode, coordination and rule-firing spans) with parent/child
  causality, layered on top of the flat trace;
* :mod:`repro.obs.registry` — a metrics registry of counters, gauges and
  fixed-bucket histograms (p50/p95/p99 for step latency, instance
  makespan, recovery duration, pending-rule-table depth);
* :mod:`repro.obs.export` — JSONL trace dumps, Chrome trace-event JSON
  (loadable in ``chrome://tracing`` / Perfetto) and Prometheus text-format
  metric snapshots;
* :mod:`repro.obs.logging` — structured NDJSON event logging with
  instance-id/node/Lamport correlation fields, used by the serve daemon
  and the CLI;
* :mod:`repro.obs.profile` — an in-engine instrumentation profiler
  attributing wall-clock and simulated time to named subsystem frames
  (kernel, transport, rules, WAL, dispatch, recovery), with ranked
  tables, collapsed-stack output and Chrome counter tracks.

Every control system owns one :class:`~repro.obs.spans.Tracer` and one
:class:`~repro.obs.registry.MetricsRegistry`; both follow the system's
``trace`` config switch so large benchmark runs pay (almost) nothing.
"""

from repro.obs.causal import MessageTracer
from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    render_chrome_trace,
    trace_to_jsonl,
)
from repro.obs.flight import FlightRecorder
from repro.obs.logging import StructuredLogger, correlation_fields, open_log_stream
from repro.obs.profile import FrameStat, Profiler, peak_rss_kb, profiled
from repro.obs.registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from repro.obs.spans import NULL_SPAN, Span, SpanContext, Tracer

__all__ = [
    "NULL_SPAN",
    "CounterMetric",
    "FlightRecorder",
    "FrameStat",
    "GaugeMetric",
    "HistogramMetric",
    "MessageTracer",
    "MetricsRegistry",
    "Profiler",
    "Span",
    "SpanContext",
    "StructuredLogger",
    "Tracer",
    "chrome_trace",
    "correlation_fields",
    "open_log_stream",
    "peak_rss_kb",
    "profiled",
    "prometheus_text",
    "render_chrome_trace",
    "trace_to_jsonl",
]
