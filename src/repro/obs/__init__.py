"""Unified observability layer: spans, metrics registry, exporters.

The simulation's :class:`~repro.sim.tracing.Trace` answers *what happened*
as a flat, totally-ordered event log; this package adds the causal and
distributional views the paper's evaluation methodology implies but never
shows:

* :mod:`repro.obs.spans` — span-based tracing (workflow-instance, step,
  recovery-episode, coordination and rule-firing spans) with parent/child
  causality, layered on top of the flat trace;
* :mod:`repro.obs.registry` — a metrics registry of counters, gauges and
  fixed-bucket histograms (p50/p95/p99 for step latency, instance
  makespan, recovery duration, pending-rule-table depth);
* :mod:`repro.obs.export` — JSONL trace dumps, Chrome trace-event JSON
  (loadable in ``chrome://tracing`` / Perfetto) and Prometheus text-format
  metric snapshots.

Every control system owns one :class:`~repro.obs.spans.Tracer` and one
:class:`~repro.obs.registry.MetricsRegistry`; both follow the system's
``trace`` config switch so large benchmark runs pay (almost) nothing.
"""

from repro.obs.causal import MessageTracer
from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    render_chrome_trace,
    trace_to_jsonl,
)
from repro.obs.flight import FlightRecorder
from repro.obs.registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from repro.obs.spans import NULL_SPAN, Span, SpanContext, Tracer

__all__ = [
    "NULL_SPAN",
    "CounterMetric",
    "FlightRecorder",
    "GaugeMetric",
    "HistogramMetric",
    "MessageTracer",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "Tracer",
    "chrome_trace",
    "prometheus_text",
    "render_chrome_trace",
    "trace_to_jsonl",
]
