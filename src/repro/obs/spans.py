"""Span-based tracing with parent/child causality.

A :class:`Span` is a named interval of simulated time attributed to one
node, with an optional parent span.  The standard categories emitted by
the engines are:

``workflow``
    One span per workflow instance, from WorkflowStart to commit/abort.
``step``
    One span per step dispatch, from the engine sending StepExecute (or a
    distributed agent launching the program) to the result landing.
``recovery``
    A recovery episode: opened at rollback, closed when the rollback
    origin re-completes (or at instance end), plus compensation chains.
``coordination``
    A coordination round: clearance reports, lock traffic, broadcasts.
``rule``
    An (instant) span per ECA rule firing.

Invariant: **a child span never ends after its parent.**  Ending a span
auto-closes any still-open descendants at the parent's end time, so the
span tree is always well nested and Chrome trace viewers render it
without overlap errors.

Cross-node causality uses *links*, not parentage: a span may carry a
``link_id`` naming the span that caused it on another node (the send side
of a network message).  Links are free of the nesting invariant — a
receive span may outlive the long-closed send span that caused it — so
the span *tree* stays per-node while the link mesh spans the deployment.

The tracer is deliberately cheap when disabled: :meth:`Tracer.start`
returns the shared :data:`NULL_SPAN` and every other operation is a no-op,
so hot paths can call it unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.runtime.trace import Trace

__all__ = ["NULL_SPAN", "Span", "SpanContext", "Tracer"]


@dataclass(frozen=True)
class SpanContext:
    """Immutable identity of a span (propagatable across nodes)."""

    span_id: int
    parent_id: int | None = None


class Span:
    """A named, attributed interval of simulation time."""

    __slots__ = ("attrs", "category", "end", "link_id", "name", "node",
                 "span_id", "parent_id", "start")

    is_null = False

    def __init__(
        self,
        span_id: int,
        name: str,
        category: str,
        node: str,
        start: float,
        parent_id: int | None = None,
        attrs: dict[str, Any] | None = None,
        link_id: int | None = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.link_id = link_id
        self.name = name
        self.category = category
        self.node = node
        self.start = start
        self.end: float | None = None
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.span_id, self.parent_id)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        """Elapsed simulated time (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"dur={self.duration:.3f}"
        return (f"<Span #{self.span_id} {self.category}:{self.name} "
                f"@{self.node} t={self.start:.3f} {state}>")


class _NullSpan(Span):
    """Shared sentinel returned by a disabled tracer.  All ops no-op."""

    is_null = True

    def __init__(self) -> None:
        super().__init__(-1, "null", "null", "", 0.0)

    def annotate(self, **attrs: Any) -> "Span":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Factory and registry for spans, layered over the flat trace.

    When a :class:`~repro.runtime.trace.Trace` is attached, span boundaries
    are *not* duplicated into it (the engines already record their own
    flat events); instead the exporters in :mod:`repro.obs.export` merge
    both views.  ``tracer.trace`` keeps the association explicit.
    """

    def __init__(self, trace: Trace | None = None, enabled: bool = True):
        self.enabled = enabled
        self.trace = trace
        self.spans: list[Span] = []
        self._next_id = 1
        #: open children per parent span id, for end-time clamping.
        self._open_children: dict[int, list[Span]] = {}

    # -- span lifecycle ------------------------------------------------------

    def start(
        self,
        name: str,
        category: str,
        node: str,
        time: float,
        parent: Span | None = None,
        link: "Span | int | None" = None,
        **attrs: Any,
    ) -> Span:
        """Open a new span (returns :data:`NULL_SPAN` when disabled).

        ``link`` names a causal predecessor on another node (span or span
        id); unlike ``parent`` it does not constrain nesting.
        """
        if not self.enabled:
            return NULL_SPAN
        parent_id = None
        if parent is not None and not parent.is_null:
            parent_id = parent.span_id
        link_id: int | None
        if isinstance(link, Span):
            link_id = None if link.is_null else link.span_id
        else:
            link_id = link
        span = Span(self._next_id, name, category, node, time,
                    parent_id=parent_id, attrs=dict(attrs) if attrs else None,
                    link_id=link_id)
        self._next_id += 1
        self.spans.append(span)
        if parent_id is not None:
            self._open_children.setdefault(parent_id, []).append(span)
        return span

    def end(self, span: Span, time: float, **attrs: Any) -> None:
        """Close ``span`` at ``time``; auto-closes open descendants first.

        The auto-close keeps the invariant that a child span never ends
        after its parent even when in-flight work (steps, compensation
        chains) is cut short by a commit or abort.
        """
        if not self.enabled or span.is_null or span.end is not None:
            return
        for child in self._open_children.pop(span.span_id, ()):
            if child.end is None:
                self.end(child, time, auto_closed=True)
        span.end = time
        if attrs:
            span.attrs.update(attrs)

    def instant(
        self,
        name: str,
        category: str,
        node: str,
        time: float,
        parent: Span | None = None,
        link: "Span | int | None" = None,
        **attrs: Any,
    ) -> Span:
        """A zero-duration span (rendered as an instant event)."""
        span = self.start(name, category, node, time, parent=parent,
                          link=link, **attrs)
        self.end(span, time)
        return span

    def finish(self, time: float) -> int:
        """Close every still-open span at ``time``; returns how many."""
        closed = 0
        for span in self.spans:
            if span.end is None:
                self.end(span, time, auto_closed=True)
                closed += 1
        self._open_children.clear()
        return closed

    # -- queries -------------------------------------------------------------

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

    def by_category(self, category: str) -> list[Span]:
        return [s for s in self.spans if s.category == category]

    def open_spans(self) -> list[Span]:
        return [s for s in self.spans if s.end is None]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, span_id: int) -> Span | None:
        for span in self.spans:
            if span.span_id == span_id:
                return span
        return None

    def check_nesting(self) -> list[str]:
        """Violations of the parent/child interval invariant (for tests)."""
        by_id = {s.span_id: s for s in self.spans}
        problems = []
        for span in self.spans:
            if span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None:
                problems.append(f"span #{span.span_id} has unknown parent")
                continue
            if span.start < parent.start:
                problems.append(
                    f"span #{span.span_id} starts before parent #{parent.span_id}"
                )
            if (span.end is not None and parent.end is not None
                    and span.end > parent.end):
                problems.append(
                    f"span #{span.span_id} ends after parent #{parent.span_id}"
                )
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} spans={len(self.spans)}>"
