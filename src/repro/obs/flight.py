"""Per-node flight recorder: a bounded ring of recent transport events.

Full tracing is often disabled in benchmark runs, which is exactly when a
crash is hardest to diagnose.  The flight recorder keeps the last
``capacity`` send/receive events per node in a fixed-size ring (O(1) per
message, no allocation beyond the event dict) and is snapshotted into the
trace — via :meth:`repro.runtime.trace.Trace.snapshot`, which bypasses the
``enabled`` flag — when the node crashes or a step fails.

The recorder is injected into the sim layer duck-typed (see
:mod:`repro.obs.causal` for the pattern): the control system sets
``network.flight_factory`` / ``network.flight_sink`` before nodes are
constructed.
"""

from __future__ import annotations

from collections import deque

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Fixed-capacity ring of a node's recent transport events."""

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self.recorded = 0

    def note(
        self,
        time: float,
        direction: str,
        interface: str,
        peer: str,
        msg_id: int,
        lamport: int,
    ) -> None:
        """Append one transport event (evicting the oldest when full)."""
        self.recorded += 1
        self._events.append({
            "time": time,
            "dir": direction,
            "interface": interface,
            "peer": peer,
            "msg_id": msg_id,
            "lamport": lamport,
        })

    def snapshot(self) -> list[dict]:
        """The retained window, oldest first (copies, safe to serialize)."""
        return [dict(event) for event in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlightRecorder {len(self._events)}/{self.capacity} "
                f"recorded={self.recorded}>")
