"""Exporters: JSONL traces, Chrome trace-event JSON, Prometheus text.

Three standard formats so runs can be inspected with off-the-shelf
tooling instead of ad-hoc scripts:

* :func:`trace_to_jsonl` — one JSON object per line; flat trace records
  (``{"type": "record", ...}``) merged with spans (``{"type": "span",
  ...}``) in time order, suitable for ``jq``/pandas post-processing.
* :func:`chrome_trace` — the Chrome trace-event format (JSON object with
  a ``traceEvents`` array) loadable in ``chrome://tracing`` and Perfetto.
  Spans become complete (``"ph": "X"``) events, flat trace records become
  instant (``"ph": "i"``) events; nodes map to threads.
* :func:`prometheus_text` — the Prometheus exposition text format
  (``# HELP`` / ``# TYPE`` plus samples, histogram children expanded into
  cumulative ``_bucket{le=...}`` series with ``_sum`` and ``_count``).

Simulated time is unitless; Chrome/Perfetto expect microseconds.  One
simulated time unit is exported as one millisecond (``ts = t * 1000``)
so typical runs land in a readable zoom range.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.obs.registry import HistogramMetric, MetricsRegistry
from repro.obs.spans import Tracer
from repro.runtime.trace import Trace

__all__ = [
    "chrome_trace",
    "prometheus_text",
    "render_chrome_trace",
    "trace_to_jsonl",
]

#: Exported microseconds per simulated time unit (1 unit -> 1 ms).
US_PER_TIME_UNIT = 1000.0


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def _safe_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    return {k: _json_safe(v) for k, v in attrs.items()}


# -- JSONL ----------------------------------------------------------------


def trace_to_jsonl(
    trace: Trace | None,
    tracer: Tracer | None = None,
    nodes: set[str] | None = None,
    categories: set[str] | None = None,
) -> str:
    """Merge flat records and spans into time-ordered JSON lines.

    ``nodes`` restricts both record and span rows to the named nodes;
    ``categories`` restricts span rows to the named span categories
    (flat records have no category and are unaffected).
    """
    rows: list[tuple[float, int, dict[str, Any]]] = []
    order = 0
    if trace is not None:
        for rec in trace:
            if nodes is not None and rec.node not in nodes:
                continue
            rows.append((rec.time, order, {
                "type": "record",
                "time": rec.time,
                "node": rec.node,
                "kind": rec.kind,
                "detail": _safe_attrs(dict(rec.detail)),
            }))
            order += 1
    if tracer is not None:
        for span in tracer:
            if nodes is not None and span.node not in nodes:
                continue
            if categories is not None and span.category not in categories:
                continue
            rows.append((span.start, order, {
                "type": "span",
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "link_id": span.link_id,
                "name": span.name,
                "category": span.category,
                "node": span.node,
                "start": span.start,
                "end": span.end,
                "duration": span.duration,
                "open": span.end is None,
                "attrs": _safe_attrs(span.attrs),
            }))
            order += 1
    rows.sort(key=lambda r: (r[0], r[1]))
    lines = [json.dumps(row, sort_keys=True) for __, ___, row in rows]
    if trace is not None and trace.dropped:
        # A truncated trace must say so in-band: one trailing meta line
        # so downstream consumers can detect the loss.
        lines.append(json.dumps({
            "type": "meta",
            "dropped_records": trace.dropped,
            "drop_policy": "oldest" if trace.ring else "newest",
            "capacity": trace.capacity,
        }, sort_keys=True))
    return "\n".join(lines)


# -- Chrome trace-event format --------------------------------------------


def chrome_trace(
    tracer: Tracer | None,
    trace: Trace | None = None,
    process_name: str = "crew-sim",
    open_span_end: float | None = None,
    nodes: set[str] | None = None,
    categories: set[str] | None = None,
) -> dict[str, Any]:
    """Build a Chrome trace-event document (``chrome://tracing``/Perfetto).

    Nodes become threads of a single process; spans become complete
    events with durations, flat trace records become thread-scoped
    instant events.  Still-open spans are skipped by default (callers
    should run ``tracer.finish(now)`` first); pass ``open_span_end`` to
    render them instead as complete events ending at that time, tagged
    ``"open": true`` in their args.

    Cross-node span links become flow events (``ph: "s"``/``"f"``) so
    message causality renders as arrows between threads.  ``nodes`` /
    ``categories`` filter the exported spans and records (flow events are
    only emitted when both ends survive the filter).
    """
    events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}

    def tid_of(node: str) -> int:
        if node not in tids:
            tids[node] = len(tids) + 1
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[node],
                "args": {"name": node},
            })
        return tids[node]

    events.append({
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 0,
        "args": {"name": process_name},
    })
    exported: dict[int, Any] = {}
    by_id: dict[int, Any] = {}
    if tracer is not None:
        by_id = {s.span_id: s for s in tracer}
        for span in tracer:
            if span.end is None and open_span_end is None:
                continue
            if nodes is not None and span.node not in nodes:
                continue
            if categories is not None and span.category not in categories:
                continue
            end = span.end if span.end is not None else open_span_end
            args = _safe_attrs(span.attrs)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            if span.link_id is not None:
                args["link_id"] = span.link_id
            if span.end is None:
                args["open"] = True
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * US_PER_TIME_UNIT,
                "dur": max((end - span.start) * US_PER_TIME_UNIT, 1.0),
                "pid": 1,
                "tid": tid_of(span.node),
                "args": args,
            })
            exported[span.span_id] = span
        # Flow events: an arrow from the linked (sender-side) span to the
        # linking span.  Flow ids reuse the target span's id (unique).
        for span in exported.values():
            link = by_id.get(span.link_id) if span.link_id is not None else None
            if link is None or link.span_id not in exported:
                continue
            events.append({
                "name": "causal",
                "cat": "flow",
                "ph": "s",
                "id": span.span_id,
                "ts": link.start * US_PER_TIME_UNIT,
                "pid": 1,
                "tid": tid_of(link.node),
            })
            events.append({
                "name": "causal",
                "cat": "flow",
                "ph": "f",
                "bp": "e",
                "id": span.span_id,
                "ts": span.start * US_PER_TIME_UNIT,
                "pid": 1,
                "tid": tid_of(span.node),
            })
    if trace is not None:
        for rec in trace:
            if nodes is not None and rec.node not in nodes:
                continue
            events.append({
                "name": rec.kind,
                "cat": "trace",
                "ph": "i",
                "s": "t",
                "ts": rec.time * US_PER_TIME_UNIT,
                "pid": 1,
                "tid": tid_of(rec.node),
                "args": _safe_attrs(dict(rec.detail)),
            })
    document: dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if trace is not None and trace.dropped:
        document["metadata"] = {
            "dropped_records": trace.dropped,
            "drop_policy": "oldest" if trace.ring else "newest",
            "capacity": trace.capacity,
        }
    return document


def render_chrome_trace(
    tracer: Tracer | None,
    trace: Trace | None = None,
    process_name: str = "crew-sim",
    open_span_end: float | None = None,
    nodes: set[str] | None = None,
    categories: set[str] | None = None,
) -> str:
    """:func:`chrome_trace` serialized to a JSON string."""
    return json.dumps(
        chrome_trace(tracer, trace, process_name=process_name,
                     open_span_end=open_span_end, nodes=nodes,
                     categories=categories),
        indent=1,
    )


# -- Prometheus text format ------------------------------------------------


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double-quote and newline must be backslash-escaped."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """HELP text allows everything except raw backslash/newline."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus exposition text format."""
    lines: list[str] = []
    for name, children in registry:
        kind = registry.kind_of(name)
        help_text = registry.help_of(name)
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for child in children:
            if isinstance(child, HistogramMetric):
                cumulative = 0
                for bound, count in zip(
                    (*child.bounds, math.inf), child.counts
                ):
                    cumulative += count
                    le = _fmt_labels(child.labels, f'le="{_fmt_value(bound)}"')
                    lines.append(f"{name}_bucket{le} {cumulative}")
                labels = _fmt_labels(child.labels)
                lines.append(f"{name}_sum{labels} {_fmt_value(child.sum)}")
                lines.append(f"{name}_count{labels} {child.count}")
            else:
                labels = _fmt_labels(child.labels)
                lines.append(f"{name}{labels} {_fmt_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")
