"""Structured JSON logging with instance/Lamport correlation fields.

The serve daemon's operational events — submissions, outcomes, executor
retries, drain transitions, trace-buffer losses — need to be greppable
and joinable against the causal trace, not prose on stderr.
:class:`StructuredLogger` emits one JSON object per line (NDJSON), every
record carrying:

* ``ts`` — wall-clock Unix epoch seconds (float);
* ``level`` / ``event`` — severity and a dotted event name
  (``serve.started``, ``instance.finished``, ``executor.retry``, ...);
* the logger's *bound* fields (service name, architecture, ...);
* per-call fields, by convention the correlation trio where it applies:
  ``instance`` (the workflow instance id), ``node`` (the engine/agent
  node name) and ``lamport`` (the node's Lamport stamp) — the same keys
  the trace records and NDJSON event stream use, so one ``jq`` join
  lines a log record up with the causal trace of the run.

Loggers are cheap and hierarchical: :meth:`StructuredLogger.bind`
returns a child sharing the parent's stream and level gate with extra
bound fields.  A disabled logger (``StructuredLogger(stream=None)``)
costs one integer compare per call, so runtime-layer hooks can log
unconditionally.

The runtime layer itself cannot import this module (``obs`` sits above
``runtime`` in the layering contract); the service injects logging
callbacks into the realtime executor's duck-typed hooks instead — the
same pattern the metrics registry and profiler use.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, IO

__all__ = ["LEVELS", "StructuredLogger", "correlation_fields", "open_log_stream"]

#: Severity order; records below the logger's threshold are discarded.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def correlation_fields(detail: Any) -> dict[str, Any]:
    """Extract the correlation trio from a mapping (trace-record detail).

    Returns whichever of ``instance`` / ``node`` / ``lamport`` are
    present, so ``logger.info("x", **correlation_fields(rec.detail))``
    stamps a log record with the same join keys as the trace.
    """
    fields: dict[str, Any] = {}
    for key in ("instance", "node", "lamport"):
        value = detail.get(key) if hasattr(detail, "get") else None
        if value is not None:
            fields[key] = value
    return fields


class StructuredLogger:
    """NDJSON event logger with bound fields and a level gate.

    ``stream=None`` disables output entirely (every call short-circuits
    on the level gate); pass ``sys.stderr`` (the daemon default), a file
    handle, or any object with ``write``/``flush``.  ``clock`` overrides
    the wall-clock source (tests pin it for deterministic ``ts``).
    """

    __slots__ = ("_bound", "_clock", "_min", "_sink", "stream")

    def __init__(
        self,
        stream: IO[str] | None = None,
        min_level: str = "info",
        clock: Callable[[], float] | None = None,
        **bound: Any,
    ):
        if min_level not in LEVELS:
            raise ValueError(
                f"min_level must be one of {sorted(LEVELS)}, got {min_level!r}"
            )
        self.stream = stream
        self._min = LEVELS[min_level] if stream is not None else _OFF
        self._clock = clock if clock is not None else time.time
        self._bound = dict(bound)
        #: Optional tap receiving every record dict that passes the level
        #: gate (before serialization) — `repro top` and tests hook this.
        self._sink: Callable[[dict[str, Any]], None] | None = None

    # -- construction ------------------------------------------------------

    def bind(self, **fields: Any) -> "StructuredLogger":
        """A child logger with extra bound fields (shared stream/gate)."""
        child = StructuredLogger.__new__(StructuredLogger)
        child.stream = self.stream
        child._min = self._min
        child._clock = self._clock
        child._bound = {**self._bound, **fields}
        child._sink = self._sink
        return child

    @property
    def enabled(self) -> bool:
        return self._min is not _OFF

    # -- emission ----------------------------------------------------------

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Emit one record; unknown levels raise, gated levels are free."""
        severity = LEVELS[level]
        if severity < self._min:
            return
        record: dict[str, Any] = {
            "ts": round(self._clock(), 6),
            "level": level,
            "event": event,
        }
        record.update(self._bound)
        record.update(fields)
        if self._sink is not None:
            self._sink(record)
        if self.stream is not None:
            try:
                self.stream.write(
                    json.dumps(record, sort_keys=True, default=str) + "\n"
                )
                self.stream.flush()
            except (ValueError, OSError):  # pragma: no cover - closed stream
                pass

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "off" if not self.enabled else f"min={self._min}"
        return f"<StructuredLogger {state} bound={sorted(self._bound)}>"


#: Sentinel gate above every level: a disabled logger never formats.
_OFF = LEVELS["error"] + 1


def open_log_stream(path: str | None) -> IO[str] | None:
    """Resolve a ``--log-out`` value: ``None``/"-" -> stderr, "off" ->
    disabled, anything else -> append-mode file handle."""
    if path == "off":
        return None
    if path is None or path == "-":
        return sys.stderr
    return open(path, "a", encoding="utf-8", buffering=1)
