"""In-engine instrumentation profiler attributing cost to subsystem frames.

``cProfile`` answers "which Python function is hot" but not "which
*subsystem* is hot" — a six-config sweep spends its time across the DES
kernel, the transport, the rule engine, the WAL and the recovery
protocols, and the function-level view shreds those into hundreds of
rows.  :class:`Profiler` instead maintains an explicit frame stack of
*named subsystem frames* (``kernel.event``, ``transport.send``,
``rules.pump``, ``wal.append``, ``dispatch.wi``, ``recovery.ocr``, ...)
pushed and popped at the same duck-typed observation points the metrics
registry and fault injector already use, so ``sim``/``rules``/``storage``
stay free of ``obs`` imports and the disabled mode costs one ``is None``
branch per hook (guarded by ``benchmarks/bench_obs_overhead.py``).

Each frame accumulates call count, cumulative and self wall time
(``perf_counter_ns``), and *simulated* time — kernel event frames are
credited with the simulation-clock advance they caused, so the profile
answers both "where does wall time go" and "where does simulated time
go".  The profiler also keeps collapsed call paths (flamegraph format),
periodic samples for Chrome counter tracks, and transport/queue-depth
counters, and can publish everything into a
:class:`~repro.obs.registry.MetricsRegistry` for the Prometheus exporter.

One profiler may be installed across several systems in sequence (a full
sweep); frames simply accumulate.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable

from repro.obs.export import US_PER_TIME_UNIT
from repro.obs.registry import MetricsRegistry

try:  # pragma: no cover - absent only off-POSIX
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

__all__ = ["EVENT_FRAMES", "FrameStat", "Profiler", "peak_rss_kb", "profiled"]


def profiled(frame_name: str) -> Callable:
    """Decorator running a node method inside a named profiler frame.

    For engine-layer methods on objects with a ``network`` attribute:
    when ``network.profile`` is a :class:`Profiler` the call is bracketed
    by ``push(frame_name)``/``pop``; when it is ``None`` (the default)
    the only cost is one attribute read and an extra call — acceptable
    off the transport/kernel hot paths the <5% gate covers.
    """
    def wrap(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def inner(self: Any, *args: Any, **kwargs: Any) -> Any:
            profile = self.network.profile
            if profile is None:
                return fn(self, *args, **kwargs)
            profile.push(frame_name)
            try:
                return fn(self, *args, **kwargs)
            finally:
                profile.pop()
        return inner
    return wrap


def peak_rss_kb() -> int | None:
    """Peak resident-set size of this process in KiB (``None`` off-POSIX).

    ``ru_maxrss`` is a high-water mark: per-task readings taken in
    sequence are monotone, so a task's value means "peak RSS of the
    worker *by the end of* this task".
    """
    if _resource is None:
        return None
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


#: Scheduled-action ``__qualname__``s mapped to canonical subsystem frame
#: names.  Anything not listed profiles as ``event:<qualname>`` — new
#: event types degrade to legible names instead of vanishing.
EVENT_FRAMES = {
    "Network._arrive": "transport.arrive",
    "Node.schedule_causal.<locals>.run": "kernel.deferred",
    "ControlSystem.schedule_frontend.<locals>.attempt": "frontend.submit",
    "AgentNavigationMixin._complete_program": "program.complete",
    "ApplicationAgentNode._complete_step": "program.complete",
    "ApplicationAgentNode._complete_compensation": "program.compensate",
    "AgentFailureMixin._watchdog": "recovery.watchdog",
}


class FrameStat:
    """Aggregate cost of one named subsystem frame (one profile row)."""

    __slots__ = ("name", "calls", "cum_ns", "self_ns", "sim_units")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.cum_ns = 0
        self.self_ns = 0
        self.sim_units = 0.0

    @property
    def self_ms(self) -> float:
        return self.self_ns / 1e6

    @property
    def cum_ms(self) -> float:
        return self.cum_ns / 1e6

    def as_dict(self) -> dict[str, Any]:
        return {
            "frame": self.name,
            "calls": self.calls,
            "self_ms": round(self.self_ms, 3),
            "cum_ms": round(self.cum_ms, 3),
            "sim_units": round(self.sim_units, 3),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FrameStat {self.name} calls={self.calls} "
                f"self={self.self_ms:.1f}ms>")


class Profiler:
    """Low-overhead push/pop frame profiler for the simulation stack.

    Hook sites hold a duck-typed ``profile`` attribute (``None`` by
    default); when a profiler is :meth:`install`-ed they call
    :meth:`push`/:meth:`pop` (or :meth:`begin_event`/:meth:`end_event`
    for kernel events) around their hot sections.  Self time is
    cumulative time minus time spent in child frames, so nested hooks
    (a WAL append inside a kernel event) attribute correctly.
    """

    def __init__(self, sample_interval: int = 256):
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self._stats: dict[str, FrameStat] = {}
        #: Live stack entries: ``[stat, start_ns, child_ns, path]``.
        self._stack: list[list[Any]] = []
        self._path_cache: dict[tuple[str, str], str] = {}
        self._collapsed: dict[str, int] = {}
        #: Action -> frame-name cache keyed by code object (shared across
        #: closure instances, so the cache stays bounded).
        self._names: dict[Any, str] = {}
        self._sample_interval = sample_interval
        self._born_ns = time.perf_counter_ns()
        self.events = 0
        self.messages = 0
        self.max_queue_depth = 0
        #: ``(wall_ns, sim_time, events, messages, queue_depth)`` every
        #: ``sample_interval`` events — the Chrome counter-track source.
        self.samples: list[tuple[int, float, int, int, int]] = []

    # -- frame stack -------------------------------------------------------

    def push(self, name: str, sim_units: float = 0.0) -> None:
        """Enter a named frame (must be balanced by :meth:`pop`)."""
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = FrameStat(name)
        stat.calls += 1
        stat.sim_units += sim_units
        if self._stack:
            key = (self._stack[-1][3], name)
            path = self._path_cache.get(key)
            if path is None:
                path = self._path_cache[key] = key[0] + ";" + name
        else:
            path = name
        self._stack.append([stat, time.perf_counter_ns(), 0, path])

    def pop(self) -> None:
        """Leave the innermost frame, attributing self/cumulative time."""
        stat, start_ns, child_ns, path = self._stack.pop()
        elapsed = time.perf_counter_ns() - start_ns
        own = elapsed - child_ns
        stat.cum_ns += elapsed
        stat.self_ns += own
        self._collapsed[path] = self._collapsed.get(path, 0) + own
        if self._stack:
            self._stack[-1][2] += elapsed

    def depth(self) -> int:
        """Current live frame depth (0 when balanced — test hook)."""
        return len(self._stack)

    # -- kernel hooks ------------------------------------------------------

    def begin_event(self, action: Any, now: float, sim_dt: float,
                    queue_depth: int) -> None:
        """Kernel hook: one scheduled event is about to fire.

        ``sim_dt`` is the simulation-clock advance this event caused, so
        simulated time lands on the frame that consumed it.  The frame
        name derives from the action's ``__qualname__`` via
        :data:`EVENT_FRAMES`.
        """
        self.events += 1
        if queue_depth > self.max_queue_depth:
            self.max_queue_depth = queue_depth
        if self.events % self._sample_interval == 0:
            self.samples.append((
                time.perf_counter_ns() - self._born_ns, now,
                self.events, self.messages, queue_depth,
            ))
        func = getattr(action, "__func__", action)
        key = getattr(func, "__code__", None)
        if key is None:
            key = getattr(func, "__qualname__", None) or type(func).__name__
        name = self._names.get(key)
        if name is None:
            qual = getattr(func, "__qualname__", None) or repr(func)
            name = EVENT_FRAMES.get(qual)
            if name is None:
                name = "event:" + qual.replace(".<locals>", "")
            self._names[key] = name
        self.push(name, sim_dt)

    def end_event(self) -> None:
        """Kernel hook: the event that :meth:`begin_event` opened is done."""
        self.pop()

    # -- installation ------------------------------------------------------

    def install(self, system: Any) -> "Profiler":
        """Attach to a built control system via its duck-typed hooks.

        Sets ``profile`` on the simulator, the network and every node's
        durable-store WALs.  Components built *after* installation
        (per-instance rule engines, engines rebuilt by crash recovery)
        pick the profiler up from ``network.profile`` at construction.
        Returns ``self`` so installs chain across a sweep.
        """
        system.profiler = self
        system.simulator.profile = self
        network = system.network
        network.profile = self
        for name in network.node_names():
            node = network.node(name)
            for obj in list(vars(node).values()):
                wal = getattr(obj, "wal", None)
                if wal is not None and hasattr(wal, "appends"):
                    wal.profile = self
        return self

    # -- reporting ---------------------------------------------------------

    def top_frames(self, limit: int | None = None) -> list[FrameStat]:
        """Frames ranked by self wall time, hottest first."""
        ranked = sorted(self._stats.values(),
                        key=lambda s: s.self_ns, reverse=True)
        return ranked if limit is None else ranked[:limit]

    def total_wall_ns(self) -> int:
        """Total attributed wall time (sum of all frames' self time)."""
        return sum(s.self_ns for s in self._stats.values())

    def render_top(self, limit: int = 15) -> str:
        """Ranked top-frames table (plain text)."""
        total_self = sum(s.self_ns for s in self._stats.values()) or 1
        header = (f"{'frame':<28} {'calls':>9} {'self ms':>10} "
                  f"{'cum ms':>10} {'self %':>7} {'sim units':>11}")
        lines = [header, "-" * len(header)]
        for stat in self.top_frames(limit):
            lines.append(
                f"{stat.name:<28} {stat.calls:>9} {stat.self_ms:>10.2f} "
                f"{stat.cum_ms:>10.2f} {100 * stat.self_ns / total_self:>6.1f}% "
                f"{stat.sim_units:>11.1f}"
            )
        remaining = len(self._stats) - limit
        if remaining > 0:
            lines.append(f"... ({remaining} more frames)")
        return "\n".join(lines)

    def collapsed(self) -> str:
        """Collapsed call stacks, flamegraph-compatible.

        One ``path;to;frame <count>`` line per distinct stack, count in
        microseconds of self time — feed directly to ``flamegraph.pl``
        or speedscope.
        """
        lines = [f"{path} {max(ns // 1000, 1)}"
                 for path, ns in sorted(self._collapsed.items())
                 if ns > 0]
        return "\n".join(lines)

    def chrome_counter_events(self) -> list[dict[str, Any]]:
        """Chrome trace-event counter tracks (``"ph": "C"``).

        Timestamps use *wall* time so tracks stay monotone when one
        profiler spans several sequential runs (a full sweep), unlike the
        per-run simulated clock.
        """
        events: list[dict[str, Any]] = []
        prev: tuple[int, float, int, int, int] | None = None
        for sample in self.samples:
            wall_ns, sim_time, n_events, n_messages, depth = sample
            ts = wall_ns / 1000.0
            events.append({"name": "queue_depth", "ph": "C", "pid": 1,
                           "ts": ts, "args": {"pending": depth}})
            events.append({"name": "messages", "ph": "C", "pid": 1,
                           "ts": ts, "args": {"sent": n_messages}})
            events.append({"name": "sim_time", "ph": "C", "pid": 1,
                           "ts": ts,
                           "args": {"t": round(sim_time * US_PER_TIME_UNIT)}})
            if prev is not None and wall_ns > prev[0]:
                rate = (n_events - prev[2]) / ((wall_ns - prev[0]) / 1e9)
                events.append({"name": "events_per_sec", "ph": "C", "pid": 1,
                               "ts": ts, "args": {"rate": round(rate, 1)}})
            prev = sample
        return events

    def chrome_counter_trace(self) -> dict[str, Any]:
        """A standalone Chrome trace document of the counter tracks."""
        meta = {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                "args": {"name": "crew-profile"}}
        return {"traceEvents": [meta, *self.chrome_counter_events()],
                "displayTimeUnit": "ms"}

    def summary(self) -> dict[str, Any]:
        """JSON-safe aggregate view (frames ranked, counters, samples)."""
        return {
            "events": self.events,
            "messages": self.messages,
            "max_queue_depth": self.max_queue_depth,
            "messages_per_event": round(self.messages / self.events, 4)
            if self.events else 0.0,
            "frames": [s.as_dict() for s in self.top_frames()],
            "samples": len(self.samples),
        }

    def publish(self, registry: MetricsRegistry) -> None:
        """Flow the aggregated profile into a metrics registry.

        Per-frame counters carry a ``frame`` label so the Prometheus
        exposition renders one series per subsystem.
        """
        for stat in self.top_frames():
            registry.counter(
                "crew_profile_frame_calls_total",
                "Profiler frame entries.", frame=stat.name,
            ).inc(stat.calls)
            registry.counter(
                "crew_profile_frame_self_seconds_total",
                "Self wall time attributed to a profiler frame.",
                frame=stat.name,
            ).inc(stat.self_ns / 1e9)
            registry.counter(
                "crew_profile_frame_cum_seconds_total",
                "Cumulative wall time attributed to a profiler frame.",
                frame=stat.name,
            ).inc(stat.cum_ns / 1e9)
            registry.counter(
                "crew_profile_frame_sim_units_total",
                "Simulated time attributed to a profiler frame.",
                frame=stat.name,
            ).inc(stat.sim_units)
        registry.counter(
            "crew_profile_events_total", "Kernel events profiled.",
        ).inc(self.events)
        registry.counter(
            "crew_profile_messages_total", "Transport sends profiled.",
        ).inc(self.messages)
        registry.gauge(
            "crew_profile_max_queue_depth",
            "Deepest kernel event queue observed while profiling.",
        ).set(self.max_queue_depth)
        if self.events:
            registry.gauge(
                "crew_profile_messages_per_event",
                "Mean transport sends per kernel event (messages-per-tick).",
            ).set(self.messages / self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Profiler frames={len(self._stats)} events={self.events} "
                f"depth={len(self._stack)}>")
