"""Cross-node causal propagation for the span tracer.

The simulation's transport (:mod:`repro.runtime.transport`) cannot import the
observability layer, so causal tracing is injected duck-typed: the owning
control system sets ``network.causal`` to a :class:`MessageTracer` before
any node is constructed, and the network/node hot paths call ``on_send``
/ ``on_receive`` through that attribute.

Each physical message produces two instant spans in the ``message``
category:

* a **send span** on the sender, linked (via ``link_id``) to the span
  that was active on the sender when the message left, and
* a **recv span** on the receiver, linked to the send span (whose id
  travelled inside the message as ``Message.send_span``).

Both carry the message id and the Lamport clock observed at their end of
the edge, so an offline analyzer can rebuild the full cross-node causal
chain — and detect broken ones — from the exported trace alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.spans import Span, Tracer
from repro.runtime.metrics import Mechanism

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.messages import Message
    from repro.runtime.node import Node

__all__ = ["MessageTracer"]


class MessageTracer:
    """Stamps every network message with linked send/recv spans."""

    def __init__(self, tracer: Tracer):
        self.tracer = tracer

    def on_send(
        self,
        src_node: "Node",
        dst: str,
        msg_id: int,
        interface: str,
        mechanism: Mechanism,
        lamport: int,
        payload: Mapping[str, Any],
        now: float,
    ) -> int | None:
        """Record the sender-side message span; returns its id (or None)."""
        if not self.tracer.enabled:
            return None
        link = src_node.current_span
        if link is not None and link.is_null:
            link = None
        attrs: dict[str, Any] = {
            "msg_id": msg_id,
            "src": src_node.name,
            "dst": dst,
            "mechanism": mechanism.value,
            "lamport": lamport,
            "direction": "send",
        }
        instance = payload.get("instance_id")
        if instance is not None:
            attrs["instance"] = instance
        span = self.tracer.instant(
            f"send:{interface}", "message", src_node.name, now,
            link=link, **attrs,
        )
        return None if span.is_null else span.span_id

    def on_receive(self, node: "Node", message: "Message") -> Span:
        """Record the receiver-side message span, linked to the send span.

        Called *after* the node merged its Lamport clock, so the recorded
        ``lamport`` is the post-merge value (always > the send side's).
        """
        attrs: dict[str, Any] = {
            "msg_id": message.msg_id,
            "src": message.src,
            "dst": node.name,
            "mechanism": message.mechanism.value,
            "lamport": node.lamport_clock,
            "direction": "recv",
        }
        instance = message.payload.get("instance_id")
        if instance is not None:
            attrs["instance"] = instance
        return self.tracer.instant(
            f"recv:{message.interface}", "message", node.name,
            node.simulator.now, link=message.send_span, **attrs,
        )
