"""CREW — Coordinated Recovery and Execution of Workflows.

A complete reproduction of *"Failure Handling and Coordinated Execution of
Concurrent Workflows"* (M. Kamath, K. Ramamritham, ICDE 1998) and its
extended technical report (CMPSCI TR 98-28): the rule-based workflow
management system with opportunistic compensation and re-execution (OCR),
coordinated-execution building blocks, and the centralized / parallel /
distributed workflow control architectures, all running on a deterministic
discrete-event simulator.

Quickstart::

    from repro import (
        SchemaBuilder, DistributedControlSystem, SystemConfig,
    )

    system = DistributedControlSystem(SystemConfig(seed=1), num_agents=8)
    builder = SchemaBuilder("Hello", inputs=["x"])
    builder.step("S1", inputs=["WF.x"], outputs=["y"])
    builder.step("S2", inputs=["S1.y"], outputs=["z"])
    builder.sequence("S1", "S2")
    builder.output("z", "S2.z")
    system.register_schema(builder.build())
    instance = system.start_workflow("Hello", {"x": 41})
    system.run()
    print(system.outcome(instance).outputs)
"""

from repro.engines import (
    CentralizedControlSystem,
    ControlSystem,
    DistributedControlSystem,
    FrontEndDatabase,
    InstanceOutcome,
    ParallelControlSystem,
    SystemConfig,
)
from repro.errors import CrewError
from repro.laws import load_laws
from repro.model import (
    AlwaysReexecute,
    CompiledSchema,
    ConditionPolicy,
    CRDecision,
    CRPolicy,
    IncrementalIfInputsChanged,
    JoinKind,
    MutualExclusionSpec,
    RelativeOrderSpec,
    ReuseIfInputsUnchanged,
    RollbackDependencySpec,
    SchemaBuilder,
    StepDef,
    StepType,
    WorkflowSchema,
    compile_schema,
)
from repro.sim import Mechanism
from repro.storage import InstanceStatus, StepStatus
from repro.workloads import (
    PAPER_DEFAULTS,
    WorkloadGenerator,
    WorkloadParameters,
    figure3_workflow,
    order_processing,
    travel_booking,
)

# Resolve the installed distribution's version; fall back to the
# pyproject value when running from a source tree without installation.
try:
    from importlib.metadata import PackageNotFoundError, version as _dist_version

    try:
        __version__ = _dist_version("repro")
    except PackageNotFoundError:
        __version__ = "1.0.0"
except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
    __version__ = "1.0.0"

__all__ = [
    "AlwaysReexecute",
    "CentralizedControlSystem",
    "CompiledSchema",
    "ConditionPolicy",
    "ControlSystem",
    "CRDecision",
    "CRPolicy",
    "CrewError",
    "DistributedControlSystem",
    "FrontEndDatabase",
    "IncrementalIfInputsChanged",
    "InstanceOutcome",
    "InstanceStatus",
    "JoinKind",
    "Mechanism",
    "MutualExclusionSpec",
    "PAPER_DEFAULTS",
    "ParallelControlSystem",
    "RelativeOrderSpec",
    "ReuseIfInputsUnchanged",
    "RollbackDependencySpec",
    "SchemaBuilder",
    "StepDef",
    "StepStatus",
    "StepType",
    "SystemConfig",
    "WorkflowGenerator",
    "WorkflowParameters",
    "WorkflowSchema",
    "compile_schema",
    "figure3_workflow",
    "load_laws",
    "order_processing",
    "travel_booking",
]
