"""The three workflow control architectures of the paper (Figure 6).

* :class:`~repro.engines.centralized.CentralizedControlSystem` — one
  engine owning all state; agents only execute steps.
* :class:`~repro.engines.parallel.ParallelControlSystem` — ``e`` engines
  sharing the load, one owner per instance, broadcast coordination.
* :class:`~repro.engines.distributed.DistributedControlSystem` — no
  engine; agents navigate via workflow packets and the 16 workflow
  interfaces of Table 1.

All three expose the same facade (:class:`~repro.engines.base.ControlSystem`),
so examples, tests and benchmarks swap architectures freely.
"""

from repro.engines.base import (
    AgentAssignment,
    ControlSystem,
    InstanceOutcome,
    SystemConfig,
    governed_step_count,
)
from repro.engines.centralized import (
    ApplicationAgentNode,
    CentralEngineNode,
    CentralizedControlSystem,
)
from repro.engines.coord import AuthorityBundle, SpecIndex
from repro.engines.distributed import (
    CommitTracker,
    DistributedControlSystem,
    WorkflowAgentNode,
    elect_executor,
)
from repro.engines.frontend import FrontEndDatabase
from repro.engines.parallel import (
    ParallelControlSystem,
    ParallelEngineNode,
    TimestampMutex,
)
from repro.engines.runtime import AgentRuntime, EngineRuntime, InstanceRuntime

__all__ = [
    "AgentAssignment",
    "AgentRuntime",
    "ApplicationAgentNode",
    "AuthorityBundle",
    "CentralEngineNode",
    "CentralizedControlSystem",
    "CommitTracker",
    "ControlSystem",
    "DistributedControlSystem",
    "EngineRuntime",
    "FrontEndDatabase",
    "InstanceOutcome",
    "InstanceRuntime",
    "ParallelControlSystem",
    "ParallelEngineNode",
    "SpecIndex",
    "SystemConfig",
    "TimestampMutex",
    "WorkflowAgentNode",
    "elect_executor",
    "governed_step_count",
]
