"""Architecture-independent per-instance enactment machinery.

The paper's three control architectures (centralized, parallel,
distributed) place the *same* enactment semantics at different nodes.
This layer holds the per-instance bookkeeping every placement needs:

* :mod:`~repro.engines.runtime.instance` — the volatile per-instance
  runtime records (:class:`InstanceRuntime` and its engine-side and
  agent-side specializations);
* :mod:`~repro.engines.runtime.inflight` — dispatched-step and
  load-probe wait state;
* :mod:`~repro.engines.runtime.compensation` — compensation-chain
  records and chain-ordering helpers (dependent sets, abandoned
  branches);
* :mod:`~repro.engines.runtime.invalidation` — rollback-round
  bookkeeping (token -> round high-water marks).

(:class:`RetryPolicy` moved to :mod:`repro.runtime.retry` with the
pluggable runtime layer — the asyncio executor shares it — and is
re-exported here for compatibility.)
"""

from repro.engines.runtime.compensation import (
    CompensationChain,
    compensate_set_chain,
    member_done_times,
    reverse_topo_order,
    stale_member_times,
)
from repro.engines.runtime.inflight import InflightStep, LoadProbe, ProbeWait
from repro.engines.runtime.instance import (
    AgentRuntime,
    EngineRuntime,
    InstanceRuntime,
)
from repro.engines.runtime.invalidation import (
    absorb_invalidations,
    merge_invalidations,
    open_invalidation_round,
)
from repro.runtime.retry import RetryPolicy

__all__ = [
    "AgentRuntime",
    "CompensationChain",
    "EngineRuntime",
    "InflightStep",
    "InstanceRuntime",
    "LoadProbe",
    "ProbeWait",
    "RetryPolicy",
    "absorb_invalidations",
    "compensate_set_chain",
    "member_done_times",
    "merge_invalidations",
    "open_invalidation_round",
    "reverse_topo_order",
    "stale_member_times",
]
