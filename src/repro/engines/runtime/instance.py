"""Volatile per-instance runtime records.

Every control architecture pairs an :class:`~repro.storage.tables.InstanceState`
(the durable table row) with a rule engine and some volatile enactment
bookkeeping.  :class:`InstanceRuntime` is that shared pairing;
:class:`EngineRuntime` adds the engine-side extras (centralized and
parallel control) and :class:`AgentRuntime` the agent-side extras
(distributed control, where the state is a *fragment* assembled from
workflow packets).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.model.compiler import CompiledSchema
from repro.rules.engine import RuleEngine
from repro.runtime.metrics import Mechanism
from repro.storage.tables import InstanceState

__all__ = ["AgentRuntime", "EngineRuntime", "InstanceRuntime"]


@dataclass
class InstanceRuntime:
    """Volatile enactment state for one instance at one node."""

    state: InstanceState
    compiled: CompiledSchema
    engine: RuleEngine
    recovery_mechanism: Mechanism = Mechanism.NORMAL
    loop_fires: Counter = field(default_factory=Counter)
    mx_state: dict[str, str] = field(default_factory=dict)  # spec -> none/requested/held/released
    governed: int = 0
    parent_link: tuple[str, str] | None = None

    def step_mechanism(self, step: str) -> Mechanism:
        """Mechanism to account a (re-)execution of ``step`` under.

        A step touched in a previous pass (executed or compensated)
        re-executes under the active recovery mechanism; a first
        execution is normal navigation.
        """
        record = self.state.steps.get(step)
        if record is not None and (record.executions > 0 or record.compensations > 0):
            return self.recovery_mechanism
        return Mechanism.NORMAL

    def loop_continues(self, step: str) -> bool:
        """Does a loop template anchored at ``step`` still iterate?"""
        for template in self.compiled.loop_templates_for(step):
            condition = self.compiled.condition_for(template.rule_id)
            if condition is None:
                return True
            try:
                if condition.evaluate(self.state.env()):
                    return True
            except Exception:
                continue
        return False


@dataclass
class EngineRuntime(InstanceRuntime):
    """Engine-side per-instance runtime (centralized/parallel control)."""

    reported: set[str] = field(default_factory=set)
    nested_children: dict[str, str] = field(default_factory=dict)  # step -> child id


@dataclass
class AgentRuntime(InstanceRuntime):
    """An agent's volatile enactment state for one instance fragment."""

    recovery_mechanism: Mechanism = Mechanism.FAILURE
    hosted: frozenset[str] = frozenset()
    executors: dict[str, str] = field(default_factory=dict)
    assigned: dict[str, str] = field(default_factory=dict)  # step -> agent
    #: Steps this agent executed and navigated onward (HaltThread must
    #: propagate through them).
    forwarded: set[str] = field(default_factory=set)
    origin_history: dict[int, str] = field(default_factory=dict)
    #: Established (spec, leading, lagging) orders this agent has learned —
    #: piggybacked on outgoing packets (Figure 7's "R.O." lines).
    ro_info: set[tuple[str, str, str]] = field(default_factory=set)
    #: step -> epoch of the execution currently in flight on this agent;
    #: guards stale completions from before a rollback.
    running_exec: dict[str, int] = field(default_factory=dict)
    input_overrides: dict[str, Any] = field(default_factory=dict)
    pending_exec: dict[str, tuple] = field(default_factory=dict)
    #: step -> open execution Span of the program currently running here.
    exec_spans: dict[str, Any] = field(default_factory=dict)
    watchdogs: set[str] = field(default_factory=set)

    @property
    def fragment(self) -> InstanceState:
        """The durable fragment this runtime enacts (alias of ``state``)."""
        return self.state

    @property
    def known_invalidations(self) -> dict[str, int]:
        """token -> invalidation round: occurrences from earlier rounds are
        stale.  Piggybacked on every outgoing packet (harmless to carry
        forever: a round-R cutoff cannot kill a round>=R occurrence) and
        persisted with the fragment so crash+recovery keeps the cutoffs.
        """
        return self.state.known_invalidations
