"""Rollback-round bookkeeping (token -> round high-water marks).

Event occurrences are stamped with a monotone per-instance *invalidation
round*; an invalidation cutoff at round R kills only occurrences from
earlier rounds, so re-executions after the rollback outlive it.  Agents
carry a ``token -> round`` high-water map on every packet, halt probe and
compensation chain; these helpers keep that map and the fragment's round
counter consistent.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = [
    "absorb_invalidations",
    "merge_invalidations",
    "open_invalidation_round",
]


def merge_invalidations(known: dict[str, int], updates: Mapping[str, int]) -> None:
    """Max-merge ``token -> round`` cutoffs into the ``known`` map."""
    for token, round in updates.items():
        previous = known.get(token, 0)
        known[token] = max(previous, int(round))


def absorb_invalidations(
    runtime, invalidations: Mapping[str, int], bump_round: bool = True
) -> None:
    """Fold message-carried cutoffs into an agent runtime.

    Merges into the high-water map and (unless ``bump_round`` is false)
    lifts the fragment's round counter so the agent's own re-executions
    are stamped past the cutoffs it has heard about.
    """
    if not invalidations:
        return
    merge_invalidations(runtime.known_invalidations, invalidations)
    if bump_round:
        runtime.state.invalidation_round = max(
            runtime.state.invalidation_round, *invalidations.values()
        )


def open_invalidation_round(runtime, tokens: Iterable[str]) -> int:
    """Start a new local invalidation round covering ``tokens``.

    Bumps the fragment's round counter, records the cutoff for every
    token and returns the new round number.
    """
    runtime.state.invalidation_round += 1
    round = runtime.state.invalidation_round
    for token in tokens:
        previous = runtime.known_invalidations.get(token, 0)
        runtime.known_invalidations[token] = max(previous, round)
    return round
