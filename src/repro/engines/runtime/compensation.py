"""Compensation-chain records and chain-ordering helpers.

Compensation dependent sets must be undone strictly in reverse execution
order (paper Section 3.2).  A centralized engine walks the chain itself
(:class:`CompensationChain`); distributed agents forward a static member
list hop by hop — :func:`compensate_set_chain` and
:func:`reverse_topo_order` build those lists, and the ``*_times`` helpers
identify which members' completions are stale (belong to a rolled back
pass) versus re-established.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.rules.engine import RuleEngine
from repro.runtime.metrics import Mechanism
from repro.rules.events import step_done
from repro.storage.tables import InstanceState, StepStatus

__all__ = [
    "CompensationChain",
    "compensate_set_chain",
    "member_done_times",
    "reverse_topo_order",
    "stale_member_times",
]


class CompensationChain:
    """An in-order compensation walk with a continuation on completion."""

    __slots__ = ("instance_id", "steps", "mechanism", "on_done")

    def __init__(
        self,
        instance_id: str,
        steps: list[str],
        mechanism: Mechanism,
        on_done: Any,  # zero-arg callable
    ) -> None:
        self.instance_id = instance_id
        self.steps = steps
        self.mechanism = mechanism
        self.on_done = on_done


def compensate_set_chain(
    members: Iterable[str], origin_step: str, topo_index
) -> list[str]:
    """Static CompensateSet StepList: the members downstream of
    ``origin_step`` in reverse topological order, ending at the origin.

    The initiator cannot know which downstream members actually ran
    (packets only flow forward), so the list is static and each hop agent
    checks locally whether its step "has been executed" (and is stale)
    before compensating — exactly the paper's CompensateSet() procedure.
    """
    later = [
        m
        for m in members
        if m != origin_step and topo_index(m) > topo_index(origin_step)
    ]
    later.sort(key=lambda m: -topo_index(m))
    return [*later, origin_step]


def reverse_topo_order(members: Iterable[str], topo_index) -> list[str]:
    """Members in reverse topological order (CompensateThread chains)."""
    return sorted(members, key=lambda m: -topo_index(m))


def stale_member_times(engine: RuleEngine, members: Iterable[str]) -> dict[str, float]:
    """Done-times of set members whose completion event is currently
    *invalid* — the rolled back executions a CompensateSet chain must
    undo (a member whose done event is valid was already re-executed or
    reused and keeps its effects)."""
    stale: dict[str, float] = {}
    for member in members:
        occurrence = engine.events.occurrence(step_done(member))
        if occurrence is not None and not occurrence.valid:
            stale[member] = occurrence.time
    return stale


def member_done_times(
    engine: RuleEngine, state: InstanceState, members: Iterable[str]
) -> dict[str, float]:
    """Best-known completion times of ``members`` (valid occurrences first,
    falling back to the step table for completions merged via packets)."""
    done_times: dict[str, float] = {}
    for member in members:
        occurrence = engine.events.occurrence(step_done(member))
        if occurrence is not None and occurrence.valid:
            done_times[member] = occurrence.time
        else:
            record = state.steps.get(member)
            if record is not None and record.status is StepStatus.DONE:
                done_times[member] = record.done_at or 0.0
    return done_times
