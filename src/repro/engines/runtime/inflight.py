"""Wait-state records for dispatched steps and load probes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.runtime.metrics import Mechanism

__all__ = ["InflightStep", "LoadProbe", "ProbeWait"]


@dataclass
class InflightStep:
    """A step execution dispatched to an agent, awaiting its StepResult."""

    epoch: int
    inputs: dict[str, Any]
    attempt: int
    mechanism: Mechanism
    agent: str
    span: Any = None  # open step Span (or NULL_SPAN when tracing is off)
    cost: float = 0.0  # execution cost, kept for watchdog re-dispatch


@dataclass
class ProbeWait:
    """Engine-side StateInformation fan-out pending its load replies.

    The engine probes every eligible agent of a step and dispatches the
    execution to the least loaded once all replies are in.
    """

    instance_id: str
    step: str
    waiting: set[str]
    loads: dict[str, int]
    cost: float
    mechanism: Mechanism
    inputs: dict[str, Any]
    attempt: int


@dataclass
class LoadProbe:
    """Agent-side successor-selection probe (distributed two-phase dispatch).

    The navigating agent probes the successor step's eligible peers and
    sends the workflow packets once all replies are in.
    """

    instance_id: str
    successor: str
    mechanism: Mechanism
    eligible: tuple[str, ...]
    waiting: set[str]
    loads: dict[str, int]
